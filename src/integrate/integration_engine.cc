#include "integrate/integration_engine.h"

#include <algorithm>
#include <future>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>

#include "core/bellflower.h"
#include "match/element_matching.h"
#include "obs/trace.h"
#include "util/timer.h"
#include "util/union_find.h"

namespace xsm::integrate {

namespace {

/// One cross-schema correspondence edge, canonical direction a.tree < b.tree.
struct Correspondence {
  schema::NodeRef a;
  schema::NodeRef b;
  double score = 0;
};

/// One unit of all-pairs work: `count` consecutive nodes of one source tree,
/// starting at `first`.
struct Slice {
  schema::TreeId tree = -1;
  schema::NodeId first = 0;
  size_t count = 0;
  size_t index = 0;  ///< slice ordinal within the tree
};

/// Rebuilds a slice as a standalone personal schema: a flat tree whose first
/// node is the root and the rest its children. Name-only element matching
/// scores each personal node from its local properties alone, so the fake
/// structure changes no score — it only satisfies the tree-shaped query API
/// while keeping every slice under kMaxPersonalNodes.
schema::SchemaTree MakeSliceTree(const schema::SchemaTree& source,
                                 schema::NodeId first, size_t count) {
  schema::SchemaTree slice;
  schema::NodeId root = slice.AddNode(schema::kInvalidNode, source.props(first));
  for (size_t k = 1; k < count; ++k) {
    slice.AddNode(root, source.props(first + static_cast<schema::NodeId>(k)));
  }
  return slice;
}

Status StatusForStop(core::ExecutionStatus status) {
  if (status == core::ExecutionStatus::kDeadlineExceeded) {
    return Status::DeadlineExceeded("integration deadline exceeded");
  }
  return Status::Cancelled("integration cancelled");
}

bool IsStopStatus(const Status& status) {
  return status.code() == StatusCode::kCancelled ||
         status.code() == StatusCode::kDeadlineExceeded;
}

core::ExecutionStatus ExecutionFromStop(const Status& status) {
  return status.code() == StatusCode::kDeadlineExceeded
             ? core::ExecutionStatus::kDeadlineExceeded
             : core::ExecutionStatus::kCancelled;
}

}  // namespace

std::string_view SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kStrong:
      return "strong";
    case Severity::kProbable:
      return "probable";
    case Severity::kWeak:
      break;
  }
  return "weak";
}

Result<Severity> ParseSeverity(std::string_view name) {
  if (name == "weak") return Severity::kWeak;
  if (name == "probable") return Severity::kProbable;
  if (name == "strong") return Severity::kStrong;
  return Status::InvalidArgument("severity must be weak, probable or strong");
}

Result<IntegrationResult> IntegrationEngine::Integrate(
    const IntegrationOptions& options, IntegrationObserver* observer) {
  return IntegrateOn(service_->Pin(), options, observer);
}

Result<IntegrationResult> IntegrationEngine::IntegrateOn(
    service::RepositoryPinPtr snapshot, const IntegrationOptions& options,
    IntegrationObserver* observer) {
  if (options.threshold < 0.0 || options.threshold > 1.0) {
    return Status::InvalidArgument("threshold must be in [0,1]");
  }
  if (options.probable_confidence > options.strong_confidence) {
    return Status::InvalidArgument(
        "probable_confidence must not exceed strong_confidence");
  }

  const schema::SchemaForest& forest = snapshot->forest();
  const size_t n = forest.num_trees();

  IntegrationResult result;
  result.generation = snapshot->generation();
  result.fingerprint = snapshot->fingerprint();
  result.seed = options.seed;
  result.tree_fingerprints.reserve(n);
  for (schema::TreeId t = 0; t < static_cast<schema::TreeId>(n); ++t) {
    result.tree_fingerprints.push_back(snapshot->tree_fingerprint(t));
  }
  result.stats.trees = n;
  result.stats.pairs_total = n >= 2 ? n * (n - 1) / 2 : 0;

  // --- Stage 1: shard the pair grid over the service pool. Each slice task
  // builds (or cache-hits) its cluster state and extracts the cross-schema
  // correspondences it sources, keeping only targets in later trees so every
  // unordered pair is scored exactly once, from a fixed direction.
  std::vector<Slice> slices;
  for (schema::TreeId t = 0; t < static_cast<schema::TreeId>(n); ++t) {
    const size_t tree_size = forest.tree(t).size();
    size_t index = 0;
    for (size_t first = 0; first < tree_size;
         first += match::kMaxPersonalNodes, ++index) {
      Slice slice;
      slice.tree = t;
      slice.first = static_cast<schema::NodeId>(first);
      slice.count = std::min(match::kMaxPersonalNodes, tree_size - first);
      slice.index = index;
      slices.push_back(slice);
    }
  }
  result.stats.slices = slices.size();

  obs::TraceContext* trace = options.control.trace;
  Timer matching_timer;
  std::optional<obs::ScopedSpan> match_span;
  match_span.emplace(trace, "integrate_match");
  std::vector<std::future<Result<std::vector<Correspondence>>>> futures;
  futures.reserve(slices.size());
  for (const Slice& slice : slices) {
    // Everything captured by value: a task must stay self-contained even if
    // the caller already returned on another slice's error.
    futures.push_back(service_->pool().Submit(
        [service = service_, snapshot, slice, threshold = options.threshold,
         match_attributes = options.match_attributes,
         control = options.control]()
            -> Result<std::vector<Correspondence>> {
          core::ExecutionMonitor monitor(control);
          if (monitor.ShouldStop()) {
            // Stopped before starting: no build begins, so the cluster
            // cache never sees a control-influenced entry.
            return StatusForStop(monitor.status());
          }
          service::MatchQuery query;
          query.id = "integrate:" + std::to_string(slice.tree) + ":" +
                     std::to_string(slice.index);
          query.personal = MakeSliceTree(snapshot->forest().tree(slice.tree),
                                         slice.first, slice.count);
          query.options.element.threshold = threshold;
          query.options.element.match_attributes = match_attributes;
          // Deterministic, seed-free preprocessing: the tree-clusters mode
          // keys the cache with a "|tree" suffix and ignores every k-means
          // knob, so identical slices share entries across queries and runs.
          query.options.clustering = core::ClusteringMode::kTreeClusters;
          XSM_ASSIGN_OR_RETURN(service::ClusterStatePtr state,
                               service->ClusterStateFor(snapshot, query));
          std::vector<Correspondence> edges;
          for (const match::MappingElementSet& set : state->matching.sets) {
            const schema::NodeRef source{
                slice.tree, slice.first + set.personal_node};
            for (const match::MappingElement& element : set.elements) {
              if (element.node.tree <= slice.tree) continue;
              edges.push_back({source, element.node, element.score});
            }
          }
          return edges;
        }));
  }

  // --- Stage 2: fold, strictly in (tree, slice) submission order. Tasks
  // finish in any interleaving, but the union-find sees edges in one fixed
  // sequence — and Canonical() is union-order independent anyway — so the
  // clusters, confidences and ranks are identical across thread counts.
  UnionFind uf;
  std::vector<schema::NodeRef> nodes;           // dense index -> NodeRef
  std::unordered_map<schema::NodeRef, size_t> index_of;
  std::vector<double> incident;                 // summed edge scores per node
  struct Edge {
    size_t a = 0;
    size_t b = 0;
    double score = 0;
  };
  std::vector<Edge> edges;
  auto intern = [&](const schema::NodeRef& ref) {
    auto [it, inserted] = index_of.try_emplace(ref, nodes.size());
    if (inserted) {
      nodes.push_back(ref);
      incident.push_back(0.0);
      uf.Add();
    }
    return it->second;
  };

  struct PairAccumulator {
    size_t links = 0;
    double best = 0;
  };
  std::map<schema::TreeId, PairAccumulator> pair_acc;  // targets of one source
  size_t slice_cursor = 0;
  for (schema::TreeId t = 0; t < static_cast<schema::TreeId>(n); ++t) {
    bool stopped = false;
    for (; slice_cursor < slices.size() && slices[slice_cursor].tree == t;
         ++slice_cursor) {
      Result<std::vector<Correspondence>> part =
          futures[slice_cursor].get();
      if (!part.ok()) {
        if (IsStopStatus(part.status())) {
          result.execution = ExecutionFromStop(part.status());
          stopped = true;
          break;
        }
        return part.status();
      }
      for (const Correspondence& corr : *part) {
        size_t ia = intern(corr.a);
        size_t ib = intern(corr.b);
        uf.Union(ia, ib);
        incident[ia] += corr.score;
        incident[ib] += corr.score;
        edges.push_back({ia, ib, corr.score});
        PairAccumulator& acc = pair_acc[corr.b.tree];
        ++acc.links;
        if (corr.score > acc.best) acc.best = corr.score;
      }
    }
    // One progress report per linked pair sourced by tree t, targets
    // ascending (a partially folded source still reports what it linked).
    for (const auto& [target, acc] : pair_acc) {
      ++result.stats.pairs_linked;
      if (observer != nullptr) {
        PairProgress progress;
        progress.a = t;
        progress.b = target;
        progress.links = acc.links;
        progress.best_score = acc.best;
        progress.sources_done = static_cast<size_t>(t) + 1;
        progress.sources_total = n;
        observer->OnPair(progress);
      }
    }
    pair_acc.clear();
    if (stopped) break;
  }
  result.stats.correspondences = edges.size();
  result.stats.nodes_linked = nodes.size();
  result.stats.time_matching_seconds = matching_timer.ElapsedSeconds();
  match_span.reset();

  // --- Stage 3: components -> graded clusters -> ranked mediated schema.
  obs::ScopedSpan fold_span(trace, "integrate_fold");
  Timer fold_timer;
  std::map<size_t, std::vector<size_t>> components;  // canonical -> members
  for (size_t i = 0; i < nodes.size(); ++i) {
    components[uf.Canonical(i)].push_back(i);
  }
  struct ComponentScore {
    size_t links = 0;
    double score_sum = 0;
  };
  std::unordered_map<size_t, ComponentScore> component_scores;
  for (const Edge& edge : edges) {
    ComponentScore& cs = component_scores[uf.Canonical(edge.a)];
    ++cs.links;
    cs.score_sum += edge.score;
  }

  for (const auto& [canonical, member_indices] : components) {
    if (member_indices.size() < 2) continue;  // never: every node has an edge
    CorrespondenceCluster cluster;
    cluster.members.reserve(member_indices.size());
    for (size_t i : member_indices) cluster.members.push_back(nodes[i]);
    std::sort(cluster.members.begin(), cluster.members.end());

    const ComponentScore& cs = component_scores[canonical];
    cluster.links = cs.links;
    cluster.confidence = cs.links > 0 ? cs.score_sum / cs.links : 0.0;
    cluster.severity = cluster.confidence >= options.strong_confidence
                           ? Severity::kStrong
                           : cluster.confidence >= options.probable_confidence
                                 ? Severity::kProbable
                                 : Severity::kWeak;

    schema::TreeId last_tree = -1;
    for (const schema::NodeRef& member : cluster.members) {
      if (member.tree != last_tree) {
        ++cluster.schemas;
        last_tree = member.tree;
      }
    }
    // Medoid representative: members are sorted, so strict > keeps the
    // smallest NodeRef among ties.
    double best = -1.0;
    for (const schema::NodeRef& member : cluster.members) {
      double score = incident[index_of[member]];
      if (score > best) {
        best = score;
        cluster.representative = member;
      }
    }
    cluster.name = forest.name(cluster.representative);
    result.clusters.push_back(std::move(cluster));
  }

  std::sort(result.clusters.begin(), result.clusters.end(),
            [](const CorrespondenceCluster& x, const CorrespondenceCluster& y) {
              if (x.schemas != y.schemas) return x.schemas > y.schemas;
              if (x.links != y.links) return x.links > y.links;
              if (x.confidence != y.confidence) {
                return x.confidence > y.confidence;
              }
              if (x.name != y.name) return x.name < y.name;
              return x.representative < y.representative;
            });

  for (size_t i = 0; i < result.clusters.size(); ++i) {
    const CorrespondenceCluster& cluster = result.clusters[i];
    if (cluster.links < options.min_linkage) continue;
    if (static_cast<uint8_t>(cluster.severity) <
        static_cast<uint8_t>(options.min_severity)) {
      continue;
    }
    MediatedElement element;
    element.name = cluster.name;
    element.representative = cluster.representative;
    element.cluster = i;
    result.mediated.elements.push_back(element);
    if (observer != nullptr) {
      observer->OnMediatedElement(result.mediated.elements.size(),
                                  result.mediated.elements.back(), cluster);
    }
  }
  result.stats.time_fold_seconds = fold_timer.ElapsedSeconds();

  if (observer != nullptr) observer->OnFinish(result);
  return result;
}

}  // namespace xsm::integrate
