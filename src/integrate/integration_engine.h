// Holistic N-way schema integration (the SchemaMerger workload): instead of
// matching ONE personal schema against the repository, fold the repository's
// N schemas into one *mediated schema*.
//
// Pipeline:
//   1. All-pairs matching. Every repository tree is chunked into personal-
//      schema slices of at most match::kMaxPersonalNodes nodes (name-only
//      element matching scores each personal node independently of tree
//      structure, so slicing changes nothing — and lifts the 32-node
//      personal-schema limit for arbitrarily large sources). Each slice is
//      one MatchQuery whose cluster state is built through
//      Matcher::ClusterStateFor — i.e. through the backend's
//      fingerprint-namespaced ClusterIndexCache and matching pool — so a
//      second integration of the same content is cache-warm, and slices
//      shared between trees (identical content) share one state. Slices run
//      as tasks on the service pool; correspondences keep only the
//      canonical direction source.tree < target.tree, so every unordered
//      schema pair is scored exactly once.
//   2. Correspondence clustering. Cross-schema correspondences (edges
//      scoring >= IntegrationOptions::threshold) are folded — sequentially,
//      in (tree, slice) order, so the result is independent of thread count
//      — into connected components via util::UnionFind. Each component of
//      two or more nodes becomes a CorrespondenceCluster with linkage
//      count, mean edge confidence and a severity grade (strong / probable
//      / weak — the De Meo et al. severity-level scheme), plus provenance
//      back-edges to every member (source schema, node).
//   3. Mediated schema. Clusters are ranked (schema coverage desc, linkage
//      desc, confidence desc, name asc) and those passing the min_linkage /
//      min_severity filters emit one MediatedElement each, named after the
//      cluster's medoid representative (the member with the highest summed
//      incident edge score).
//
// Determinism: for a fixed snapshot fingerprint, options and seed the whole
// IntegrationResult — cluster membership, representatives, ranking, events —
// is byte-identical across thread counts and runs (integration_io's
// serialization excludes wall-clock timings so this is directly testable).
//
// Execution control: options.control is honored between slices (cancel /
// deadline). A stopped run returns a *typed partial* result — the clusters
// of the slice prefix folded so far, with IntegrationResult::execution
// naming the reason — and never an error. Cluster-state builds that have
// started always complete, so a cancelled integration can never poison the
// service's cluster cache (the same contract interactive queries have).
//
// Call Integrate from outside the service pool (it blocks on its own pool
// tasks, like MatchBatch). Note cache sizing: an integration creates one
// cache entry per slice (~total_nodes / 32); services dedicated to offline
// integration want cluster_cache_capacity sized accordingly, otherwise the
// run still completes but evicts instead of warming.
#ifndef XSM_INTEGRATE_INTEGRATION_ENGINE_H_
#define XSM_INTEGRATE_INTEGRATION_ENGINE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/execution_control.h"
#include "schema/schema_forest.h"
#include "service/matcher.h"
#include "util/status.h"

namespace xsm::integrate {

/// Severity grade of a correspondence cluster, per the De Meo et al.
/// severity-level scheme: how safely the cluster can be merged into one
/// mediated element without a human in the loop.
enum class Severity : uint8_t {
  kWeak = 0,      ///< below probable_confidence — needs review
  kProbable = 1,  ///< confident, minor variants (typos, abbreviations)
  kStrong = 2,    ///< near-exact agreement across schemas
};

/// Stable lowercase name: "weak" / "probable" / "strong".
std::string_view SeverityName(Severity severity);

/// Parses a SeverityName back; InvalidArgument on anything else.
Result<Severity> ParseSeverity(std::string_view name);

struct IntegrationOptions {
  /// Element-matching threshold for a cross-schema pair to become a
  /// correspondence edge. Higher than the interactive default on purpose:
  /// integration folds edges transitively, so low-confidence edges chain
  /// unrelated elements into one cluster.
  double threshold = 0.75;

  /// Whether attribute nodes participate (elements always do).
  bool match_attributes = true;

  /// Mediated-schema filters: a cluster contributes an element only when it
  /// has at least this many correspondence edges...
  size_t min_linkage = 1;
  /// ...and at least this severity grade.
  Severity min_severity = Severity::kWeak;

  /// Severity thresholds on mean edge confidence: >= strong_confidence is
  /// kStrong, >= probable_confidence is kProbable, below is kWeak.
  double strong_confidence = 0.92;
  double probable_confidence = 0.80;

  /// Recorded in the result (and its serialization) as part of the
  /// determinism contract's identity: fixed snapshot fingerprint + seed =>
  /// byte-identical mediated schema. The current pipeline is seed-free
  /// (tree-cluster states are deterministic), so the seed labels rather
  /// than perturbs the run.
  uint64_t seed = 42;

  /// Cancellation / deadline, polled between slices. No default deadline is
  /// injected (integrations are offline work); serving layers bound them
  /// through admission control exactly like queries.
  core::ExecutionControl control;
};

/// One cluster of elements the engine believes denote the same concept
/// across source schemas, with provenance back to every source node.
struct CorrespondenceCluster {
  /// The representative's name — the mediated element's name.
  std::string name;
  /// Medoid member: highest summed incident edge score (smallest NodeRef on
  /// ties).
  schema::NodeRef representative;
  /// Every member node, sorted by NodeRef — the provenance back-edges.
  std::vector<schema::NodeRef> members;
  /// Correspondence edges folded into this cluster (>= members - 1).
  size_t links = 0;
  /// Distinct source schemas covered.
  size_t schemas = 0;
  /// Mean edge score in [0,1].
  double confidence = 0;
  Severity severity = Severity::kWeak;
};

/// One element of the mediated schema, in rank order.
struct MediatedElement {
  std::string name;
  schema::NodeRef representative;
  /// Index into IntegrationResult::clusters.
  size_t cluster = 0;
};

struct MediatedSchema {
  std::vector<MediatedElement> elements;
};

struct IntegrationStats {
  size_t trees = 0;
  size_t slices = 0;
  /// All unordered schema pairs, n(n-1)/2.
  size_t pairs_total = 0;
  /// Pairs connected by at least one correspondence edge.
  size_t pairs_linked = 0;
  /// Cross-schema correspondence edges at or above the threshold.
  size_t correspondences = 0;
  /// Distinct nodes appearing in at least one correspondence.
  size_t nodes_linked = 0;
  // Wall-clock accounting; excluded from serialization (timings are not
  // part of the deterministic result).
  double time_matching_seconds = 0;
  double time_fold_seconds = 0;
};

/// The full integration output. Everything except the two stats timings is
/// a pure function of (snapshot fingerprint, options, seed).
struct IntegrationResult {
  /// Provenance: which snapshot served the run.
  uint64_t generation = 0;
  uint64_t fingerprint = 0;
  uint64_t seed = 0;
  /// kCompleted, or the typed reason a partial result was cut short.
  core::ExecutionStatus execution = core::ExecutionStatus::kCompleted;
  /// Per-TreeId content fingerprints of the integrated snapshot. Content-
  /// based (stable when removals renumber TreeIds), so integrations of two
  /// xsm::live generations can be diffed by member identity — see
  /// integrate::DiffIntegrations.
  std::vector<uint64_t> tree_fingerprints;
  /// All correspondence clusters (>= 2 members), ranked.
  std::vector<CorrespondenceCluster> clusters;
  /// The ranked mediated schema: clusters passing the filters.
  MediatedSchema mediated;
  IntegrationStats stats;
};

/// Progress of the pair grid: one source schema's links to one target.
struct PairProgress {
  schema::TreeId a = -1;  ///< source (a < b)
  schema::TreeId b = -1;
  size_t links = 0;       ///< correspondence edges between a and b
  double best_score = 0;  ///< best edge score between a and b
  size_t sources_done = 0;
  size_t sources_total = 0;
};

/// Streaming hooks; callbacks fire on the thread running Integrate, in
/// deterministic order. Default implementations ignore everything.
class IntegrationObserver {
 public:
  virtual ~IntegrationObserver() = default;
  /// After a source tree's slices are folded: one call per linked pair
  /// (a, b), b ascending.
  virtual void OnPair(const PairProgress& progress) { (void)progress; }
  /// One call per mediated element, in rank order (rank is 1-based).
  virtual void OnMediatedElement(size_t rank, const MediatedElement& element,
                                 const CorrespondenceCluster& cluster) {
    (void)rank;
    (void)element;
    (void)cluster;
  }
  /// Once, with the finished (possibly partial) result.
  virtual void OnFinish(const IntegrationResult& result) { (void)result; }
};

class IntegrationEngine {
 public:
  /// `service` must outlive the engine; its pool, cluster cache and
  /// matching pool do the heavy lifting. Any Matcher backend works —
  /// sharded backends integrate through the same scattered cluster-state
  /// path queries use.
  explicit IntegrationEngine(service::Matcher* service)
      : service_(service) {}

  /// Integrates the backend's current repository generation.
  Result<IntegrationResult> Integrate(const IntegrationOptions& options,
                                      IntegrationObserver* observer = nullptr);

  /// Integrates an explicit pin from this backend's chain.
  Result<IntegrationResult> IntegrateOn(
      service::RepositoryPinPtr pin, const IntegrationOptions& options,
      IntegrationObserver* observer = nullptr);

 private:
  service::Matcher* service_;
};

}  // namespace xsm::integrate

#endif  // XSM_INTEGRATE_INTEGRATION_ENGINE_H_
