#include "integrate/integration_io.h"

#include <algorithm>
#include <bit>
#include <set>
#include <utility>

#include "util/io.h"
#include "util/wire.h"

namespace xsm::integrate {

namespace {

constexpr char kMagic[8] = {'X', 'S', 'M', 'I', 'N', 'T', 'G', '\0'};

void WriteNodeRef(wire::Writer* w, const schema::NodeRef& ref) {
  w->I32(ref.tree);
  w->I32(ref.node);
}

schema::NodeRef ReadNodeRef(wire::Reader* r) {
  schema::NodeRef ref;
  ref.tree = r->I32();
  ref.node = r->I32();
  return ref;
}

/// Doubles travel as IEEE-754 bit patterns: bit-exact round trips, so the
/// determinism suites can byte-compare serializations.
void WriteDouble(wire::Writer* w, double v) {
  w->U64(std::bit_cast<uint64_t>(v));
}

double ReadDouble(wire::Reader* r) {
  return std::bit_cast<double>(r->U64());
}

/// Validates a NodeRef against the decoded universe (tree must index the
/// serialized tree_fingerprints, node must be non-negative).
bool ValidRef(const schema::NodeRef& ref, size_t num_trees) {
  return ref.tree >= 0 && static_cast<size_t>(ref.tree) < num_trees &&
         ref.node >= 0;
}

}  // namespace

std::string SerializeIntegration(const IntegrationResult& result) {
  std::string payload;
  wire::Writer w(&payload);
  w.U64(result.generation);
  w.U64(result.fingerprint);
  w.U64(result.seed);
  w.U8(static_cast<uint8_t>(result.execution));
  w.U64Vec(result.tree_fingerprints);

  w.U64(result.stats.trees);
  w.U64(result.stats.slices);
  w.U64(result.stats.pairs_total);
  w.U64(result.stats.pairs_linked);
  w.U64(result.stats.correspondences);
  w.U64(result.stats.nodes_linked);

  w.U32(static_cast<uint32_t>(result.clusters.size()));
  for (const CorrespondenceCluster& cluster : result.clusters) {
    w.Str(cluster.name);
    WriteNodeRef(&w, cluster.representative);
    w.U64(cluster.links);
    w.U64(cluster.schemas);
    WriteDouble(&w, cluster.confidence);
    w.U8(static_cast<uint8_t>(cluster.severity));
    w.U32(static_cast<uint32_t>(cluster.members.size()));
    for (const schema::NodeRef& member : cluster.members) {
      WriteNodeRef(&w, member);
    }
  }
  // Mediated elements reference their cluster; name and representative are
  // reconstructed from it, so file and in-memory forms cannot disagree.
  w.U32(static_cast<uint32_t>(result.mediated.elements.size()));
  for (const MediatedElement& element : result.mediated.elements) {
    w.U32(static_cast<uint32_t>(element.cluster));
  }

  std::string out;
  out.reserve(payload.size() + 16);
  out.append(kMagic, sizeof(kMagic));
  wire::Writer header(&out);
  header.U32(kIntegrationFormatVersion);
  header.U32(wire::Crc32c(payload));
  out.append(payload);
  return out;
}

Result<IntegrationResult> DeserializeIntegration(std::string_view bytes) {
  if (bytes.size() < sizeof(kMagic) + 8 ||
      bytes.compare(0, sizeof(kMagic),
                    std::string_view(kMagic, sizeof(kMagic))) != 0) {
    return Status::ParseError("not an integration file (bad magic)");
  }
  wire::Reader head(bytes.substr(sizeof(kMagic), 8));
  const uint32_t version = head.U32();
  const uint32_t crc = head.U32();
  if (version > kIntegrationFormatVersion) {
    return Status::Unimplemented(
        "integration file format " + std::to_string(version) +
        " is newer than supported " +
        std::to_string(kIntegrationFormatVersion));
  }
  std::string_view payload = bytes.substr(sizeof(kMagic) + 8);
  if (wire::Crc32c(payload) != crc) {
    return Status::Corruption("integration payload CRC mismatch");
  }

  wire::Reader r(payload);
  IntegrationResult result;
  result.generation = r.U64();
  result.fingerprint = r.U64();
  result.seed = r.U64();
  const uint8_t execution = r.U8();
  if (execution > static_cast<uint8_t>(
                      core::ExecutionStatus::kEarlyStopped)) {
    r.Fail("invalid execution status " + std::to_string(execution));
  } else {
    result.execution = static_cast<core::ExecutionStatus>(execution);
  }
  r.U64Vec(&result.tree_fingerprints);

  result.stats.trees = r.U64();
  result.stats.slices = r.U64();
  result.stats.pairs_total = r.U64();
  result.stats.pairs_linked = r.U64();
  result.stats.correspondences = r.U64();
  result.stats.nodes_linked = r.U64();
  if (result.stats.trees != result.tree_fingerprints.size()) {
    r.Fail("stats.trees disagrees with tree fingerprint count");
  }

  const uint32_t num_clusters = r.U32();
  for (uint32_t i = 0; i < num_clusters && r.ok(); ++i) {
    CorrespondenceCluster cluster;
    cluster.name = r.Str();
    cluster.representative = ReadNodeRef(&r);
    cluster.links = r.U64();
    cluster.schemas = r.U64();
    cluster.confidence = ReadDouble(&r);
    const uint8_t severity = r.U8();
    if (severity > static_cast<uint8_t>(Severity::kStrong)) {
      r.Fail("invalid severity " + std::to_string(severity));
      break;
    }
    cluster.severity = static_cast<Severity>(severity);
    const uint32_t num_members = r.U32();
    // A hostile count cannot balloon memory: every member costs 8 bytes of
    // remaining payload, checked before reserving.
    if (static_cast<uint64_t>(num_members) * 8 > r.remaining()) {
      r.Fail("member count exceeds payload");
      break;
    }
    cluster.members.reserve(num_members);
    for (uint32_t m = 0; m < num_members; ++m) {
      cluster.members.push_back(ReadNodeRef(&r));
    }
    if (!r.ok()) break;
    bool members_valid = !cluster.members.empty() &&
                         ValidRef(cluster.representative,
                                  result.tree_fingerprints.size());
    for (size_t m = 0; m < cluster.members.size() && members_valid; ++m) {
      members_valid =
          ValidRef(cluster.members[m], result.tree_fingerprints.size()) &&
          (m == 0 || cluster.members[m - 1] < cluster.members[m]);
    }
    if (!members_valid) {
      r.Fail("cluster " + std::to_string(i) + " has invalid members");
      break;
    }
    result.clusters.push_back(std::move(cluster));
  }

  const uint32_t num_elements = r.U32();
  for (uint32_t i = 0; i < num_elements && r.ok(); ++i) {
    const uint32_t cluster_index = r.U32();
    if (cluster_index >= result.clusters.size()) {
      r.Fail("mediated element references cluster " +
             std::to_string(cluster_index) + " of " +
             std::to_string(result.clusters.size()));
      break;
    }
    const CorrespondenceCluster& cluster = result.clusters[cluster_index];
    MediatedElement element;
    element.name = cluster.name;
    element.representative = cluster.representative;
    element.cluster = cluster_index;
    result.mediated.elements.push_back(std::move(element));
  }

  XSM_RETURN_NOT_OK(r.status());
  if (r.remaining() != 0) {
    return Status::Corruption("trailing bytes after integration payload");
  }
  return result;
}

Result<size_t> SaveIntegrationToFile(const IntegrationResult& result,
                                     const std::string& path,
                                     util::io::Env* env) {
  if (env == nullptr) env = util::io::Env::Default();
  std::string bytes = SerializeIntegration(result);
  // Atomic publication (unique tmp + fsync + rename + dir fsync) and
  // strerror-detailed failures both live in AtomicFileWriter now.
  XSM_RETURN_NOT_OK(
      util::io::AtomicFileWriter::WriteFileAtomic(env, path, bytes));
  return bytes.size();
}

Result<IntegrationResult> LoadIntegrationFromFile(const std::string& path,
                                                  util::io::Env* env) {
  if (env == nullptr) env = util::io::Env::Default();
  XSM_ASSIGN_OR_RETURN(std::string bytes, env->ReadFileToString(path));
  return DeserializeIntegration(bytes);
}

namespace {

/// Order-independent identity of one cluster across generations: its member
/// set as sorted (tree content fingerprint, node) pairs, packed into a byte
/// key. Unknown tree ids (possible only in hand-built results) key on the
/// raw TreeId with a distinguishing tag so they can never collide with a
/// fingerprint.
std::string MembershipKey(const CorrespondenceCluster& cluster,
                          const std::vector<uint64_t>& tree_fingerprints) {
  std::vector<std::pair<uint64_t, int32_t>> identity;
  identity.reserve(cluster.members.size());
  for (const schema::NodeRef& member : cluster.members) {
    const bool known =
        member.tree >= 0 &&
        static_cast<size_t>(member.tree) < tree_fingerprints.size();
    identity.emplace_back(
        known ? tree_fingerprints[static_cast<size_t>(member.tree)]
              : static_cast<uint64_t>(member.tree),
        known ? member.node : ~member.node);
  }
  std::sort(identity.begin(), identity.end());
  std::string key;
  wire::Writer w(&key);
  for (const auto& [fingerprint, node] : identity) {
    w.U64(fingerprint);
    w.I32(node);
  }
  return key;
}

}  // namespace

IntegrationDiff DiffIntegrations(const IntegrationResult& before,
                                 const IntegrationResult& after) {
  IntegrationDiff diff;
  diff.before_clusters = before.clusters.size();
  diff.after_clusters = after.clusters.size();

  std::set<std::string> before_keys;
  for (const CorrespondenceCluster& cluster : before.clusters) {
    before_keys.insert(MembershipKey(cluster, before.tree_fingerprints));
  }
  std::set<std::string> after_keys;
  for (const CorrespondenceCluster& cluster : after.clusters) {
    after_keys.insert(MembershipKey(cluster, after.tree_fingerprints));
  }

  for (const CorrespondenceCluster& cluster : after.clusters) {
    if (before_keys.count(MembershipKey(cluster, after.tree_fingerprints))) {
      ++diff.kept;
    } else {
      ++diff.added;
      diff.added_names.push_back(cluster.name);
    }
  }
  for (const CorrespondenceCluster& cluster : before.clusters) {
    if (!after_keys.count(MembershipKey(cluster, before.tree_fingerprints))) {
      ++diff.removed;
      diff.removed_names.push_back(cluster.name);
    }
  }
  return diff;
}

}  // namespace xsm::integrate
