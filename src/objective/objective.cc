#include "objective/objective.h"

#include <algorithm>
#include <cassert>

namespace xsm::objective {

Status ObjectiveParams::Validate() const {
  if (alpha < 0.0 || alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in [0,1]");
  }
  return Status::OK();
}

BellflowerObjective::BellflowerObjective(double alpha, double k_resolved,
                                         int num_nodes, int num_edges)
    : alpha_(alpha),
      k_(k_resolved),
      num_nodes_(num_nodes),
      num_edges_(num_edges) {
  assert(alpha >= 0.0 && alpha <= 1.0);
  assert(k_resolved >= 1.0);
  assert(num_nodes >= 1);
  assert(num_edges == num_nodes - 1);
  inv_nodes_ = 1.0 / static_cast<double>(num_nodes_);
  inv_edges_k_ =
      num_edges_ > 0 ? 1.0 / (static_cast<double>(num_edges_) * k_) : 0.0;
}

double BellflowerObjective::DeltaPath(int64_t total_path_length) const {
  if (num_edges_ == 0) return 1.0;  // Single-node schema: no structure hint.
  double excess =
      static_cast<double>(total_path_length - num_edges_);
  double v = 1.0 - excess * inv_edges_k_;
  return std::clamp(v, 0.0, 1.0);
}

double BellflowerObjective::Delta(double sim_sum,
                                  int64_t total_path_length) const {
  return alpha_ * DeltaSim(sim_sum) +
         (1.0 - alpha_) * DeltaPath(total_path_length);
}

double BellflowerObjective::UpperBound(double sim_sum,
                                       double optimistic_remaining_sim,
                                       int64_t path_length_so_far,
                                       int closed_edges) const {
  // Remaining edges assumed to close with length-1 paths: the path excess is
  // exactly what the closed edges already accumulated.
  double sim_part = DeltaSim(sim_sum + optimistic_remaining_sim);
  double excess = static_cast<double>(path_length_so_far - closed_edges);
  double path_part =
      num_edges_ == 0
          ? 1.0
          : std::clamp(1.0 - excess * inv_edges_k_, 0.0, 1.0);
  return alpha_ * sim_part + (1.0 - alpha_) * path_part;
}

}  // namespace xsm::objective
