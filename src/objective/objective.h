// Bellflower's objective function (paper §3, Eq. 1–3):
//
//   Δsim(s,t)  = (1/|Ns|) Σ_n sim(n, n′)                      (Eq. 1)
//   Δpath(s,t) = 1 − (|Et| − |Es|) / (|Es| · K)               (Eq. 2)
//   Δ(s,t)     = α·Δsim + (1−α)·Δpath                         (Eq. 3)
//
// |Et| is the total path length of the mapping image: the sum over personal
// edges e=(u,v) of the tree-path length between the images u′,v′. With the
// injective node mapping of Def. 2 every image path has length ≥ 1, so
// |Et| ≥ |Es| and Δpath ≤ 1. K ("determined using other constraints in the
// system, e.g., the maximum length of a path") defaults to
// max(1, repository diameter − 1), which also guarantees Δpath ≥ 0.
#ifndef XSM_OBJECTIVE_OBJECTIVE_H_
#define XSM_OBJECTIVE_OBJECTIVE_H_

#include <cstdint>

#include "util/status.h"

namespace xsm::objective {

/// User-facing knobs of the objective.
struct ObjectiveParams {
  /// Eq. 3 weight: large α favors the name-similarity hint, small α the
  /// path-length (structural) hint. The Fig. 6 experiment sweeps this.
  double alpha = 0.5;

  /// Eq. 2 normalization constant K. Values ≤ 0 mean "derive from the
  /// repository": K = max(1, max tree diameter − 1).
  double k_norm = 0.0;

  /// Rejects α outside [0,1].
  Status Validate() const;
};

/// Resolved, immutable evaluator handed to the mapping generator. Holds the
/// personal-schema constants (|Ns|, |Es|) and the resolved K.
class BellflowerObjective {
 public:
  /// `k_resolved` must be ≥ 1 (callers resolve k_norm ≤ 0 beforehand).
  BellflowerObjective(double alpha, double k_resolved, int num_nodes,
                      int num_edges);

  /// Eq. 1 from the accumulated per-node similarity sum.
  double DeltaSim(double sim_sum) const { return sim_sum * inv_nodes_; }

  /// Eq. 2 from the total image path length |Et| (sum over personal
  /// edges). Clamped to [0,1] to be robust to user-supplied small K.
  double DeltaPath(int64_t total_path_length) const;

  /// Eq. 3.
  double Delta(double sim_sum, int64_t total_path_length) const;

  /// Admissible upper bound for a partial mapping, used by the Branch and
  /// Bound / A* generators ("bounding function for an early detection of
  /// mappings for which Δ < δ").
  ///
  /// `sim_sum` — similarity accumulated over assigned nodes;
  /// `optimistic_remaining_sim` — Σ of the max candidate similarity of each
  /// still-unassigned node; `path_length_so_far` — Σ image-path lengths of
  /// the edges already closed; `closed_edges` — how many edges those are
  /// (each still-open edge is optimistically assumed to map to a length-1
  /// path, contributing zero excess).
  double UpperBound(double sim_sum, double optimistic_remaining_sim,
                    int64_t path_length_so_far, int closed_edges) const;

  double alpha() const { return alpha_; }
  double k() const { return k_; }
  int num_nodes() const { return num_nodes_; }
  int num_edges() const { return num_edges_; }

 private:
  double alpha_;
  double k_;
  int num_nodes_;
  int num_edges_;
  double inv_nodes_;
  double inv_edges_k_;  // 1 / (|Es|·K), 0 when |Es| == 0.
};

}  // namespace xsm::objective

#endif  // XSM_OBJECTIVE_OBJECTIVE_H_
