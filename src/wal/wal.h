// xsm::wal — a crash-safe, CRC-32C-checksummed, record-framed write-ahead
// journal.
//
// The snapshot store (PR 5) makes durability a point event: state is safe
// exactly when someone calls SaveSnapshot. Everything ingested since the
// last save dies with the process. The WAL closes that window: each
// validated repository delta is appended here — framed, checksummed, and
// fsync'd — *before* its generation is published, so an acknowledged delta
// is always recoverable. Warm-start boot becomes "load snapshot, replay
// journal suffix" (live::RepositoryManager::Recover), provably
// fingerprint- and query-identical to an uninterrupted chain.
//
// File format (magic "XSMWAL0\0", little-endian, format version 1):
//
//   header   magic[8] | u32 version | u64 base_generation
//            | u64 base_fingerprint | u32 crc32c(the three fields)
//   record   u32 crc32c(payload) | u32 type | u64 payload_size | payload
//
// base_generation/base_fingerprint name the snapshot generation the
// journal extends; records carry their own framing so the reader needs no
// index. Appends are fsync'd one record at a time.
//
// Damage taxonomy — the part that makes crash recovery sound:
//   - A *truncated tail* (incomplete frame, or a payload shorter than its
//     frame claims) is the expected artifact of a kill mid-append. It is
//     NOT an error: ReadWal returns the intact prefix with torn_tail set,
//     and WalWriter::Open truncates the tail before appending again.
//   - A *complete* record whose CRC fails, or an unknown record type, can
//     only mean bit rot or tampering — appends are sequential, so a crash
//     tears only the tail. That is typed kCorruption, never silently
//     skipped.
//   - Header damage is kParseError (bad magic) / kCorruption (bad CRC,
//     truncation); a newer format version is kUnimplemented.
#ifndef XSM_WAL_WAL_H_
#define XSM_WAL_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/io.h"
#include "util/status.h"

namespace xsm::wal {

/// Format version this build writes (and the newest it reads).
inline constexpr uint32_t kWalFormatVersion = 1;

/// Bytes of the fixed file header (magic + fields + crc).
inline constexpr size_t kWalHeaderSize = 8 + 4 + 8 + 8 + 4;
/// Bytes of one record's frame (crc + type + payload_size).
inline constexpr size_t kWalRecordFrameSize = 4 + 4 + 8;

enum class RecordType : uint32_t {
  kDelta = 1,  ///< one journaled RepositoryDelta (live::delta_codec bytes)
};

struct WalInfo {
  uint32_t format_version = 0;
  uint64_t base_generation = 0;
  uint64_t base_fingerprint = 0;
};

struct WalRecord {
  RecordType type = RecordType::kDelta;
  std::string payload;
};

struct WalReadResult {
  WalInfo info;
  std::vector<WalRecord> records;
  /// Header + every intact record: the offset WalWriter::Open appends at.
  uint64_t valid_bytes = 0;
  /// True when a truncated trailing record (crash artifact) was dropped.
  bool torn_tail = false;
  /// Bytes past valid_bytes that the torn tail occupied.
  uint64_t dropped_bytes = 0;
};

/// Append handle over one journal file. Not thread-safe; callers
/// (RepositoryManager) serialize appends with their write lock.
class WalWriter {
 public:
  /// Atomically replaces `path` with a fresh, empty journal based at
  /// (base_generation, base_fingerprint) — the compaction step after a
  /// successful checkpoint. A crash during Create leaves either the old
  /// journal or the new one, never a hybrid.
  static Result<std::unique_ptr<WalWriter>> Create(
      util::io::Env* env, const std::string& path, uint64_t base_generation,
      uint64_t base_fingerprint);

  /// Opens an existing journal for appending after `read` validated it
  /// (typically ReadWal's result). A torn tail is truncated away first so
  /// the next record lands on a clean boundary.
  static Result<std::unique_ptr<WalWriter>> Open(util::io::Env* env,
                                                 const std::string& path,
                                                 const WalReadResult& read);

  /// Frames, appends, and fsyncs one record. After OK the record survives
  /// a kill; after an error nothing of the record is considered written
  /// (a torn prefix on disk is dropped by the next recovery).
  Status Append(RecordType type, std::string_view payload);

  const WalInfo& info() const { return info_; }
  /// Bytes of the journal including everything appended so far.
  uint64_t size_bytes() const { return size_bytes_; }
  size_t records_appended() const { return records_appended_; }

 private:
  WalWriter(std::unique_ptr<util::io::WritableFile> file, WalInfo info,
            uint64_t size_bytes)
      : file_(std::move(file)), info_(info), size_bytes_(size_bytes) {}

  std::unique_ptr<util::io::WritableFile> file_;
  WalInfo info_;
  uint64_t size_bytes_;
  size_t records_appended_ = 0;
};

/// Serializes a header-only journal (used by Create; exposed for tests).
std::string SerializeWalHeader(uint64_t base_generation,
                               uint64_t base_fingerprint);

/// Parses and validates journal bytes per the damage taxonomy above.
Result<WalReadResult> ParseWal(std::string_view bytes);

/// ReadFileToString + ParseWal. A missing file is kNotFound (callers
/// distinguish "no journal yet" from damage).
Result<WalReadResult> ReadWal(util::io::Env* env, const std::string& path);

}  // namespace xsm::wal

#endif  // XSM_WAL_WAL_H_
