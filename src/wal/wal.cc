#include "wal/wal.h"

#include <cstring>
#include <utility>

#include "util/wire.h"

namespace xsm::wal {

namespace {

constexpr char kMagic[8] = {'X', 'S', 'M', 'W', 'A', 'L', '0', '\0'};
// version + base_generation + base_fingerprint.
constexpr size_t kHeaderFieldsSize = 4 + 8 + 8;

}  // namespace

std::string SerializeWalHeader(uint64_t base_generation,
                               uint64_t base_fingerprint) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  wire::Writer header(&out);
  header.U32(kWalFormatVersion);
  header.U64(base_generation);
  header.U64(base_fingerprint);
  header.U32(wire::Crc32c(
      std::string_view(out).substr(sizeof(kMagic), kHeaderFieldsSize)));
  return out;
}

Result<WalReadResult> ParseWal(std::string_view bytes) {
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("not an xsm journal file (bad magic)");
  }
  if (bytes.size() < kWalHeaderSize) {
    // The header is written in one atomic Create — it can never be torn
    // by an append crash, so a short header is damage, not a crash mark.
    return Status::Corruption("truncated journal header");
  }
  wire::Reader header(bytes.substr(sizeof(kMagic), kWalHeaderSize - 8));
  WalReadResult out;
  out.info.format_version = header.U32();
  if (out.info.format_version > kWalFormatVersion) {
    return Status::Unimplemented(
        "journal format version " +
        std::to_string(out.info.format_version) +
        " is newer than this build reads (<= " +
        std::to_string(kWalFormatVersion) + ")");
  }
  out.info.base_generation = header.U64();
  out.info.base_fingerprint = header.U64();
  wire::Reader crc_reader(
      bytes.substr(sizeof(kMagic) + kHeaderFieldsSize, 4));
  if (wire::Crc32c(bytes.substr(sizeof(kMagic), kHeaderFieldsSize)) !=
      crc_reader.U32()) {
    return Status::Corruption("journal header CRC mismatch");
  }
  if (out.info.format_version == 0) {
    return Status::Corruption("journal header is internally inconsistent");
  }

  size_t cursor = kWalHeaderSize;
  while (cursor < bytes.size()) {
    const size_t record_start = cursor;
    if (bytes.size() - cursor < kWalRecordFrameSize) {
      // Incomplete frame: the crash tore the very first bytes of a
      // record. Drop it.
      out.torn_tail = true;
      out.dropped_bytes = bytes.size() - record_start;
      break;
    }
    wire::Reader frame(bytes.substr(cursor, kWalRecordFrameSize));
    const uint32_t crc = frame.U32();
    const uint32_t type = frame.U32();
    const uint64_t size = frame.U64();
    cursor += kWalRecordFrameSize;
    if (size > bytes.size() - cursor) {
      // Payload shorter than its frame claims: torn mid-payload.
      out.torn_tail = true;
      out.dropped_bytes = bytes.size() - record_start;
      break;
    }
    std::string_view payload = bytes.substr(cursor, size);
    cursor += static_cast<size_t>(size);
    // The record is complete on disk. Appends are sequential and fsync'd,
    // so a crash cannot damage a complete record — any mismatch from here
    // on is real corruption and must be refused typed.
    if (wire::Crc32c(payload) != crc) {
      return Status::Corruption(
          "journal record " + std::to_string(out.records.size()) +
          " CRC mismatch");
    }
    if (type != static_cast<uint32_t>(RecordType::kDelta)) {
      return Status::Corruption(
          "journal record " + std::to_string(out.records.size()) +
          " has unknown type " + std::to_string(type));
    }
    WalRecord record;
    record.type = static_cast<RecordType>(type);
    record.payload.assign(payload);
    out.records.push_back(std::move(record));
    out.valid_bytes = cursor;
  }
  if (out.valid_bytes == 0) out.valid_bytes = kWalHeaderSize;
  return out;
}

Result<WalReadResult> ReadWal(util::io::Env* env, const std::string& path) {
  if (!env->FileExists(path)) {
    return Status::NotFound("no journal at " + path);
  }
  XSM_ASSIGN_OR_RETURN(std::string bytes, env->ReadFileToString(path));
  return ParseWal(bytes);
}

Result<std::unique_ptr<WalWriter>> WalWriter::Create(
    util::io::Env* env, const std::string& path, uint64_t base_generation,
    uint64_t base_fingerprint) {
  // The fresh journal replaces any predecessor atomically: stage the
  // header under a tmp name, fsync, rename. A crash mid-Create leaves the
  // old journal intact (its records are all <= the just-checkpointed
  // generation, so recovery skips them).
  const std::string header =
      SerializeWalHeader(base_generation, base_fingerprint);
  XSM_RETURN_NOT_OK(
      util::io::AtomicFileWriter::WriteFileAtomic(env, path, header));
  XSM_ASSIGN_OR_RETURN(std::unique_ptr<util::io::WritableFile> file,
                       env->NewWritableFile(path, /*truncate=*/false));
  WalInfo info;
  info.format_version = kWalFormatVersion;
  info.base_generation = base_generation;
  info.base_fingerprint = base_fingerprint;
  return std::unique_ptr<WalWriter>(
      new WalWriter(std::move(file), info, header.size()));
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(
    util::io::Env* env, const std::string& path, const WalReadResult& read) {
  if (read.torn_tail) {
    // Clear the crash artifact so the next record starts on a frame
    // boundary; the dropped suffix was never acknowledged.
    XSM_RETURN_NOT_OK(env->TruncateFile(path, read.valid_bytes));
  }
  XSM_ASSIGN_OR_RETURN(std::unique_ptr<util::io::WritableFile> file,
                       env->NewWritableFile(path, /*truncate=*/false));
  return std::unique_ptr<WalWriter>(
      new WalWriter(std::move(file), read.info, read.valid_bytes));
}

Status WalWriter::Append(RecordType type, std::string_view payload) {
  std::string frame;
  wire::Writer writer(&frame);
  writer.U32(wire::Crc32c(payload));
  writer.U32(static_cast<uint32_t>(type));
  writer.U64(payload.size());
  // One Append call per record half keeps the torn-prefix geometry simple
  // for the crash sweep; durability comes from the fsync below either way.
  XSM_RETURN_NOT_OK(file_->Append(frame));
  XSM_RETURN_NOT_OK(file_->Append(payload));
  XSM_RETURN_NOT_OK(file_->Sync());
  size_bytes_ += frame.size() + payload.size();
  ++records_appended_;
  return Status::OK();
}

}  // namespace xsm::wal
