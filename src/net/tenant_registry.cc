#include "net/tenant_registry.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "shard/sharded_match_service.h"

namespace xsm::net {

namespace fs = std::filesystem;

namespace {

// A sharded tenant's snapshot is a shard manifest, not a store snapshot;
// warm starts sniff this prefix so the boot path follows the on-disk
// format rather than the registry's current `shards` setting.
bool LooksLikeShardManifest(util::io::Env* env, const std::string& path) {
  auto contents = env->ReadFileToString(path);
  if (!contents.ok()) return false;
  constexpr std::string_view kMagic = "xsm-shard-manifest";
  return contents.value().compare(0, kMagic.size(), kMagic) == 0;
}

shard::ShardedOptions ShardOptionsFor(size_t shards) {
  shard::ShardedOptions shard_options;
  shard_options.num_shards = shards;
  return shard_options;
}

}  // namespace

bool TenantRegistry::ValidTenantName(std::string_view name) {
  if (name.empty() || name.size() > 64 || name.front() == '.') return false;
  return std::all_of(name.begin(), name.end(), [](unsigned char c) {
    return std::isalnum(c) || c == '_' || c == '.' || c == '-';
  });
}

TenantRegistry::TenantRegistry(TenantRegistryOptions options)
    : options_(std::move(options)) {
  // Remote clients must never reach the server's filesystem through the
  // session surface, whatever the caller configured.
  options_.session.allow_filesystem = false;
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  tenants_gauge_ = metrics_->RegisterGauge(
      "xsm_tenants", "Tenants currently registered");
  wal_recoveries_ = metrics_->RegisterCounter(
      "xsm_wal_recoveries_total",
      "Warm starts that replayed a journal onto a checkpoint");
  wal_records_replayed_ = metrics_->RegisterCounter(
      "xsm_wal_records_replayed_total",
      "Journal records re-applied during recovery");
  wal_records_skipped_ = metrics_->RegisterCounter(
      "xsm_wal_records_skipped_total",
      "Pre-checkpoint journal records skipped during recovery");
  wal_torn_tail_truncations_ = metrics_->RegisterCounter(
      "xsm_wal_torn_tail_truncations_total",
      "Crash-torn journal tails truncated during recovery");
}

service::MatchServiceOptions TenantRegistry::ServiceOptionsFor(
    const std::string& name) const {
  service::MatchServiceOptions service_options = options_.service;
  service_options.metrics = metrics_;
  service_options.metrics_tenant = name;
  return service_options;
}

std::string TenantRegistry::SnapshotPathFor(const std::string& name) const {
  if (options_.state_dir.empty()) return std::string();
  return (fs::path(options_.state_dir) / (name + ".snap")).string();
}

std::string TenantRegistry::WalPathFor(const std::string& name) const {
  if (options_.state_dir.empty() || !options_.enable_wal) {
    return std::string();
  }
  return (fs::path(options_.state_dir) / (name + ".wal")).string();
}

util::io::Env* TenantRegistry::env() const {
  return options_.env != nullptr ? options_.env : util::io::Env::Default();
}

Result<Tenant*> TenantRegistry::Insert(
    const std::string& name,
    std::unique_ptr<service::Matcher> service) {
  auto tenant = std::make_unique<Tenant>();
  tenant->name = name;
  tenant->service = std::move(service);
  tenant->session = std::make_unique<service::ServeSession>(
      tenant->service.get(), options_.session);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = tenants_.emplace(name, std::move(tenant));
  if (!inserted) {
    return Status::FailedPrecondition("tenant '" + name +
                                      "' already exists");
  }
  tenants_gauge_->Set(static_cast<double>(tenants_.size()));
  return it->second.get();
}

Result<Tenant*> TenantRegistry::Create(const std::string& name,
                                       schema::SchemaForest forest) {
  if (!ValidTenantName(name)) {
    return Status::InvalidArgument("invalid tenant name '" + name +
                                   "' (want 1-64 of [A-Za-z0-9_.-], not "
                                   "starting with '.')");
  }
  std::string wal_path = WalPathFor(name);
  if (!wal_path.empty() && Find(name) != nullptr) {
    // Refuse before touching the state dir: the checkpoint below must
    // never clobber an existing tenant's snapshot with a newborn one.
    return Status::FailedPrecondition("tenant '" + name +
                                      "' already exists");
  }
  std::unique_ptr<service::Matcher> service;
  if (options_.shards > 1) {
    XSM_ASSIGN_OR_RETURN(
        service,
        shard::ShardedMatchService::Create(std::move(forest),
                                           ServiceOptionsFor(name),
                                           ShardOptionsFor(options_.shards)));
  } else {
    XSM_ASSIGN_OR_RETURN(
        service,
        service::MatchService::Create(std::move(forest),
                                      ServiceOptionsFor(name)));
  }
  if (!wal_path.empty()) {
    // Checkpoint-then-journal, in that order: Recover replays the journal
    // onto a base snapshot, so a journaled tenant without one would be
    // unrecoverable. Both are durable before the tenant serves traffic.
    std::error_code ec;
    fs::create_directories(options_.state_dir, ec);  // best effort
    XSM_RETURN_NOT_OK(service->SaveSnapshot(SnapshotPathFor(name)).status());
    XSM_RETURN_NOT_OK(service->AttachWal(env(), wal_path));
  }
  return Insert(name, std::move(service));
}

Result<Tenant*> TenantRegistry::WarmStart(const std::string& name,
                                          live::RecoveryReport* report) {
  if (!ValidTenantName(name)) {
    return Status::InvalidArgument("invalid tenant name '" + name + "'");
  }
  std::string path = SnapshotPathFor(name);
  if (path.empty()) {
    return Status::FailedPrecondition(
        "tenant persistence disabled (no state directory)");
  }
  std::string wal_path = WalPathFor(name);
  // The on-disk format, not the registry's current `shards` knob, decides
  // the boot path: a registry reconfigured between runs still boots every
  // tenant exactly as it was saved.
  bool sharded = LooksLikeShardManifest(env(), path);
  if (!wal_path.empty()) {
    live::RecoveryReport local;
    std::unique_ptr<service::Matcher> service;
    if (sharded) {
      XSM_ASSIGN_OR_RETURN(
          service,
          shard::ShardedMatchService::Recover(env(), path, wal_path,
                                              ServiceOptionsFor(name),
                                              shard::ShardedOptions(),
                                              &local));
    } else {
      XSM_ASSIGN_OR_RETURN(
          service,
          service::MatchService::Recover(env(), path, wal_path,
                                         ServiceOptionsFor(name), &local));
    }
    wal_recoveries_->Increment();
    wal_records_replayed_->Increment(local.records_replayed);
    wal_records_skipped_->Increment(local.records_skipped);
    if (local.torn_tail) wal_torn_tail_truncations_->Increment();
    if (report != nullptr) *report = local;
    return Insert(name, std::move(service));
  }
  std::unique_ptr<service::Matcher> service;
  if (sharded) {
    XSM_ASSIGN_OR_RETURN(
        service,
        shard::ShardedMatchService::WarmStart(path, ServiceOptionsFor(name),
                                              shard::ShardedOptions(), env()));
  } else {
    XSM_ASSIGN_OR_RETURN(
        service,
        service::MatchService::WarmStart(path, ServiceOptionsFor(name)));
  }
  return Insert(name, std::move(service));
}

Tenant* TenantRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.get();
}

std::vector<std::string> TenantRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) names.push_back(name);
  return names;
}

size_t TenantRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.size();
}

Result<store::SnapshotFileInfo> TenantRegistry::Save(
    const std::string& name) const {
  std::string path = SnapshotPathFor(name);
  if (path.empty()) {
    return Status::FailedPrecondition(
        "tenant persistence disabled (no state directory)");
  }
  Tenant* tenant = Find(name);
  if (tenant == nullptr) {
    return Status::NotFound("no tenant named '" + name + "'");
  }
  std::error_code ec;
  fs::create_directories(options_.state_dir, ec);  // best effort; save reports
  return tenant->service->SaveSnapshot(path);
}

Status TenantRegistry::SaveAll(
    size_t* saved, std::vector<TenantSaveFailure>* failures) const {
  Status first_error = Status::OK();
  size_t ok = 0;
  for (const std::string& name : Names()) {
    auto info = Save(name);
    if (info.ok()) {
      ++ok;
      continue;
    }
    if (failures != nullptr) {
      failures->push_back(TenantSaveFailure{name, info.status()});
    }
    if (first_error.ok()) first_error = info.status();
  }
  if (saved != nullptr) *saved = ok;
  return first_error;
}

size_t TenantRegistry::WarmStartAll() {
  if (options_.state_dir.empty()) return 0;
  std::error_code ec;
  fs::directory_iterator it(options_.state_dir, ec);
  if (ec) return 0;
  // Deterministic boot order regardless of directory enumeration.
  std::vector<std::string> stems;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    const fs::path& path = entry.path();
    if (path.extension() != ".snap") continue;
    stems.push_back(path.stem().string());
  }
  std::sort(stems.begin(), stems.end());
  size_t booted = 0;
  for (const std::string& stem : stems) {
    if (!ValidTenantName(stem)) {
      std::fprintf(stderr, "xsm::net: skipping snapshot with invalid tenant "
                           "name '%s'\n", stem.c_str());
      continue;
    }
    live::RecoveryReport report;
    auto tenant = WarmStart(stem, &report);
    if (!tenant.ok()) {
      std::fprintf(stderr, "xsm::net: warm start of tenant '%s' failed: %s\n",
                   stem.c_str(), tenant.status().ToString().c_str());
      continue;
    }
    if (report.records_replayed > 0 || report.torn_tail) {
      std::fprintf(stderr,
                   "xsm::net: tenant '%s' recovered to generation %llu "
                   "(checkpoint %llu + %zu journal records%s)\n",
                   stem.c_str(),
                   static_cast<unsigned long long>(
                       report.recovered_generation),
                   static_cast<unsigned long long>(
                       report.snapshot_generation),
                   report.records_replayed,
                   report.torn_tail ? ", torn tail dropped" : "");
    }
    ++booted;
  }
  return booted;
}

}  // namespace xsm::net
