#include "net/http.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cstdio>

namespace xsm::net {

namespace {

bool IsTokenChar(unsigned char c) {
  // RFC 9110 token characters.
  if (std::isalnum(c)) return true;
  switch (c) {
    case '!':
    case '#':
    case '$':
    case '%':
    case '&':
    case '\'':
    case '*':
    case '+':
    case '-':
    case '.':
    case '^':
    case '_':
    case '`':
    case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view TrimOws(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Case-insensitive comparison against an already-lowercase literal.
bool EqualsLower(std::string_view value, std::string_view lower) {
  if (value.size() != lower.size()) return false;
  for (size_t i = 0; i < value.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(value[i])) != lower[i]) {
      return false;
    }
  }
  return true;
}

/// True if the comma-separated `value` contains the token `lower`
/// (case-insensitively) — "Connection: keep-alive, Upgrade".
bool ContainsToken(std::string_view value, std::string_view lower) {
  size_t pos = 0;
  while (pos <= value.size()) {
    size_t comma = value.find(',', pos);
    std::string_view token = value.substr(
        pos, comma == std::string_view::npos ? std::string_view::npos
                                             : comma - pos);
    if (EqualsLower(TrimOws(token), lower)) return true;
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  return false;
}

}  // namespace

const std::string* HttpMessage::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

HttpParser::HttpParser(Mode mode, const HttpLimits& limits)
    : mode_(mode), limits_(limits) {}

void HttpParser::Fail(Status status) {
  state_ = State::kError;
  status_ = std::move(status);
  buffer_.clear();
  buffer_.shrink_to_fit();
}

void HttpParser::Feed(std::string_view data) {
  if (state_ == State::kError) return;
  if (state_ == State::kDone) {
    // Pipelined lookahead for the next message; bounded so a peer cannot
    // pump unread requests into memory while we serve the current one.
    if (buffer_.size() + data.size() > limits_.max_pipeline_bytes) {
      Fail(Status::OutOfRange("pipelined lookahead exceeds limit"));
      return;
    }
    buffer_.append(data);
    return;
  }
  // Every other state bounds its own consumption; the raw append here is
  // safe because Advance() drains the buffer down to (bounded) leftovers
  // each call, so the transient size is one read() worth of bytes plus a
  // bounded remainder.
  buffer_.append(data);
  Advance();
}

void HttpParser::Finish() {
  if (state_ == State::kBodyUntilEof) {
    message_.body.append(buffer_);
    buffer_.clear();
    state_ = State::kDone;
    return;
  }
  if (state_ == State::kDone || state_ == State::kError) return;
  if (state_ == State::kHeaders && buffer_.empty() &&
      message_.method.empty()) {
    // Clean EOF between messages: nothing was started, nothing truncated.
    Fail(Status::ParseError("connection closed before a request"));
    return;
  }
  Fail(Status::ParseError("connection closed mid-message (truncated)"));
}

void HttpParser::Reset() {
  if (state_ != State::kDone) return;
  message_ = HttpMessage();
  state_ = State::kHeaders;
  header_scan_ = 0;
  body_remaining_ = 0;
  chunk_remaining_ = 0;
  trailer_bytes_ = 0;
  status_ = Status::OK();
  if (!buffer_.empty()) Advance();
}

void HttpParser::Advance() {
  while (true) {
    switch (state_) {
      case State::kHeaders: {
        // Resume the terminator search three bytes back so a CRLFCRLF
        // split across Feed() boundaries is still found.
        size_t from = header_scan_ > 3 ? header_scan_ - 3 : 0;
        size_t end = buffer_.find("\r\n\r\n", from);
        if (end == std::string::npos) {
          if (buffer_.size() >= limits_.max_header_bytes) {
            Fail(Status::OutOfRange("header block exceeds " +
                                    std::to_string(limits_.max_header_bytes) +
                                    " bytes"));
          }
          header_scan_ = buffer_.size();
          return;
        }
        if (end + 4 > limits_.max_header_bytes) {
          Fail(Status::OutOfRange("header block exceeds " +
                                  std::to_string(limits_.max_header_bytes) +
                                  " bytes"));
          return;
        }
        if (!ParseHeaderBlock(std::string_view(buffer_).substr(0, end))) {
          return;  // Fail() already latched
        }
        buffer_.erase(0, end + 4);
        header_scan_ = 0;
        if (!DecideFraming()) return;
        break;
      }
      case State::kBody: {
        size_t take = static_cast<size_t>(
            std::min<uint64_t>(body_remaining_, buffer_.size()));
        message_.body.append(buffer_, 0, take);
        buffer_.erase(0, take);
        body_remaining_ -= take;
        if (body_remaining_ > 0) return;
        state_ = State::kDone;
        break;
      }
      case State::kBodyUntilEof: {
        if (message_.body.size() + buffer_.size() > limits_.max_body_bytes) {
          Fail(Status::OutOfRange("body exceeds " +
                                  std::to_string(limits_.max_body_bytes) +
                                  " bytes"));
          return;
        }
        message_.body.append(buffer_);
        buffer_.clear();
        return;  // completed by Finish()
      }
      case State::kChunkSize: {
        size_t eol = buffer_.find("\r\n");
        if (eol == std::string::npos) {
          if (buffer_.size() > limits_.max_chunk_line_bytes) {
            Fail(Status::ParseError("chunk-size line too long"));
          }
          return;
        }
        if (eol > limits_.max_chunk_line_bytes) {
          Fail(Status::ParseError("chunk-size line too long"));
          return;
        }
        std::string_view line = std::string_view(buffer_).substr(0, eol);
        uint64_t size = 0;
        size_t digits = 0;
        while (digits < line.size()) {
          char c = line[digits];
          int nibble;
          if (c >= '0' && c <= '9') {
            nibble = c - '0';
          } else if (c >= 'a' && c <= 'f') {
            nibble = c - 'a' + 10;
          } else if (c >= 'A' && c <= 'F') {
            nibble = c - 'A' + 10;
          } else {
            break;
          }
          // Overflow guard before the shift: anything past the body limit
          // is rejected anyway, so cap the accumulator there.
          size = size * 16 + static_cast<uint64_t>(nibble);
          if (size > limits_.max_body_bytes) {
            Fail(Status::OutOfRange("chunk exceeds body limit"));
            return;
          }
          ++digits;
        }
        if (digits == 0) {
          Fail(Status::ParseError("malformed chunk size"));
          return;
        }
        // Only a chunk extension (";...") may follow the hex digits.
        if (digits < line.size() && line[digits] != ';') {
          Fail(Status::ParseError("malformed chunk size"));
          return;
        }
        if (message_.body.size() + size > limits_.max_body_bytes) {
          Fail(Status::OutOfRange("body exceeds " +
                                  std::to_string(limits_.max_body_bytes) +
                                  " bytes"));
          return;
        }
        buffer_.erase(0, eol + 2);
        if (size == 0) {
          state_ = State::kTrailer;
        } else {
          chunk_remaining_ = size;
          state_ = State::kChunkData;
        }
        break;
      }
      case State::kChunkData: {
        size_t take = static_cast<size_t>(
            std::min<uint64_t>(chunk_remaining_, buffer_.size()));
        message_.body.append(buffer_, 0, take);
        buffer_.erase(0, take);
        chunk_remaining_ -= take;
        if (chunk_remaining_ > 0) return;
        state_ = State::kChunkDataCrlf;
        break;
      }
      case State::kChunkDataCrlf: {
        if (buffer_.size() < 2) return;
        if (buffer_[0] != '\r' || buffer_[1] != '\n') {
          Fail(Status::ParseError("missing CRLF after chunk data"));
          return;
        }
        buffer_.erase(0, 2);
        state_ = State::kChunkSize;
        break;
      }
      case State::kTrailer: {
        size_t eol = buffer_.find("\r\n");
        if (eol == std::string::npos) {
          if (buffer_.size() > limits_.max_trailer_bytes) {
            Fail(Status::OutOfRange("trailer section exceeds limit"));
          }
          return;
        }
        trailer_bytes_ += eol + 2;
        if (trailer_bytes_ > limits_.max_trailer_bytes) {
          Fail(Status::OutOfRange("trailer section exceeds limit"));
          return;
        }
        bool empty = eol == 0;
        buffer_.erase(0, eol + 2);  // trailer fields are dropped, not kept
        if (empty) state_ = State::kDone;
        break;
      }
      case State::kDone:
      case State::kError:
        return;
    }
  }
}

bool HttpParser::ParseStartLine(std::string_view line) {
  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos
                   ? std::string_view::npos
                   : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    Fail(Status::ParseError("malformed start line"));
    return false;
  }
  if (mode_ == Mode::kRequest) {
    std::string_view method = line.substr(0, sp1);
    std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    std::string_view version = line.substr(sp2 + 1);
    if (method.empty() || method.size() > 16 ||
        !std::all_of(method.begin(), method.end(), [](char c) {
          return IsTokenChar(static_cast<unsigned char>(c));
        })) {
      Fail(Status::ParseError("malformed request method"));
      return false;
    }
    if (target.empty() || (target[0] != '/' && target != "*") ||
        std::any_of(target.begin(), target.end(), [](unsigned char c) {
          return c <= 0x20 || c == 0x7f;
        })) {
      Fail(Status::ParseError("malformed request target"));
      return false;
    }
    if (version != "HTTP/1.1" && version != "HTTP/1.0") {
      Fail(Status::Unimplemented("unsupported HTTP version"));
      return false;
    }
    message_.method = std::string(method);
    message_.target = std::string(target);
    message_.version = std::string(version);
  } else {
    std::string_view version = line.substr(0, sp1);
    std::string_view code = line.substr(sp1 + 1, sp2 - sp1 - 1);
    if ((version != "HTTP/1.1" && version != "HTTP/1.0") ||
        code.size() != 3 ||
        !std::all_of(code.begin(), code.end(), [](unsigned char c) {
          return std::isdigit(c);
        })) {
      Fail(Status::ParseError("malformed status line"));
      return false;
    }
    message_.version = std::string(version);
    message_.status_code = (code[0] - '0') * 100 + (code[1] - '0') * 10 +
                           (code[2] - '0');
    message_.reason = std::string(line.substr(sp2 + 1));
  }
  return true;
}

bool HttpParser::ParseHeaderBlock(std::string_view block) {
  size_t eol = block.find("\r\n");
  std::string_view start_line =
      eol == std::string_view::npos ? block : block.substr(0, eol);
  if (!ParseStartLine(start_line)) return false;
  size_t pos = eol == std::string_view::npos ? block.size() : eol + 2;
  while (pos < block.size()) {
    size_t line_end = block.find("\r\n", pos);
    std::string_view line = block.substr(
        pos, line_end == std::string_view::npos ? std::string_view::npos
                                                : line_end - pos);
    pos = line_end == std::string_view::npos ? block.size() : line_end + 2;
    if (line.empty()) {
      Fail(Status::ParseError("empty header line inside block"));
      return false;
    }
    if (line[0] == ' ' || line[0] == '\t') {
      // Obsolete line folding: deprecated, and a classic smuggling vector.
      Fail(Status::ParseError("folded header line"));
      return false;
    }
    size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      Fail(Status::ParseError("header line without name"));
      return false;
    }
    std::string_view name = line.substr(0, colon);
    if (!std::all_of(name.begin(), name.end(), [](char c) {
          return IsTokenChar(static_cast<unsigned char>(c));
        })) {
      Fail(Status::ParseError("malformed header name"));
      return false;
    }
    std::string_view value = TrimOws(line.substr(colon + 1));
    if (std::any_of(value.begin(), value.end(), [](unsigned char c) {
          return c == 0 || c == '\r' || c == '\n';
        })) {
      Fail(Status::ParseError("control byte in header value"));
      return false;
    }
    if (message_.headers.size() >= limits_.max_headers) {
      Fail(Status::OutOfRange("more than " +
                              std::to_string(limits_.max_headers) +
                              " headers"));
      return false;
    }
    message_.headers.emplace_back(ToLower(name), std::string(value));
  }
  return true;
}

bool HttpParser::DecideFraming() {
  const std::string* te = message_.FindHeader("transfer-encoding");
  const std::string* cl = message_.FindHeader("content-length");

  // Connection semantics before framing, so even a framing error leaves a
  // sensible keep_alive for the error response.
  message_.keep_alive = message_.version == "HTTP/1.1";
  if (const std::string* conn = message_.FindHeader("connection")) {
    if (ContainsToken(*conn, "close")) message_.keep_alive = false;
    if (ContainsToken(*conn, "keep-alive")) message_.keep_alive = true;
  }

  if (te != nullptr && cl != nullptr) {
    // The classic request-smuggling ambiguity; reject outright.
    Fail(Status::ParseError(
        "both Content-Length and Transfer-Encoding present"));
    return false;
  }
  if (te != nullptr) {
    if (!EqualsLower(*te, "chunked")) {
      Fail(Status::Unimplemented("transfer-encoding other than chunked"));
      return false;
    }
    message_.chunked = true;
    state_ = State::kChunkSize;
    return true;
  }
  if (cl != nullptr) {
    // Strict digits-only parse; a second Content-Length header or any
    // non-digit (sign, space, overflow padding) is rejected.
    size_t occurrences = 0;
    for (const auto& [key, value] : message_.headers) {
      (void)value;
      if (key == "content-length") ++occurrences;
    }
    if (occurrences > 1) {
      Fail(Status::ParseError("multiple Content-Length headers"));
      return false;
    }
    if (cl->empty() || cl->size() > 18 ||
        !std::all_of(cl->begin(), cl->end(), [](unsigned char c) {
          return std::isdigit(c);
        })) {
      Fail(Status::ParseError("malformed Content-Length"));
      return false;
    }
    uint64_t length = 0;
    for (char c : *cl) length = length * 10 + static_cast<uint64_t>(c - '0');
    if (length > limits_.max_body_bytes) {
      Fail(Status::OutOfRange("body exceeds " +
                              std::to_string(limits_.max_body_bytes) +
                              " bytes"));
      return false;
    }
    body_remaining_ = length;
    state_ = length == 0 ? State::kDone : State::kBody;
    return true;
  }
  // No framing header: requests have no body; responses read until EOF.
  state_ = mode_ == Mode::kRequest ? State::kDone : State::kBodyUntilEof;
  return true;
}

std::string_view ReasonPhrase(int code) {
  switch (code) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 410: return "Gone";
    case 413: return "Content Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default:  return "Status";
  }
}

std::string SimpleResponse(int code, std::string_view content_type,
                           std::string_view body, bool keep_alive) {
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.1 ";
  out += std::to_string(code);
  out += ' ';
  out += ReasonPhrase(code);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += keep_alive ? "\r\nConnection: keep-alive"
                    : "\r\nConnection: close";
  out += "\r\n\r\n";
  out += body;
  return out;
}

std::string ChunkedResponseHead(int code, std::string_view content_type,
                                bool keep_alive) {
  std::string out;
  out += "HTTP/1.1 ";
  out += std::to_string(code);
  out += ' ';
  out += ReasonPhrase(code);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nTransfer-Encoding: chunked";
  out += keep_alive ? "\r\nConnection: keep-alive"
                    : "\r\nConnection: close";
  out += "\r\n\r\n";
  return out;
}

std::string EncodeChunk(std::string_view data) {
  if (data.empty()) return std::string();
  char size_line[32];
  int n = std::snprintf(size_line, sizeof(size_line), "%zx\r\n", data.size());
  std::string out;
  out.reserve(data.size() + static_cast<size_t>(n) + 2);
  out.append(size_line, static_cast<size_t>(n));
  out.append(data);
  out += "\r\n";
  return out;
}

int HttpCodeForStatus(const Status& status) {
  assert(!status.ok());
  switch (status.code()) {
    case StatusCode::kParseError:
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kOutOfRange:
      return 413;
    case StatusCode::kFailedPrecondition:
      return 409;
    case StatusCode::kUnimplemented:
      return 501;
    case StatusCode::kDeadlineExceeded:
      return 504;
    default:
      return 500;
  }
}

std::vector<std::string> SplitPathSegments(std::string_view target) {
  size_t query = target.find('?');
  if (query != std::string_view::npos) target = target.substr(0, query);
  std::vector<std::string> segments;
  size_t pos = 0;
  while (pos < target.size()) {
    if (target[pos] == '/') {
      ++pos;
      continue;
    }
    size_t next = target.find('/', pos);
    if (next == std::string_view::npos) next = target.size();
    segments.emplace_back(target.substr(pos, next - pos));
    pos = next;
  }
  return segments;
}

}  // namespace xsm::net
