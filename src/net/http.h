// Bounded HTTP/1.1 message parsing and framing for the xsm::net serving
// front end. Dependency-free (std only) and deliberately small: request
// lines, header blocks, Content-Length bodies and chunked transfer coding —
// enough to serve and consume the NDJSON streaming API, nothing more.
//
// The parser follows the same sticky-error discipline as util::wire::Reader:
// every byte is bounds- and limit-checked before it is buffered, the first
// violation latches a typed Status (ParseError for malformed syntax,
// OutOfRange for exceeded limits, Unimplemented for unsupported features)
// and later input is ignored, so hostile input — oversized headers, crafted
// chunk lengths, truncation — degrades into one typed error, never
// unbounded allocation or UB.
#ifndef XSM_NET_HTTP_H_
#define XSM_NET_HTTP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace xsm::net {

/// Hard caps the parser enforces while buffering. Every limit is checked
/// *before* memory grows, so a hostile peer cannot balloon the process by
/// claiming a large length or streaming an endless header.
struct HttpLimits {
  /// Start line + header block, terminator included.
  size_t max_header_bytes = 16 * 1024;
  size_t max_headers = 64;
  /// Decoded body bytes (Content-Length value or de-chunked total).
  size_t max_body_bytes = 8u << 20;
  /// Chunk-size line, extensions included.
  size_t max_chunk_line_bytes = 256;
  /// Trailer section after the last chunk.
  size_t max_trailer_bytes = 1024;
  /// Pipelined lookahead buffered beyond the current message.
  size_t max_pipeline_bytes = 64 * 1024;
};

/// One parsed HTTP/1.1 message. Requests fill method/target, responses fill
/// status_code/reason; everything else is shared.
struct HttpMessage {
  std::string method;   ///< requests: "GET", "POST", ...
  std::string target;   ///< requests: origin-form target, query included
  int status_code = 0;  ///< responses
  std::string reason;   ///< responses
  std::string version;  ///< "HTTP/1.1" or "HTTP/1.0"
  /// Name/value pairs in wire order; names are lowercased.
  std::vector<std::pair<std::string, std::string>> headers;
  /// Decoded body (Content-Length bytes or de-chunked data).
  std::string body;
  bool keep_alive = true;
  bool chunked = false;

  /// First header named `name` (lowercase), or nullptr.
  const std::string* FindHeader(std::string_view name) const;
};

/// Incremental push parser over one connection's byte stream. Feed() bytes
/// as they arrive; when done() the completed message is in message(), and
/// Reset() consumes it and resumes on any pipelined lookahead. failed() is
/// sticky — a connection whose parser failed must be answered (if at all)
/// and closed.
class HttpParser {
 public:
  enum class Mode { kRequest, kResponse };

  explicit HttpParser(Mode mode, const HttpLimits& limits = HttpLimits());

  /// Buffers `data` and advances the state machine as far as it can.
  /// Ignored after a failure. Bytes beyond the current message are kept as
  /// lookahead (bounded by max_pipeline_bytes) for the next Reset().
  void Feed(std::string_view data);

  /// Signals end of stream. A response being read until-EOF completes; a
  /// message truncated mid-frame fails with ParseError.
  void Finish();

  bool done() const { return state_ == State::kDone; }
  bool failed() const { return state_ == State::kError; }
  const Status& status() const { return status_; }

  /// Valid while done().
  const HttpMessage& message() const { return message_; }
  HttpMessage& message() { return message_; }

  /// Discards the completed message and starts parsing the next request
  /// from the buffered lookahead. Only meaningful while done().
  void Reset();

  /// Bytes buffered but not yet consumed by a completed message.
  size_t buffered_bytes() const { return buffer_.size(); }

  /// Unconsumed lookahead past the completed message (pipelined peers).
  const std::string& lookahead() const { return buffer_; }

  /// True when an EOF now would truncate a partially received message —
  /// as opposed to closing an idle connection between requests.
  bool midstream() const {
    return state_ != State::kDone && state_ != State::kError &&
           !(state_ == State::kHeaders && buffer_.empty() &&
             message_.method.empty());
  }

 private:
  enum class State {
    kHeaders,
    kBody,
    kBodyUntilEof,
    kChunkSize,
    kChunkData,
    kChunkDataCrlf,
    kTrailer,
    kDone,
    kError,
  };

  void Advance();
  bool ParseHeaderBlock(std::string_view block);
  bool ParseStartLine(std::string_view line);
  bool DecideFraming();
  void Fail(Status status);

  Mode mode_;
  HttpLimits limits_;
  State state_ = State::kHeaders;
  Status status_;
  HttpMessage message_;
  std::string buffer_;
  size_t header_scan_ = 0;       ///< resume point of the CRLFCRLF search
  uint64_t body_remaining_ = 0;  ///< Content-Length framing
  uint64_t chunk_remaining_ = 0;
  size_t trailer_bytes_ = 0;
};

/// Standard reason phrase for `code` ("OK", "Not Found", ...).
std::string_view ReasonPhrase(int code);

/// A complete Content-Length-framed response.
std::string SimpleResponse(int code, std::string_view content_type,
                           std::string_view body, bool keep_alive);

/// The status line + headers opening a chunked response; follow with
/// EncodeChunk() per payload piece and kChunkedFinal to end.
std::string ChunkedResponseHead(int code, std::string_view content_type,
                                bool keep_alive);

/// One chunk frame (hex size, CRLF, data, CRLF). Empty data encodes to an
/// empty string — a zero-size chunk would terminate the stream.
std::string EncodeChunk(std::string_view data);

/// Terminates a chunked response (zero chunk + empty trailer).
inline constexpr std::string_view kChunkedFinal = "0\r\n\r\n";

/// The HTTP status code a typed Status maps to: ParseError → 400,
/// OutOfRange → 413, Unimplemented → 501, NotFound → 404, InvalidArgument
/// → 400, FailedPrecondition → 409, DeadlineExceeded → 504, everything
/// else → 500 (OK asserts — it is not an error).
int HttpCodeForStatus(const Status& status);

/// Splits an origin-form target into decoded path segments, dropping the
/// query string: "/v1/tenants/t1/match?x=1" → {"v1", "tenants", "t1",
/// "match"}. Rejects nothing — callers route on the segments.
std::vector<std::string> SplitPathSegments(std::string_view target);

}  // namespace xsm::net

#endif  // XSM_NET_HTTP_H_
