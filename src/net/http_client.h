// Minimal blocking HTTP/1.1 client over one TCP connection — the test and
// benchmark harness counterpart of HttpServer. Reuses HttpParser in
// response mode, so response framing (Content-Length, chunked, until-EOF)
// is decoded by the same hardened state machine the server trusts for
// requests. Also exposes the raw socket, which the hostile-input and
// disconnect tests use to send malformed bytes and hang up mid-response.
#ifndef XSM_NET_HTTP_CLIENT_H_
#define XSM_NET_HTTP_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "net/http.h"
#include "util/status.h"

namespace xsm::net {

/// Serializes one request with a Content-Length body.
std::string BuildRequest(std::string_view method, std::string_view target,
                         std::string_view body,
                         std::string_view content_type = "text/plain",
                         bool keep_alive = true);

/// One blocking client connection. Not thread-safe; use one per thread.
class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient() { Close(); }

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;
  HttpClient(HttpClient&& other) noexcept;
  HttpClient& operator=(HttpClient&& other) noexcept;

  /// `timeout_seconds` > 0 bounds the TCP handshake: a peer that accepts
  /// nothing within it yields a typed kDeadlineExceeded (a refused or
  /// unreachable peer stays kIOError with the errno detail).
  Status Connect(const std::string& host, uint16_t port,
                 double timeout_seconds = 0);
  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends raw bytes verbatim (hostile-input tests build their own).
  Status SendRaw(std::string_view bytes);

  /// BuildRequest + SendRaw.
  Status SendRequest(std::string_view method, std::string_view target,
                     std::string_view body,
                     std::string_view content_type = "text/plain",
                     bool keep_alive = true);

  /// Blocks until one complete response is parsed (or the peer closes /
  /// errors). Keep-alive responses leave the connection usable for the
  /// next SendRequest; Connection: close responses (and EOF-framed
  /// bodies) close it. `timeout_seconds` > 0 is a wall-clock deadline on
  /// the whole response: a server that hangs (or trickles bytes) past it
  /// yields a typed kDeadlineExceeded instead of blocking forever. A peer
  /// that half-closes mid-response yields kIOError ("connection closed
  /// before a complete response") — a transport fault, distinct from a
  /// malformed response, which keeps the parser's typed parse failure.
  Result<HttpMessage> ReadResponse(const HttpLimits& limits = HttpLimits(),
                                   double timeout_seconds = 0);

  /// SendRequest + ReadResponse.
  Result<HttpMessage> Fetch(std::string_view method, std::string_view target,
                            std::string_view body = "",
                            std::string_view content_type = "text/plain",
                            bool keep_alive = true);

  /// Reads until `marker` appears in the accumulated raw bytes or the
  /// peer closes; returns what was read. The mid-stream-disconnect test
  /// uses this to leave with a response half-consumed.
  Result<std::string> ReadUntil(std::string_view marker,
                                size_t max_bytes = 1 << 20);

  /// Half-close: no more request bytes, responses still readable.
  void CloseWrite();
  void Close();

 private:
  int fd_ = -1;
  /// Bytes read past the previous response (keep-alive lookahead).
  std::string leftover_;
};

/// Connect + Fetch + Close in one call.
Result<HttpMessage> FetchOnce(const std::string& host, uint16_t port,
                              std::string_view method,
                              std::string_view target,
                              std::string_view body = "",
                              std::string_view content_type = "text/plain");

}  // namespace xsm::net

#endif  // XSM_NET_HTTP_CLIENT_H_
