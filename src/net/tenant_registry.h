// TenantRegistry: the multi-tenant heart of the xsm::net front end. Each
// named tenant owns a full serving stack — its own Matcher backend (a
// single-snapshot MatchService, or a ShardedMatchService when
// TenantRegistryOptions::shards > 1; either way a live generation chain
// and cluster-cache namespaces) plus a ServeSession exposing the NDJSON
// surface — so tenants evolve, cache and persist independently: a delta
// ingested into one tenant can never touch another's snapshots or warm
// caches.
//
// Persistence: when constructed with a state directory, each tenant maps
// to `<state_dir>/<name>.snap` via xsm::store. SaveAll() persists every
// tenant (the drain path), WarmStartAll() boots every *.snap found (the
// restart path), and because warm starts continue the generation chain,
// a kill + warm restart resumes each tenant at its pre-drain generation.
//
// Crash safety: with journaling on (the default when a state directory is
// set), each tenant additionally owns `<state_dir>/<name>.wal`. Create()
// checkpoints the newborn tenant and attaches the journal, so every
// acknowledged delta from then on is fsync'd into the WAL before its
// generation publishes; WarmStartAll() boots through
// MatchService::Recover — load checkpoint, replay journal suffix — so a
// SIGKILL'd server warm-restarts with zero acknowledged-delta loss, not
// just whatever the last explicit save happened to capture.
//
// Thread-safety: all methods are safe to call concurrently. Tenants are
// created and never destroyed while the registry lives, so the pointers
// handed out stay valid for the registry's lifetime — request handlers
// may hold them across a streaming response without a lock.
#ifndef XSM_NET_TENANT_REGISTRY_H_
#define XSM_NET_TENANT_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "schema/schema_forest.h"
#include "service/match_service.h"
#include "service/serve_session.h"
#include "store/snapshot_store.h"
#include "util/io.h"
#include "util/status.h"

namespace xsm::net {

struct TenantRegistryOptions {
  /// Applied to every tenant's Matcher backend.
  service::MatchServiceOptions service;
  /// Shards per tenant. 1 (the default) serves each tenant from a plain
  /// MatchService; > 1 serves it from a shard::ShardedMatchService with
  /// this many node-balanced shards (results stay byte-identical — see
  /// src/shard). Warm starts sniff the on-disk format, so a registry can
  /// boot snapshots saved under either setting.
  size_t shards = 1;
  /// Applied to every tenant's ServeSession. allow_filesystem is forced
  /// off regardless — remote clients must never name server paths; tenant
  /// persistence goes through Save*/WarmStart* and the state directory.
  service::ServeSessionOptions session;
  /// Directory for `<name>.snap` tenant snapshots; empty disables
  /// persistence (Save*/WarmStart* fail with FailedPrecondition).
  std::string state_dir;
  /// Journal every tenant's deltas into `<state_dir>/<name>.wal` (see the
  /// crash-safety note above). Ignored without a state directory.
  bool enable_wal = true;
  /// Filesystem seam every snapshot and journal goes through; null means
  /// util::io::Env::Default(). Tests inject a FaultInjectionEnv here to
  /// script save/journal failures.
  util::io::Env* env = nullptr;
  /// Shared metrics registry every tenant's service records into (each
  /// under its own {tenant="<name>"} label); null means the registry owns
  /// a private one. The HTTP server scrapes this for GET /metrics, so all
  /// tenants land on one exposition surface.
  obs::MetricsRegistry* metrics = nullptr;
};

/// One tenant's serving stack.
struct Tenant {
  std::string name;
  std::unique_ptr<service::Matcher> service;
  std::unique_ptr<service::ServeSession> session;
};

class TenantRegistry {
 public:
  /// Valid tenant names are 1..64 chars of [A-Za-z0-9_.-], not starting
  /// with '.' — names double as snapshot file stems, so this shuts out
  /// path traversal ("../../etc"), separators and hidden files.
  static bool ValidTenantName(std::string_view name);

  explicit TenantRegistry(TenantRegistryOptions options);

  /// Creates tenant `name` over `forest` (validated + indexed once).
  /// FailedPrecondition if the name is taken, InvalidArgument if
  /// malformed. With journaling on, the newborn tenant is checkpointed to
  /// the state dir and its WAL attached before it becomes visible — a
  /// journaled tenant always has a base snapshot to recover onto.
  Result<Tenant*> Create(const std::string& name,
                         schema::SchemaForest forest);

  /// Boots tenant `name` from its state-dir snapshot, resuming its
  /// generation chain where the last save left it. With journaling on
  /// this is a crash recovery: the journal suffix past the checkpoint is
  /// replayed (each record fingerprint-verified) and journaling resumes;
  /// `report` (may be null) receives the replay accounting.
  Result<Tenant*> WarmStart(const std::string& name,
                            live::RecoveryReport* report = nullptr);

  /// The named tenant, or nullptr. The pointer stays valid for the
  /// registry's lifetime.
  Tenant* Find(const std::string& name) const;

  /// Tenant names in sorted order.
  std::vector<std::string> Names() const;

  size_t size() const;

  /// Persists one tenant to `<state_dir>/<name>.snap`; returns what was
  /// written.
  Result<store::SnapshotFileInfo> Save(const std::string& name) const;

  /// One tenant the drain could not persist, with the typed cause.
  struct TenantSaveFailure {
    std::string tenant;
    Status status;
  };

  /// Persists every tenant (the graceful-drain path). One tenant's
  /// failure never aborts the drain: every tenant is attempted, `saved`
  /// (optional) receives the success count, `failures` (optional)
  /// receives each failed tenant with its typed status, and the first
  /// error (if any) is returned.
  Status SaveAll(size_t* saved = nullptr,
                 std::vector<TenantSaveFailure>* failures = nullptr) const;

  /// Boots every `*.snap` in the state directory as a tenant (the warm
  /// restart path). Files whose stem is not a valid tenant name, or that
  /// fail to load, are skipped with a note to stderr; returns the number
  /// booted. A missing or empty state directory boots zero tenants.
  size_t WarmStartAll();

  /// `<state_dir>/<name>.snap`; empty when persistence is disabled.
  std::string SnapshotPathFor(const std::string& name) const;

  /// `<state_dir>/<name>.wal`; empty when journaling is off.
  std::string WalPathFor(const std::string& name) const;

  /// The effective filesystem seam (never null).
  util::io::Env* env() const;

  /// The shared metrics registry (owned or borrowed; never null). All
  /// tenant services, the HTTP server and the WAL-recovery counters below
  /// record here, so one scrape covers the whole process.
  obs::MetricsRegistry& metrics() const { return *metrics_; }

 private:
  Result<Tenant*> Insert(const std::string& name,
                         std::unique_ptr<service::Matcher> service);

  /// A copy of options_.service stamped with the shared registry and the
  /// tenant label — what every tenant's backend is constructed with.
  service::MatchServiceOptions ServiceOptionsFor(
      const std::string& name) const;

  TenantRegistryOptions options_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  /// Registry handles (process-wide, unlabeled): tenant count and the
  /// journal-recovery tallies WarmStart accumulates across boots.
  obs::Gauge* tenants_gauge_ = nullptr;
  obs::Counter* wal_recoveries_ = nullptr;
  obs::Counter* wal_records_replayed_ = nullptr;
  obs::Counter* wal_records_skipped_ = nullptr;
  obs::Counter* wal_torn_tail_truncations_ = nullptr;
  mutable std::mutex mu_;
  /// Values are never erased; map node stability keeps Tenant* valid.
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
};

}  // namespace xsm::net

#endif  // XSM_NET_TENANT_REGISTRY_H_
