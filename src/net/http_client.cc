#include "net/http_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

#include "util/timer.h"

namespace xsm::net {

namespace {

/// Remaining milliseconds of a deadline for poll(), at least 1 while any
/// fraction is left so a deadline can never spin at zero.
int RemainingPollMs(double timeout_seconds, const Timer& since) {
  double left = timeout_seconds - since.ElapsedSeconds();
  if (left <= 0) return 0;
  return std::max(1, static_cast<int>(std::ceil(left * 1000.0)));
}

}  // namespace

std::string BuildRequest(std::string_view method, std::string_view target,
                         std::string_view body,
                         std::string_view content_type, bool keep_alive) {
  std::string out;
  out.reserve(body.size() + 160);
  out += method;
  out += ' ';
  out += target;
  out += " HTTP/1.1\r\nHost: localhost\r\n";
  if (!body.empty()) {
    out += "Content-Type: ";
    out += content_type;
    out += "\r\n";
  }
  out += "Content-Length: ";
  out += std::to_string(body.size());
  out += keep_alive ? "\r\nConnection: keep-alive"
                    : "\r\nConnection: close";
  out += "\r\n\r\n";
  out += body;
  return out;
}

HttpClient::HttpClient(HttpClient&& other) noexcept
    : fd_(other.fd_), leftover_(std::move(other.leftover_)) {
  other.fd_ = -1;
}

HttpClient& HttpClient::operator=(HttpClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    leftover_ = std::move(other.leftover_);
    other.fd_ = -1;
  }
  return *this;
}

Status HttpClient::Connect(const std::string& host, uint16_t port,
                           double timeout_seconds) {
  Close();
  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Status::IOError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("unparseable host '" + host + "'");
  }
  const std::string peer = host + ":" + std::to_string(port);
  if (timeout_seconds <= 0) {
    if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      Status status = Status::IOError("connect(" + peer +
                                      ") failed: " + std::strerror(errno));
      Close();
      return status;
    }
  } else {
    // Bounded handshake: connect non-blocking, poll for writability until
    // the deadline, then read SO_ERROR for the verdict.
    int flags = fcntl(fd_, F_GETFL, 0);
    fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    int rc = connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
      Status status = Status::IOError("connect(" + peer +
                                      ") failed: " + std::strerror(errno));
      Close();
      return status;
    }
    if (rc != 0) {
      Timer since;
      pollfd pfd{fd_, POLLOUT, 0};
      while (true) {
        int ms = RemainingPollMs(timeout_seconds, since);
        if (ms == 0) {
          Close();
          return Status::DeadlineExceeded("connect(" + peer +
                                          ") timed out after " +
                                          std::to_string(timeout_seconds) +
                                          "s");
        }
        int ready = poll(&pfd, 1, ms);
        if (ready > 0) break;
        if (ready < 0 && errno != EINTR) {
          Status status = Status::IOError(std::string("poll() failed: ") +
                                          std::strerror(errno));
          Close();
          return status;
        }
      }
      int err = 0;
      socklen_t len = sizeof(err);
      getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        Close();
        return Status::IOError("connect(" + peer +
                               ") failed: " + std::strerror(err));
      }
    }
    fcntl(fd_, F_SETFL, flags);
  }
  int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

Status HttpClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = send(fd_, bytes.data() + sent, bytes.size() - sent,
                     MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send() failed: ") +
                             std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status HttpClient::SendRequest(std::string_view method,
                               std::string_view target,
                               std::string_view body,
                               std::string_view content_type,
                               bool keep_alive) {
  return SendRaw(BuildRequest(method, target, body, content_type,
                              keep_alive));
}

Result<HttpMessage> HttpClient::ReadResponse(const HttpLimits& limits,
                                             double timeout_seconds) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  HttpParser parser(HttpParser::Mode::kResponse, limits);
  if (!leftover_.empty()) {
    parser.Feed(leftover_);
    leftover_.clear();
  }
  Timer since;
  char buf[16 * 1024];
  while (!parser.done() && !parser.failed()) {
    if (timeout_seconds > 0) {
      // One wall-clock deadline over the whole response: a hung *or
      // trickling* server cannot stretch it by keeping each read short.
      pollfd pfd{fd_, POLLIN, 0};
      int ms = RemainingPollMs(timeout_seconds, since);
      int ready = ms == 0 ? 0 : poll(&pfd, 1, ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        Close();
        return Status::IOError(std::string("poll() failed: ") +
                               std::strerror(errno));
      }
      if (ready == 0) {
        Close();
        return Status::DeadlineExceeded(
            "response deadline (" + std::to_string(timeout_seconds) +
            "s) exceeded with the response incomplete");
      }
    }
    ssize_t n = read(fd_, buf, sizeof(buf));
    if (n > 0) {
      parser.Feed(std::string_view(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      // A reset peer is a transport fault the retry layer treats like any
      // other dropped connection; carry the errno for the log line.
      Close();
      return Status::IOError(std::string("read() failed: ") +
                             std::strerror(errno));
    }
    bool was_midstream = parser.midstream();
    parser.Finish();  // EOF completes until-EOF bodies, fails truncation
    if (parser.failed() && was_midstream) {
      // A half-close that truncates a response in flight is a transport
      // fault (the retry layer's "reset"), not a malformed response.
      Close();
      return Status::IOError("connection closed before a complete response");
    }
    break;
  }
  if (parser.failed()) {
    Close();
    return parser.status();
  }
  if (!parser.done()) {
    Close();
    return Status::IOError("connection closed before a complete response");
  }
  // Keep any bytes past this response (a pipelined successor) for the
  // next ReadResponse; dropping them would hang that read forever.
  leftover_ = parser.lookahead();
  HttpMessage message = std::move(parser.message());
  if (!message.keep_alive) Close();
  return message;
}

Result<HttpMessage> HttpClient::Fetch(std::string_view method,
                                      std::string_view target,
                                      std::string_view body,
                                      std::string_view content_type,
                                      bool keep_alive) {
  Status status = SendRequest(method, target, body, content_type, keep_alive);
  if (!status.ok()) return status;
  return ReadResponse();
}

Result<std::string> HttpClient::ReadUntil(std::string_view marker,
                                          size_t max_bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  std::string seen = std::move(leftover_);
  leftover_.clear();
  char buf[4096];
  while (seen.find(marker) == std::string::npos) {
    if (seen.size() > max_bytes) {
      return Status::OutOfRange("marker not found in " +
                                std::to_string(max_bytes) + " bytes");
    }
    ssize_t n = read(fd_, buf, sizeof(buf));
    if (n > 0) {
      seen.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IOError("connection closed before marker");
  }
  return seen;
}

void HttpClient::CloseWrite() {
  if (fd_ >= 0) shutdown(fd_, SHUT_WR);
}

void HttpClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  leftover_.clear();
}

Result<HttpMessage> FetchOnce(const std::string& host, uint16_t port,
                              std::string_view method,
                              std::string_view target,
                              std::string_view body,
                              std::string_view content_type) {
  HttpClient client;
  Status status = client.Connect(host, port);
  if (!status.ok()) return status;
  return client.Fetch(method, target, body, content_type,
                      /*keep_alive=*/false);
}

}  // namespace xsm::net
