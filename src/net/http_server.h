// HttpServer: the xsm::net socket front end. A single poll()-based event
// loop owns every file descriptor — it accepts connections, reads request
// bytes into per-connection HttpParsers, and writes queued response bytes.
// Completed requests are handed to a worker pool; workers never touch a
// socket: they run the request against the tenant's ServeSession and
// append framed response bytes to the connection's locked output buffer,
// waking the loop through its self-pipe. That split keeps the loop
// non-blocking (a slow query can never stall accepts or other
// connections) and makes client disconnects observable mid-query: when
// the loop reads EOF on a connection whose request is still running, it
// cancels the request's CancelToken — the query winds down cooperatively
// and the partial response is discarded.
//
// Admission control reuses the engine's deadline machinery rather than
// inventing a queue: up to `soft_inflight` concurrent match/batch
// requests run with the tenant's full default deadline; between soft and
// `max_inflight` the deadline scales linearly down to
// `min_deadline_fraction` of the default (the engine's anytime contract
// turns the tighter budget into smaller result sets, not errors); at
// `max_inflight` requests are shed immediately with a typed NDJSON 503.
//
// Graceful drain: RequestShutdown() (async-signal-safe; wired to
// SIGINT/SIGTERM by InstallShutdownSignalHandlers) stops the listener,
// lets in-flight requests finish — cancelling stragglers after
// `drain_cancel_seconds` — flushes and closes every connection, then
// saves every tenant to the registry's state directory, so a warm
// restart resumes each tenant at its pre-drain generation.
#ifndef XSM_NET_HTTP_SERVER_H_
#define XSM_NET_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/http.h"
#include "net/tenant_registry.h"
#include "obs/metrics.h"
#include "util/histogram.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace xsm::net {

struct AdmissionOptions {
  /// Hard cap on concurrently executing match/batch requests; the
  /// (max_inflight+1)-th is shed with a typed 503. 0 disables shedding.
  size_t max_inflight = 256;
  /// Below this many in-flight requests, queries run with the tenant's
  /// full default deadline; from here to max_inflight the deadline
  /// tightens linearly. 0 means max_inflight (no scaling band).
  size_t soft_inflight = 0;
  /// Deadline fraction applied at the hard cap (0.25 = a request admitted
  /// at the last slot gets a quarter of the default deadline). Only
  /// meaningful when the tenant service has a default deadline.
  double min_deadline_fraction = 0.25;
};

struct HttpServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; port() reports the bound one.
  uint16_t port = 0;
  /// Request-handling workers; 0 means ThreadPool::DefaultThreadCount().
  size_t num_workers = 0;
  /// Maximum accepted connections; accepts beyond it are closed
  /// immediately (backpressure at the socket layer).
  size_t max_connections = 4096;
  HttpLimits limits;
  AdmissionOptions admission;
  /// Seconds a drain waits for in-flight requests before cancelling them.
  double drain_cancel_seconds = 5.0;
  /// Seconds a drain waits in total before force-closing connections.
  double drain_hard_seconds = 10.0;
};

/// Point-in-time server counters. Every value is read back from the
/// shared metrics registry (the server's counters live there), so this
/// struct, `/v1/stats` and `GET /metrics` can never disagree.
struct HttpServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;  ///< over max_connections
  uint64_t requests = 0;              ///< routed requests, any endpoint
  uint64_t requests_shed = 0;         ///< 503s from admission control
  uint64_t parse_failures = 0;        ///< connections killed by bad HTTP
  uint64_t disconnect_cancels = 0;    ///< queries cancelled by client EOF
  uint64_t drain_save_failures = 0;   ///< tenants the drain failed to save
  size_t inflight = 0;                ///< match/batch executing right now
  /// Wall-clock latency of finished match/batch requests, milliseconds.
  QuantileAccumulator latency_ms;
};

/// Serves the registry's tenants over HTTP/1.1. The REST surface is
/// versioned under /v1 (all responses NDJSON; streaming ones chunked):
///   GET  /v1/healthz                   liveness + tenant count
///   GET  /v1/tenants                   one {"type":"tenant",...} per line
///   PUT  /v1/tenants/{t}               create tenant; body = tree-spec
///                                      lines ('#' comments allowed)
///   POST /v1/tenants/{t}/match         body = one query line (serve
///                                      grammar); streams mapping events
///   POST /v1/tenants/{t}/batch         body = query lines; interleaved
///                                      mapping events, done in order
///   POST /v1/tenants/{t}/ingest        body = '!' command lines
///                                      (!ingest / !replace / !remove)
///   POST /v1/tenants/{t}/integrate     body = at most one option line
///                                      (!integrate grammar); streams
///                                      pair / cluster / mediated events
///   POST /v1/tenants/{t}/save          persist tenant to the state dir
///   GET  /v1/tenants/{t}/stats         the tenant's stats event
///   GET  /v1/tenants/{t}/shards        one {"type":"shard",...} line per
///                                      shard of the tenant's backend
///   GET  /v1/stats                     server-wide stats event
///   GET  /v1/metrics                   Prometheus text exposition of the
///                                      shared registry (all tenants +
///                                      server + WAL series; text/plain)
///   GET  /metrics                      alias for /v1/metrics, kept
///                                      unversioned for Prometheus's
///                                      conventional scrape path
/// The pre-versioning /healthz alias answers 410 Gone with a typed
/// migration hint naming /v1/healthz.
class HttpServer {
 public:
  /// `registry` must outlive the server.
  HttpServer(TenantRegistry* registry, HttpServerOptions options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds and listens. After Ok, port() is the bound port.
  Status Start();

  /// Runs the event loop on the calling thread until a shutdown request
  /// drains the server. Requires Start().
  void Serve();

  /// Start() + Serve() on an internal thread; returns once the socket
  /// is accepting. The destructor (or RequestShutdown + destructor)
  /// joins it.
  Status StartBackground();

  /// Initiates graceful drain. Async-signal-safe (one pipe write) and
  /// idempotent; callable from any thread or signal handler.
  void RequestShutdown();

  /// Routes SIGINT/SIGTERM to RequestShutdown() on this server. At most
  /// one server per process may install; returns false if taken.
  bool InstallShutdownSignalHandlers();

  uint16_t port() const { return port_; }
  bool draining() const { return draining_.load(std::memory_order_relaxed); }
  HttpServerStats stats() const;

 private:
  struct Connection;

  void Loop();
  void AcceptNew();
  /// Reads available bytes; returns false when the connection is done
  /// for (EOF or error) and should be torn down after flushing.
  bool ReadInto(Connection& conn);
  /// Flushes queued output bytes; false on write error.
  bool WriteFrom(Connection& conn);
  /// Dispatches the parser's completed request to the worker pool.
  void DispatchRequest(std::shared_ptr<Connection> conn);
  /// Runs on a worker: routes and answers one request.
  void HandleRequest(std::shared_ptr<Connection> conn, HttpMessage request);
  /// Marks the in-loop teardown of one connection.
  void CloseConnection(uint64_t id);
  void WakeLoop();

  // --- endpoint handlers (worker threads) ---
  void RouteRequest(const std::shared_ptr<Connection>& conn,
                    const HttpMessage& request);
  void HandleMatch(const std::shared_ptr<Connection>& conn,
                   const HttpMessage& request, Tenant& tenant, bool batch);
  void HandleIngest(const std::shared_ptr<Connection>& conn,
                    const HttpMessage& request, Tenant& tenant);
  void HandleIntegrate(const std::shared_ptr<Connection>& conn,
                       const HttpMessage& request, Tenant& tenant);
  void HandleCreateTenant(const std::shared_ptr<Connection>& conn,
                          const HttpMessage& request,
                          const std::string& name);
  void HandleSave(const std::shared_ptr<Connection>& conn,
                  const HttpMessage& request, Tenant& tenant);

  /// Admission decision for one match/batch request. Returns false when
  /// shed (the 503 is already queued); on true the caller runs under
  /// `control` and must call FinishWork() when done.
  bool AdmitWork(const std::shared_ptr<Connection>& conn,
                 const service::Matcher& service,
                 core::ExecutionControl* control);
  void FinishWork(double latency_ms);

  /// Appends bytes to the connection's output buffer and wakes the loop.
  void QueueOutput(const std::shared_ptr<Connection>& conn,
                   std::string bytes);
  /// Queues a complete non-streaming response.
  void QueueSimple(const std::shared_ptr<Connection>& conn, int code,
                   const std::string& ndjson_body, bool keep_alive);
  /// Marks the worker's request finished so the loop resumes the
  /// connection (pipelined next request or close).
  void CompleteRequest(const std::shared_ptr<Connection>& conn);

  TenantRegistry* registry_;
  HttpServerOptions options_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  uint16_t port_ = 0;

  std::unique_ptr<ThreadPool> workers_;
  std::thread background_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_requested_{false};

  /// Loop-owned; workers only reach connections through the shared_ptrs
  /// captured at dispatch.
  std::map<uint64_t, std::shared_ptr<Connection>> connections_;
  uint64_t next_connection_id_ = 1;

  /// Connections whose worker finished its request; drained by the loop.
  std::mutex completed_mu_;
  std::vector<uint64_t> completed_;

  /// Admission bookkeeping stays a plain atomic: AdmitWork's shed/scale
  /// decisions key off fetch_add's return value. A scrape hook mirrors it
  /// into the xsm_http_inflight gauge at render time.
  std::atomic<size_t> inflight_{0};

  /// Registry counter handles (registered in the constructor against the
  /// registry's shared obs::MetricsRegistry) — the single source of truth
  /// behind stats(), /v1/stats and /metrics.
  obs::Counter* accepted_ = nullptr;
  obs::Counter* rejected_ = nullptr;
  obs::Counter* requests_ = nullptr;
  obs::Counter* shed_capacity_ = nullptr;  ///< {reason="capacity"}
  obs::Counter* parse_failures_ = nullptr;
  obs::Counter* disconnect_cancels_ = nullptr;
  obs::Counter* drain_save_failures_ = nullptr;
  obs::Gauge* inflight_gauge_ = nullptr;
  obs::Histogram* request_latency_ms_ = nullptr;
  uint64_t scrape_hook_id_ = 0;

  /// Exact-quantile mirror of request_latency_ms_ (same Adds), kept so
  /// HttpServerStats::latency_ms preserves its QuantileAccumulator shape.
  mutable std::mutex latency_mu_;
  QuantileAccumulator latency_ms_;
};

}  // namespace xsm::net

#endif  // XSM_NET_HTTP_SERVER_H_
