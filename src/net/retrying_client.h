// RetryingHttpClient: the client-side half of the server's overload
// contract. HttpServer sheds excess load with a typed 503 NDJSON body
// carrying "retryable":true (net/http_server.h, admission control); a
// well-behaved client treats that — and transient transport faults — as
// "come back shortly", not as an error. This wrapper classifies every
// failure of a one-shot fetch:
//
//   kConnectRefused   connect() failed outright (server down / port wrong)
//   kConnectTimeout   TCP handshake exceeded its deadline
//   kReset            connection dropped / half-closed mid-response
//   kResponseTimeout  server accepted but hung past the read deadline
//   kShed503          typed 503 with "retryable":true (admission shed)
//
// and retries the retryable ones under capped exponential backoff with
// deterministic seeded jitter: delays are a pure function of
// (RetryOptions::seed, retry index), so a retry schedule replays exactly
// in tests and a fleet of clients with distinct seeds decorrelates instead
// of stampeding in lockstep. A 503 *without* the retryable flag, or any
// malformed response, is returned as-is — retrying can't fix those. When
// the budget runs out the caller gets a typed kUnavailable naming the
// attempts made and the last failure.
#ifndef XSM_NET_RETRYING_CLIENT_H_
#define XSM_NET_RETRYING_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "net/http.h"
#include "net/http_client.h"
#include "util/random.h"
#include "util/status.h"

namespace xsm::net {

struct RetryOptions {
  /// Total tries including the first (1 = no retries). Must be >= 1.
  int max_attempts = 4;
  /// Backoff before retry k is
  ///   min(initial * multiplier^k, max) * (1 + jitter_fraction * (2u-1))
  /// with u drawn from the seeded RNG — capped exponential growth, spread
  /// over +-jitter_fraction.
  double initial_backoff_seconds = 0.05;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 2.0;
  double jitter_fraction = 0.2;
  /// Seeds the jitter stream; the whole backoff schedule is deterministic
  /// given the seed.
  uint64_t seed = 1;

  /// Deadline on the TCP handshake of each attempt; 0 blocks.
  double connect_timeout_seconds = 2.0;
  /// Deadline on each attempt's whole response; 0 blocks.
  double read_timeout_seconds = 10.0;

  /// How backoff waits. Defaults to really sleeping; tests inject a
  /// recorder so retry schedules are asserted, not slept through.
  std::function<void(double seconds)> sleeper;
};

/// Why an attempt failed (kNone for the attempt that succeeded).
enum class FailureClass {
  kNone,
  kConnectRefused,
  kConnectTimeout,
  kReset,
  kResponseTimeout,
  kShed503,
};

std::string_view FailureClassToString(FailureClass failure);

/// Accounting across one Fetch call (reset at its start).
struct RetryStats {
  int attempts = 0;          ///< connections tried
  int connect_refused = 0;
  int connect_timeouts = 0;
  int resets = 0;
  int response_timeouts = 0;
  int shed_503s = 0;
  double backoff_seconds = 0;  ///< total requested backoff
  FailureClass last_failure = FailureClass::kNone;
};

/// One-shot fetches with retry. Each attempt opens a fresh connection
/// (Connection: close) so a poisoned keep-alive stream can never leak
/// into the next attempt. Not thread-safe; use one per thread.
class RetryingHttpClient {
 public:
  RetryingHttpClient(std::string host, uint16_t port,
                     RetryOptions options = RetryOptions());

  /// Fetches until a non-retryable outcome or the attempt budget runs
  /// out. Returns the response (any status code) on success, the
  /// original typed error for non-retryable failures, and a typed
  /// kUnavailable naming the attempts and last failure class when the
  /// budget is exhausted.
  Result<HttpMessage> Fetch(std::string_view method, std::string_view target,
                            std::string_view body = "",
                            std::string_view content_type = "text/plain");

  /// Accounting for the most recent Fetch.
  const RetryStats& stats() const { return stats_; }

  /// Whether `response` is the server's typed retryable shed: status 503
  /// and an NDJSON body carrying "retryable":true.
  static bool RetryableResponse(const HttpMessage& response);

  /// The jittered backoff before 0-based retry `k`. Consumes one RNG
  /// draw — calling it in sequence reproduces a Fetch's exact schedule.
  double NextBackoffSeconds(int retry);

 private:
  std::string host_;
  uint16_t port_;
  RetryOptions options_;
  Rng rng_;
  RetryStats stats_;
};

}  // namespace xsm::net

#endif  // XSM_NET_RETRYING_CLIENT_H_
