#include "net/retrying_client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace xsm::net {

std::string_view FailureClassToString(FailureClass failure) {
  switch (failure) {
    case FailureClass::kNone:
      return "none";
    case FailureClass::kConnectRefused:
      return "connect-refused";
    case FailureClass::kConnectTimeout:
      return "connect-timeout";
    case FailureClass::kReset:
      return "reset";
    case FailureClass::kResponseTimeout:
      return "response-timeout";
    case FailureClass::kShed503:
      return "shed-503";
  }
  return "unknown";
}

RetryingHttpClient::RetryingHttpClient(std::string host, uint16_t port,
                                       RetryOptions options)
    : host_(std::move(host)),
      port_(port),
      options_(std::move(options)),
      rng_(options_.seed) {
  if (options_.max_attempts < 1) options_.max_attempts = 1;
}

bool RetryingHttpClient::RetryableResponse(const HttpMessage& response) {
  return response.status_code == 503 &&
         response.body.find("\"retryable\":true") != std::string::npos;
}

double RetryingHttpClient::NextBackoffSeconds(int retry) {
  double base = options_.initial_backoff_seconds;
  for (int i = 0; i < retry && base < options_.max_backoff_seconds; ++i) {
    base *= options_.backoff_multiplier;
  }
  base = std::min(base, options_.max_backoff_seconds);
  // One draw per backoff whatever the jitter setting, so schedules with
  // different jitter fractions stay aligned draw-for-draw.
  double u = rng_.NextDouble();
  double jitter = options_.jitter_fraction * (2.0 * u - 1.0);
  return std::max(0.0, base * (1.0 + jitter));
}

Result<HttpMessage> RetryingHttpClient::Fetch(std::string_view method,
                                              std::string_view target,
                                              std::string_view body,
                                              std::string_view content_type) {
  stats_ = RetryStats();
  Status last_status = Status::OK();
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      double delay = NextBackoffSeconds(attempt - 1);
      stats_.backoff_seconds += delay;
      if (options_.sleeper) {
        options_.sleeper(delay);
      } else {
        std::this_thread::sleep_for(std::chrono::duration<double>(delay));
      }
    }
    ++stats_.attempts;

    HttpClient client;
    Status status =
        client.Connect(host_, port_, options_.connect_timeout_seconds);
    if (!status.ok()) {
      if (status.code() == StatusCode::kDeadlineExceeded) {
        ++stats_.connect_timeouts;
        stats_.last_failure = FailureClass::kConnectTimeout;
      } else {
        ++stats_.connect_refused;
        stats_.last_failure = FailureClass::kConnectRefused;
      }
      last_status = std::move(status);
      continue;
    }

    status = client.SendRequest(method, target, body, content_type,
                                /*keep_alive=*/false);
    if (!status.ok()) {
      ++stats_.resets;
      stats_.last_failure = FailureClass::kReset;
      last_status = std::move(status);
      continue;
    }

    auto response =
        client.ReadResponse(HttpLimits(), options_.read_timeout_seconds);
    if (!response.ok()) {
      if (response.status().code() == StatusCode::kDeadlineExceeded) {
        ++stats_.response_timeouts;
        stats_.last_failure = FailureClass::kResponseTimeout;
      } else if (response.status().code() == StatusCode::kIOError) {
        ++stats_.resets;
        stats_.last_failure = FailureClass::kReset;
      } else {
        // A malformed response (parse failure, oversize) is the server
        // misbehaving, not a transient — retrying would just replay it.
        return response.status();
      }
      last_status = response.status();
      continue;
    }

    if (RetryableResponse(*response)) {
      ++stats_.shed_503s;
      stats_.last_failure = FailureClass::kShed503;
      last_status = Status::Unavailable(
          "server shed the request (503, retryable)");
      continue;
    }
    stats_.last_failure = FailureClass::kNone;
    return response;
  }
  return Status::Unavailable(
      "retry budget exhausted after " + std::to_string(stats_.attempts) +
      " attempts (last failure: " +
      std::string(FailureClassToString(stats_.last_failure)) +
      "): " + last_status.ToString());
}

}  // namespace xsm::net
