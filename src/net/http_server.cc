#include "net/http_server.h"

#include <arpa/inet.h>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "schema/schema_tree.h"
#include "util/timer.h"

namespace xsm::net {

namespace {

/// The one server SIGINT/SIGTERM route to. The handler body is
/// async-signal-safe: RequestShutdown is an atomic store plus one pipe
/// write.
std::atomic<HttpServer*> g_signal_server{nullptr};

void OnShutdownSignal(int) {
  HttpServer* server = g_signal_server.load(std::memory_order_acquire);
  if (server != nullptr) server->RequestShutdown();
}

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError("fcntl(O_NONBLOCK) failed");
  }
  return Status::OK();
}

/// One NDJSON error line (with trailing newline) for a response body.
std::string ErrorBodyLine(const Status& status) {
  std::string line;
  service::ServeSession::EmitErrorEvent(
      "", status, [&line](const std::string& event) { line = event; });
  return line + "\n";
}

/// Splits a request body into logical lines, dropping '\r' remnants,
/// '#' comments and blank lines — the same normalization stdin serve
/// applies per line.
std::vector<std::string> BodyLines(const std::string& body) {
  std::vector<std::string> lines;
  std::istringstream stream(body);
  std::string line;
  while (std::getline(stream, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    size_t begin = line.find_first_not_of(" \t");
    if (begin == std::string::npos) continue;
    size_t end = line.find_last_not_of(" \t");
    lines.push_back(line.substr(begin, end - begin + 1));
  }
  return lines;
}

constexpr std::string_view kNdjson = "application/x-ndjson";

}  // namespace

/// Shared between the event loop (fd owner) and the worker handling the
/// connection's current request. The mutex guards outbuf/closed/
/// client_gone/active_token/has_active_token/close_after_response; the
/// remaining fields are loop-only.
struct HttpServer::Connection {
  Connection(uint64_t id_in, int fd_in, const HttpLimits& limits)
      : id(id_in), fd(fd_in), parser(HttpParser::Mode::kRequest, limits) {}

  const uint64_t id;
  int fd;
  HttpParser parser;      // loop-only
  bool processing = false;  // loop-only: a worker owns the current request
  bool close_after_flush = false;  // loop-only

  std::mutex mu;
  std::string outbuf;
  size_t out_offset = 0;
  bool closed = false;       ///< fd closed; workers drop further output
  bool client_gone = false;  ///< loop saw EOF / error on the socket
  bool close_after_response = false;  ///< worker: no keep-alive after this
  core::CancelToken active_token;     ///< current request's cancel token
  bool has_active_token = false;
};

HttpServer::HttpServer(TenantRegistry* registry, HttpServerOptions options)
    : registry_(registry), options_(std::move(options)) {
  if (options_.admission.soft_inflight == 0 ||
      options_.admission.soft_inflight > options_.admission.max_inflight) {
    options_.admission.soft_inflight = options_.admission.max_inflight;
  }
  obs::MetricsRegistry& metrics = registry_->metrics();
  accepted_ = metrics.RegisterCounter(
      "xsm_http_connections_accepted_total", "Connections accepted");
  rejected_ = metrics.RegisterCounter(
      "xsm_http_connections_rejected_total",
      "Connections closed immediately over max_connections");
  requests_ = metrics.RegisterCounter(
      "xsm_http_requests_total", "Routed HTTP requests, any endpoint");
  shed_capacity_ = metrics.RegisterCounter(
      "xsm_http_requests_shed_total",
      "Requests shed with a typed 503, by reason",
      {{"reason", "capacity"}});
  parse_failures_ = metrics.RegisterCounter(
      "xsm_http_parse_failures_total",
      "Connections killed by malformed HTTP");
  disconnect_cancels_ = metrics.RegisterCounter(
      "xsm_http_disconnect_cancels_total",
      "In-flight queries cancelled by client disconnect");
  drain_save_failures_ = metrics.RegisterCounter(
      "xsm_http_drain_save_failures_total",
      "Tenants the graceful drain failed to persist");
  inflight_gauge_ = metrics.RegisterGauge(
      "xsm_http_inflight", "Match/batch requests executing right now");
  request_latency_ms_ = metrics.RegisterHistogram(
      "xsm_http_request_duration_ms",
      "Wall-clock latency of finished match/batch requests (ms)",
      obs::DefaultLatencyBoundsMs());
  scrape_hook_id_ = metrics.AddScrapeHook([this] {
    inflight_gauge_->Set(
        static_cast<double>(inflight_.load(std::memory_order_relaxed)));
  });
}

HttpServer::~HttpServer() {
  RequestShutdown();
  if (background_.joinable()) background_.join();
  registry_->metrics().RemoveScrapeHook(scrape_hook_id_);
  HttpServer* self = this;
  g_signal_server.compare_exchange_strong(self, nullptr);
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_read_fd_ >= 0) close(wake_read_fd_);
  if (wake_write_fd_ >= 0) close(wake_write_fd_);
}

Status HttpServer::Start() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::IOError("socket() failed");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  Status nonblocking = SetNonBlocking(listen_fd_);
  if (!nonblocking.ok()) return nonblocking;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("unparseable bind address '" +
                                   options_.bind_address + "'");
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::IOError("bind(" + options_.bind_address + ":" +
                           std::to_string(options_.port) + ") failed: " +
                           std::strerror(errno));
  }
  if (listen(listen_fd_, 512) < 0) {
    return Status::IOError("listen() failed");
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }

  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) {
    return Status::IOError("pipe() failed");
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  for (int fd : pipe_fds) {
    Status status = SetNonBlocking(fd);
    if (!status.ok()) return status;
    fcntl(fd, F_SETFD, FD_CLOEXEC);
  }

  workers_ = std::make_unique<ThreadPool>(options_.num_workers);
  return Status::OK();
}

Status HttpServer::StartBackground() {
  Status status = Start();
  if (!status.ok()) return status;
  background_ = std::thread([this] { Serve(); });
  return Status::OK();
}

void HttpServer::RequestShutdown() {
  stop_requested_.store(true, std::memory_order_release);
  WakeLoop();
}

bool HttpServer::InstallShutdownSignalHandlers() {
  HttpServer* expected = nullptr;
  if (!g_signal_server.compare_exchange_strong(expected, this)) {
    return expected == this;
  }
  struct sigaction sa{};
  sa.sa_handler = OnShutdownSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocked syscalls return EINTR
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  return true;
}

void HttpServer::WakeLoop() {
  if (wake_write_fd_ >= 0) {
    char byte = 'w';
    [[maybe_unused]] ssize_t n = write(wake_write_fd_, &byte, 1);
  }
}

HttpServerStats HttpServer::stats() const {
  HttpServerStats stats;
  stats.connections_accepted = accepted_->value();
  stats.connections_rejected = rejected_->value();
  stats.requests = requests_->value();
  stats.requests_shed = shed_capacity_->value();
  stats.parse_failures = parse_failures_->value();
  stats.disconnect_cancels = disconnect_cancels_->value();
  stats.inflight = inflight_.load(std::memory_order_relaxed);
  stats.drain_save_failures = drain_save_failures_->value();
  std::lock_guard<std::mutex> lock(latency_mu_);
  stats.latency_ms = latency_ms_;
  return stats;
}

// --- event loop ------------------------------------------------------------

void HttpServer::Serve() {
  Loop();
  // Workers may still be unwinding cancelled queries; their output lands
  // in closed connections' buffers and is dropped. Wait so tenant saves
  // below see quiescent services.
  if (workers_ != nullptr) workers_->Wait();
  if (!registry_->SnapshotPathFor("x").empty()) {
    size_t saved = 0;
    std::vector<TenantRegistry::TenantSaveFailure> failures;
    registry_->SaveAll(&saved, &failures);
    // One tenant's failed save never aborts the drain: SaveAll attempts
    // every tenant, and each failure surfaces as a typed NDJSON event
    // plus a nonzero drain_save_failures counter for the supervisor.
    for (const TenantRegistry::TenantSaveFailure& failure : failures) {
      drain_save_failures_->Increment();
      std::fprintf(stderr,
                   "{\"type\":\"error\",\"code\":\"save_failed\","
                   "\"tenant\":\"%s\",\"status\":\"%s\",\"message\":\"%s\"}\n",
                   service::JsonEscape(failure.tenant).c_str(),
                   std::string(StatusCodeToString(failure.status.code()))
                       .c_str(),
                   service::JsonEscape(failure.status.ToString()).c_str());
    }
    std::fprintf(stderr, "xsm::net: drain saved %zu/%zu tenants (%zu failed)\n",
                 saved, registry_->size(), failures.size());
  }
}

void HttpServer::Loop() {
  Timer drain_timer;
  bool drain_started = false;
  bool cancel_fired = false;
  std::vector<pollfd> pollfds;
  std::vector<uint64_t> pollfd_conn;  // conn id per pollfd (0 = not a conn)

  while (true) {
    if (!drain_started && stop_requested_.load(std::memory_order_acquire)) {
      drain_started = true;
      draining_.store(true, std::memory_order_release);
      drain_timer.Restart();
      if (listen_fd_ >= 0) {
        close(listen_fd_);
        listen_fd_ = -1;
      }
    }

    pollfds.clear();
    pollfd_conn.clear();
    if (listen_fd_ >= 0) {
      pollfds.push_back({listen_fd_, POLLIN, 0});
      pollfd_conn.push_back(0);
    }
    pollfds.push_back({wake_read_fd_, POLLIN, 0});
    pollfd_conn.push_back(0);
    for (auto& [id, conn] : connections_) {
      short events = conn->close_after_flush ? 0 : POLLIN;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (conn->out_offset < conn->outbuf.size()) events |= POLLOUT;
      }
      pollfds.push_back({conn->fd, events, 0});
      pollfd_conn.push_back(id);
    }

    int timeout_ms = drain_started ? 50 : 500;
    int ready = poll(pollfds.data(), pollfds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) break;

    // Drain the wake pipe.
    char sink[256];
    while (read(wake_read_fd_, sink, sizeof(sink)) > 0) {
    }

    std::vector<uint64_t> doomed;
    for (size_t i = 0; i < pollfds.size(); ++i) {
      const pollfd& pfd = pollfds[i];
      if (pfd.fd == listen_fd_ && listen_fd_ >= 0) {
        if (pfd.revents & POLLIN) AcceptNew();
        continue;
      }
      uint64_t id = pollfd_conn[i];
      if (id == 0) continue;
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;
      Connection& conn = *it->second;
      bool alive = true;
      if (pfd.revents & (POLLIN | POLLHUP | POLLERR)) {
        alive = ReadInto(conn);
      }
      if (alive && (pfd.revents & POLLOUT)) {
        alive = WriteFrom(conn);
      }
      if (!alive) doomed.push_back(id);
    }
    for (uint64_t id : doomed) CloseConnection(id);

    // Completed worker requests: resume their connections.
    std::vector<uint64_t> completed;
    {
      std::lock_guard<std::mutex> lock(completed_mu_);
      completed.swap(completed_);
    }
    for (uint64_t id : completed) {
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;
      std::shared_ptr<Connection>& conn = it->second;
      conn->processing = false;
      bool close_requested;
      bool gone;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->has_active_token = false;
        close_requested = conn->close_after_response;
        gone = conn->client_gone;
      }
      if (gone) {
        CloseConnection(id);
        continue;
      }
      if (close_requested) conn->close_after_flush = true;
      // Flush what the worker queued, then either dispatch the pipelined
      // next request or let the empty-buffer sweep below close us.
      WriteFrom(*conn);
      if (!conn->close_after_flush && conn->parser.done()) {
        DispatchRequest(conn);
      }
    }

    // Close connections that were told to close and have flushed.
    std::vector<uint64_t> flushed;
    for (auto& [id, conn] : connections_) {
      if (!conn->close_after_flush || conn->processing) continue;
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->out_offset >= conn->outbuf.size()) flushed.push_back(id);
    }
    for (uint64_t id : flushed) CloseConnection(id);

    if (drain_started) {
      double elapsed = drain_timer.ElapsedSeconds();
      if (!cancel_fired && elapsed >= options_.drain_cancel_seconds) {
        cancel_fired = true;
        for (auto& [id, conn] : connections_) {
          std::lock_guard<std::mutex> lock(conn->mu);
          if (conn->has_active_token) conn->active_token.Cancel();
        }
      }
      // Idle keep-alive connections have nothing left to wait for.
      std::vector<uint64_t> idle;
      for (auto& [id, conn] : connections_) {
        if (conn->processing) continue;
        std::lock_guard<std::mutex> lock(conn->mu);
        if (conn->out_offset >= conn->outbuf.size()) idle.push_back(id);
      }
      for (uint64_t id : idle) CloseConnection(id);
      if (connections_.empty()) break;
      if (elapsed >= options_.drain_hard_seconds) {
        std::vector<uint64_t> all;
        for (auto& [id, conn] : connections_) {
          {
            std::lock_guard<std::mutex> lock(conn->mu);
            if (conn->has_active_token) conn->active_token.Cancel();
          }
          all.push_back(id);
        }
        for (uint64_t id : all) CloseConnection(id);
        break;
      }
    }
  }
}

void HttpServer::AcceptNew() {
  while (true) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient error: poll again
    }
    if (connections_.size() >= options_.max_connections) {
      rejected_->Increment();
      close(fd);
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      close(fd);
      continue;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    accepted_->Increment();
    uint64_t id = next_connection_id_++;
    connections_.emplace(
        id, std::make_shared<Connection>(id, fd, options_.limits));
  }
}

bool HttpServer::ReadInto(Connection& conn) {
  // A connection already condemned to close-after-flush owes the client
  // nothing more; reading again would double-answer a failed parse.
  if (conn.close_after_flush) return true;
  char buf[16 * 1024];
  while (true) {
    ssize_t n = read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      conn.parser.Feed(std::string_view(buf, static_cast<size_t>(n)));
      if (conn.parser.failed()) {
        parse_failures_->Increment();
        if (!conn.processing) {
          const Status& status = conn.parser.status();
          std::string response = SimpleResponse(
              HttpCodeForStatus(status), kNdjson, ErrorBodyLine(status),
              /*keep_alive=*/false);
          std::lock_guard<std::mutex> lock(conn.mu);
          conn.outbuf.append(response);
        }
        conn.close_after_flush = true;
        return true;  // keep the fd until the error response flushes
      }
      if (conn.parser.done() && !conn.processing &&
          !conn.close_after_flush) {
        auto it = connections_.find(conn.id);
        if (it != connections_.end()) DispatchRequest(it->second);
      }
      continue;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
    }
    // EOF with a truncated request: a half-closed client can still read,
    // so it earns its typed error before the close.
    if (n == 0 && !conn.processing && conn.parser.midstream()) {
      conn.parser.Finish();
      parse_failures_->Increment();
      const Status& status = conn.parser.status();
      std::string response =
          SimpleResponse(HttpCodeForStatus(status), kNdjson,
                         ErrorBodyLine(status), /*keep_alive=*/false);
      {
        std::lock_guard<std::mutex> lock(conn.mu);
        conn.outbuf.append(response);
      }
      conn.close_after_flush = true;
      return true;
    }
    // EOF or hard error: the client is gone. Cancel any in-flight
    // request so the engine stops spending on an unreachable peer.
    {
      std::lock_guard<std::mutex> lock(conn.mu);
      conn.client_gone = true;
      if (conn.has_active_token) {
        conn.active_token.Cancel();
        disconnect_cancels_->Increment();
      }
    }
    // A processing connection must outlive its worker's completion
    // notice; CloseConnection happens when the completion drains.
    return conn.processing ? true : false;
  }
}

bool HttpServer::WriteFrom(Connection& conn) {
  std::lock_guard<std::mutex> lock(conn.mu);
  while (conn.out_offset < conn.outbuf.size()) {
    ssize_t n = send(conn.fd, conn.outbuf.data() + conn.out_offset,
                     conn.outbuf.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    conn.client_gone = true;
    if (conn.has_active_token) {
      conn.active_token.Cancel();
      disconnect_cancels_->Increment();
    }
    return conn.processing;  // see ReadInto: wait for the worker
  }
  if (conn.out_offset == conn.outbuf.size() && conn.out_offset > 0) {
    conn.outbuf.clear();
    conn.out_offset = 0;
  }
  return true;
}

void HttpServer::DispatchRequest(std::shared_ptr<Connection> conn) {
  conn->processing = true;
  HttpMessage request = std::move(conn->parser.message());
  conn->parser.Reset();  // resume on pipelined lookahead immediately
  workers_->Submit(
      [this, conn = std::move(conn), request = std::move(request)]() mutable {
        HandleRequest(std::move(conn), std::move(request));
      });
}

void HttpServer::HandleRequest(std::shared_ptr<Connection> conn,
                               HttpMessage request) {
  requests_->Increment();
  bool keep_alive = request.keep_alive && !draining();
  if (!keep_alive) {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->close_after_response = true;
  }
  RouteRequest(conn, request);
  CompleteRequest(conn);
}

void HttpServer::CloseConnection(uint64_t id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  std::shared_ptr<Connection> conn = it->second;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->closed = true;
    if (conn->fd >= 0) {
      close(conn->fd);
      conn->fd = -1;
    }
  }
  connections_.erase(it);
}

void HttpServer::QueueOutput(const std::shared_ptr<Connection>& conn,
                             std::string bytes) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed || conn->client_gone) return;
    conn->outbuf.append(bytes);
  }
  WakeLoop();
}

void HttpServer::QueueSimple(const std::shared_ptr<Connection>& conn,
                             int code, const std::string& ndjson_body,
                             bool keep_alive) {
  if (!keep_alive) {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->close_after_response = true;
  }
  QueueOutput(conn, SimpleResponse(code, kNdjson, ndjson_body, keep_alive));
}

void HttpServer::CompleteRequest(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(completed_mu_);
    completed_.push_back(conn->id);
  }
  WakeLoop();
}

// --- admission -------------------------------------------------------------

bool HttpServer::AdmitWork(const std::shared_ptr<Connection>& conn,
                           const service::Matcher& service,
                           core::ExecutionControl* control) {
  const AdmissionOptions& admission = options_.admission;
  size_t before = inflight_.fetch_add(1, std::memory_order_acq_rel);
  if (admission.max_inflight > 0 && before >= admission.max_inflight) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    shed_capacity_->Increment();
    std::string body =
        "{\"type\":\"error\",\"code\":\"unavailable\",\"message\":"
        "\"admission capacity reached (" +
        std::to_string(admission.max_inflight) +
        " requests in flight); retry later\",\"retryable\":true}\n";
    bool keep_alive;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      keep_alive = !conn->close_after_response;
    }
    QueueOutput(conn, SimpleResponse(503, kNdjson, body, keep_alive));
    return false;
  }

  // Soft→hard band: trade per-query deadline for admission. The anytime
  // contract turns the tighter budget into fewer mappings, not failures.
  double deadline = service.options().default_deadline_seconds;
  if (deadline > 0 && admission.max_inflight > 0 &&
      before >= admission.soft_inflight &&
      admission.max_inflight > admission.soft_inflight) {
    double over = static_cast<double>(before - admission.soft_inflight) /
                  static_cast<double>(admission.max_inflight -
                                      admission.soft_inflight);
    double fraction =
        1.0 - over * (1.0 - admission.min_deadline_fraction);
    fraction = std::max(admission.min_deadline_fraction,
                        std::min(1.0, fraction));
    deadline *= fraction;
  }
  if (deadline > 0) {
    control->deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(deadline));
  }

  bool gone;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->active_token = control->cancel;
    conn->has_active_token = true;
    gone = conn->client_gone;
  }
  if (gone) control->cancel.Cancel();  // disconnect raced admission
  return true;
}

void HttpServer::FinishWork(double latency_ms) {
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  request_latency_ms_->Observe(latency_ms);
  std::lock_guard<std::mutex> lock(latency_mu_);
  latency_ms_.Add(latency_ms);
}

// --- routing ---------------------------------------------------------------

void HttpServer::RouteRequest(const std::shared_ptr<Connection>& conn,
                              const HttpMessage& request) {
  bool keep_alive;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    keep_alive = !conn->close_after_response;
  }
  std::vector<std::string> segments = SplitPathSegments(request.target);

  if (segments.size() == 1 && segments[0] == "healthz") {
    // Retired pre-/v1 path: a typed 410 teaches old clients the versioned
    // path from the error itself instead of a bare 404.
    QueueSimple(conn, 410,
                "{\"type\":\"error\",\"code\":\"gone\",\"message\":"
                "\"/healthz moved under the versioned API; "
                "use GET /v1/healthz\","
                "\"migrate_to\":\"/v1/healthz\"}\n",
                keep_alive);
    return;
  }

  if (segments.size() == 2 && segments[0] == "v1" &&
      segments[1] == "healthz") {
    if (request.method != "GET") {
      QueueSimple(conn, 405,
                  ErrorBodyLine(Status::InvalidArgument(
                      "use GET /v1/healthz")), keep_alive);
      return;
    }
    std::string body = "{\"type\":\"health\",\"status\":\"" +
                       std::string(draining() ? "draining" : "ok") +
                       "\",\"tenants\":" +
                       std::to_string(registry_->size()) + "}\n";
    QueueSimple(conn, 200, body, keep_alive);
    return;
  }

  // /metrics stays answerable unversioned — it is Prometheus's
  // conventional scrape path — with /v1/metrics as the versioned name.
  if ((segments.size() == 1 && segments[0] == "metrics") ||
      (segments.size() == 2 && segments[0] == "v1" &&
       segments[1] == "metrics")) {
    if (request.method != "GET") {
      QueueSimple(conn, 405,
                  ErrorBodyLine(Status::InvalidArgument(
                      "use GET /metrics")), keep_alive);
      return;
    }
    // The one non-NDJSON endpoint: Prometheus text exposition v0.0.4 of
    // the shared registry (every tenant's service series plus the server
    // and WAL families).
    if (!keep_alive) {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->close_after_response = true;
    }
    QueueOutput(conn,
                SimpleResponse(200, "text/plain; version=0.0.4",
                               registry_->metrics().RenderPrometheusText(),
                               keep_alive));
    return;
  }

  if (segments.size() >= 2 && segments[0] == "v1") {
    if (segments[1] == "stats" && segments.size() == 2) {
      if (request.method != "GET") {
        QueueSimple(conn, 405,
                    ErrorBodyLine(Status::InvalidArgument(
                        "use GET /v1/stats")), keep_alive);
        return;
      }
      HttpServerStats stats = this->stats();
      const obs::MetricsRegistry& metrics = registry_->metrics();
      char buf[1024];
      std::snprintf(
          buf, sizeof(buf),
          "{\"type\":\"server_stats\",\"connections_accepted\":%llu,"
          "\"connections_rejected\":%llu,\"requests\":%llu,"
          "\"requests_shed\":%llu,"
          "\"sheds\":{\"capacity\":%llu},"
          "\"parse_failures\":%llu,"
          "\"disconnect_cancels\":%llu,\"drain_save_failures\":%llu,"
          "\"inflight\":%zu,"
          "\"tenants\":%zu,\"draining\":%s,"
          "\"wal\":{\"recoveries\":%llu,\"records_replayed\":%llu,"
          "\"records_skipped\":%llu,\"torn_tail_truncations\":%llu},"
          "\"latency_ms\":{\"count\":%zu,\"p50\":%.3f,\"p95\":%.3f,"
          "\"p99\":%.3f}}",
          static_cast<unsigned long long>(stats.connections_accepted),
          static_cast<unsigned long long>(stats.connections_rejected),
          static_cast<unsigned long long>(stats.requests),
          static_cast<unsigned long long>(stats.requests_shed),
          static_cast<unsigned long long>(stats.requests_shed),
          static_cast<unsigned long long>(stats.parse_failures),
          static_cast<unsigned long long>(stats.disconnect_cancels),
          static_cast<unsigned long long>(stats.drain_save_failures),
          stats.inflight, registry_->size(), draining() ? "true" : "false",
          static_cast<unsigned long long>(
              metrics.CounterValue("xsm_wal_recoveries_total")),
          static_cast<unsigned long long>(
              metrics.CounterValue("xsm_wal_records_replayed_total")),
          static_cast<unsigned long long>(
              metrics.CounterValue("xsm_wal_records_skipped_total")),
          static_cast<unsigned long long>(
              metrics.CounterValue("xsm_wal_torn_tail_truncations_total")),
          stats.latency_ms.count(), stats.latency_ms.P50(),
          stats.latency_ms.P95(), stats.latency_ms.P99());
      QueueSimple(conn, 200, std::string(buf) + "\n", keep_alive);
      return;
    }

    if (segments[1] == "tenants") {
      if (segments.size() == 2) {
        if (request.method != "GET") {
          QueueSimple(conn, 405,
                      ErrorBodyLine(Status::InvalidArgument(
                          "use GET /v1/tenants")), keep_alive);
          return;
        }
        std::string body;
        for (const std::string& name : registry_->Names()) {
          Tenant* tenant = registry_->Find(name);
          if (tenant == nullptr) continue;
          service::RepositoryPinPtr pin = tenant->service->Pin();
          char buf[160];
          std::snprintf(buf, sizeof(buf),
                        "\",\"generation\":%llu,\"trees\":%zu,"
                        "\"shards\":%zu}\n",
                        static_cast<unsigned long long>(pin->generation()),
                        pin->num_trees(),
                        tenant->service->Shards().size());
          body += "{\"type\":\"tenant\",\"name\":\"" +
                  service::JsonEscape(name) + buf;
        }
        QueueSimple(conn, 200, body, keep_alive);
        return;
      }

      const std::string& name = segments[2];
      if (segments.size() == 3) {
        if (request.method != "PUT") {
          QueueSimple(conn, 405,
                      ErrorBodyLine(Status::InvalidArgument(
                          "use PUT /v1/tenants/{name} to create")),
                      keep_alive);
          return;
        }
        HandleCreateTenant(conn, request, name);
        return;
      }

      if (segments.size() == 4) {
        Tenant* tenant = registry_->Find(name);
        if (tenant == nullptr) {
          QueueSimple(conn, 404,
                      ErrorBodyLine(Status::NotFound(
                          "no tenant named '" + name + "'")), keep_alive);
          return;
        }
        const std::string& verb = segments[3];
        if (verb == "match" && request.method == "POST") {
          HandleMatch(conn, request, *tenant, /*batch=*/false);
          return;
        }
        if (verb == "batch" && request.method == "POST") {
          HandleMatch(conn, request, *tenant, /*batch=*/true);
          return;
        }
        if (verb == "ingest" && request.method == "POST") {
          HandleIngest(conn, request, *tenant);
          return;
        }
        if (verb == "integrate" && request.method == "POST") {
          HandleIntegrate(conn, request, *tenant);
          return;
        }
        if (verb == "save" && request.method == "POST") {
          HandleSave(conn, request, *tenant);
          return;
        }
        if (verb == "stats" && request.method == "GET") {
          std::string body;
          tenant->session->EmitStatsEvent(
              [&body](const std::string& line) { body += line + "\n"; });
          QueueSimple(conn, 200, body, keep_alive);
          return;
        }
        if (verb == "shards" && request.method == "GET") {
          std::string body;
          for (const service::ShardDescriptor& d :
               tenant->service->Shards()) {
            char buf[224];
            std::snprintf(
                buf, sizeof(buf),
                "{\"type\":\"shard\",\"shard\":%zu,\"generation\":%llu,"
                "\"fingerprint\":\"%016llx\",\"trees\":%zu,\"nodes\":%zu,"
                "\"first_tree\":%lld}\n",
                d.shard, static_cast<unsigned long long>(d.generation),
                static_cast<unsigned long long>(d.fingerprint), d.trees,
                d.nodes, static_cast<long long>(d.first_tree));
            body += buf;
          }
          QueueSimple(conn, 200, body, keep_alive);
          return;
        }
        QueueSimple(conn, verb == "match" || verb == "batch" ||
                              verb == "ingest" || verb == "integrate" ||
                              verb == "save" || verb == "stats" ||
                              verb == "shards"
                          ? 405
                          : 404,
                    ErrorBodyLine(Status::NotFound(
                        "no endpoint " + request.method + " " +
                        request.target)), keep_alive);
        return;
      }
    }
  }

  QueueSimple(conn, 404,
              ErrorBodyLine(Status::NotFound("no endpoint " +
                                             request.method + " " +
                                             request.target)),
              keep_alive);
}

void HttpServer::HandleMatch(const std::shared_ptr<Connection>& conn,
                             const HttpMessage& request, Tenant& tenant,
                             bool batch) {
  bool keep_alive;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    keep_alive = !conn->close_after_response;
  }
  std::vector<std::string> lines = BodyLines(request.body);
  if (lines.empty()) {
    QueueSimple(conn, 400,
                ErrorBodyLine(Status::InvalidArgument(
                    "empty request body (want query lines)")), keep_alive);
    return;
  }
  if (!batch && lines.size() > 1) {
    QueueSimple(conn, 400,
                ErrorBodyLine(Status::InvalidArgument(
                    "POST .../match takes exactly one query line; use "
                    ".../batch for more")), keep_alive);
    return;
  }
  std::vector<service::MatchQuery> queries;
  queries.reserve(lines.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    auto query = tenant.session->ParseQuery(lines[i], i);
    if (!query.ok()) {
      QueueSimple(conn, HttpCodeForStatus(query.status()),
                  ErrorBodyLine(query.status()), keep_alive);
      return;
    }
    queries.push_back(std::move(*query));
  }

  core::ExecutionControl control;
  if (!AdmitWork(conn, *tenant.service, &control)) return;

  Timer timer;
  QueueOutput(conn, ChunkedResponseHead(200, kNdjson, keep_alive));
  service::EventSink sink = [this, &conn](const std::string& line) {
    QueueOutput(conn, EncodeChunk(line + "\n"));
  };
  if (batch) {
    tenant.session->RunBatch(queries, sink, control);
  } else {
    tenant.session->RunQuery(queries.front(), sink, control);
  }
  QueueOutput(conn, std::string(kChunkedFinal));
  FinishWork(timer.ElapsedSeconds() * 1e3);
}

void HttpServer::HandleIntegrate(const std::shared_ptr<Connection>& conn,
                                 const HttpMessage& request,
                                 Tenant& tenant) {
  bool keep_alive;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    keep_alive = !conn->close_after_response;
  }
  std::vector<std::string> lines = BodyLines(request.body);
  if (lines.size() > 1) {
    QueueSimple(conn, 400,
                ErrorBodyLine(Status::InvalidArgument(
                    "POST .../integrate takes at most one option line "
                    "(!integrate grammar)")), keep_alive);
    return;
  }
  const std::string args = lines.empty() ? std::string() : lines.front();

  core::ExecutionControl control;
  if (!AdmitWork(conn, *tenant.service, &control)) return;

  Timer timer;
  QueueOutput(conn, ChunkedResponseHead(200, kNdjson, keep_alive));
  service::EventSink sink = [this, &conn](const std::string& line) {
    QueueOutput(conn, EncodeChunk(line + "\n"));
  };
  tenant.session->RunIntegrate(args, sink, control);
  QueueOutput(conn, std::string(kChunkedFinal));
  FinishWork(timer.ElapsedSeconds() * 1e3);
}

void HttpServer::HandleIngest(const std::shared_ptr<Connection>& conn,
                              const HttpMessage& request, Tenant& tenant) {
  bool keep_alive;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    keep_alive = !conn->close_after_response;
  }
  std::vector<std::string> lines = BodyLines(request.body);
  if (lines.empty()) {
    QueueSimple(conn, 400,
                ErrorBodyLine(Status::InvalidArgument(
                    "empty request body (want '!' command lines)")),
                keep_alive);
    return;
  }
  std::string body;
  auto sink = [&body](const std::string& line) { body += line + "\n"; };
  Status first_error = Status::OK();
  for (const std::string& line : lines) {
    if (line[0] != '!') {
      Status status = Status::InvalidArgument(
          "ingest lines must be '!' commands, got '" + line + "'");
      service::ServeSession::EmitErrorEvent("", status, sink);
      if (first_error.ok()) first_error = std::move(status);
      continue;
    }
    Status status = tenant.session->RunCommand(line, sink);
    if (!status.ok() && first_error.ok()) first_error = std::move(status);
  }
  QueueSimple(conn,
              first_error.ok() ? 200 : HttpCodeForStatus(first_error),
              body, keep_alive);
}

void HttpServer::HandleCreateTenant(
    const std::shared_ptr<Connection>& conn, const HttpMessage& request,
    const std::string& name) {
  bool keep_alive;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    keep_alive = !conn->close_after_response;
  }
  schema::SchemaForest forest;
  std::vector<std::string> lines = BodyLines(request.body);
  for (const std::string& line : lines) {
    std::string spec = line;
    std::string source;
    size_t space = line.find_first_of(" \t");
    if (space != std::string::npos) {
      spec = line.substr(0, space);
      std::string rest = line.substr(space + 1);
      size_t eq = rest.find("source=");
      if (eq != std::string::npos) source = rest.substr(eq + 7);
    }
    auto tree = schema::ParseTreeSpec(spec);
    if (!tree.ok()) {
      QueueSimple(conn, HttpCodeForStatus(tree.status()),
                  ErrorBodyLine(tree.status()), keep_alive);
      return;
    }
    forest.AddTree(std::move(*tree), std::move(source));
  }
  auto tenant = registry_->Create(name, std::move(forest));
  if (!tenant.ok()) {
    QueueSimple(conn, HttpCodeForStatus(tenant.status()),
                ErrorBodyLine(tenant.status()), keep_alive);
    return;
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\",\"trees\":%zu,\"generation\":0}\n",
                lines.size());
  QueueSimple(conn, 201,
              "{\"type\":\"tenant\",\"name\":\"" +
                  service::JsonEscape(name) + buf,
              keep_alive);
}

void HttpServer::HandleSave(const std::shared_ptr<Connection>& conn,
                            const HttpMessage& request, Tenant& tenant) {
  (void)request;
  bool keep_alive;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    keep_alive = !conn->close_after_response;
  }
  auto info = registry_->Save(tenant.name);
  if (!info.ok()) {
    QueueSimple(conn, HttpCodeForStatus(info.status()),
                ErrorBodyLine(info.status()), keep_alive);
    return;
  }
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "{\"type\":\"saved\",\"tenant\":\"%s\",\"format\":%u,"
                "\"generation\":%llu,\"fingerprint\":\"%016llx\","
                "\"trees\":%llu,\"elements\":%llu,\"bytes\":%llu}\n",
                service::JsonEscape(tenant.name).c_str(),
                info->format_version,
                static_cast<unsigned long long>(info->generation),
                static_cast<unsigned long long>(info->fingerprint),
                static_cast<unsigned long long>(info->trees),
                static_cast<unsigned long long>(info->total_nodes),
                static_cast<unsigned long long>(info->total_bytes));
  QueueSimple(conn, 200, buf, keep_alive);
}

}  // namespace xsm::net
