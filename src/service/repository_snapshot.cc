#include "service/repository_snapshot.h"

#include <utility>

#include "util/random.h"

namespace xsm::service {

namespace {

inline uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

/// Content hash of one tree: structure (parent links) plus every node
/// property. Independent of the tree's position in the forest, so a
/// successor snapshot can carry fingerprints of shared trees over even
/// when removals renumber them.
uint64_t FingerprintTree(const schema::SchemaTree& tree) {
  uint64_t h = Mix(0x5CA1AB1Eu, tree.size());
  for (schema::NodeId n = 0; n < static_cast<schema::NodeId>(tree.size());
       ++n) {
    const schema::NodeProperties& props = tree.props(n);
    h = Mix(h, Fnv1a(props.name));
    h = Mix(h, Fnv1a(props.datatype));
    h = Mix(h, static_cast<uint64_t>(props.kind));
    h = Mix(h, (props.repeatable ? 2u : 0u) | (props.optional ? 1u : 0u));
    h = Mix(h, static_cast<uint64_t>(tree.parent(n)) + 1);
  }
  return h;
}

uint64_t CombineForestFingerprint(size_t num_trees, size_t total_nodes,
                                  const std::vector<uint64_t>& tree_fps) {
  uint64_t h = Mix(num_trees, total_nodes);
  for (uint64_t tree_fp : tree_fps) {
    h = Mix(h, tree_fp);
  }
  return h;
}

void RepositorySnapshot::FinishFingerprint() {
  fingerprint_ = CombineForestFingerprint(
      forest_.num_trees(), forest_.total_nodes(), tree_fingerprints_);
}

Result<std::shared_ptr<const RepositorySnapshot>> RepositorySnapshot::Create(
    schema::SchemaForest forest) {
  XSM_RETURN_NOT_OK(forest.Validate());
  // Not make_shared: the constructor is private and the forest must be in
  // its final location before the matcher indexes it.
  std::shared_ptr<const RepositorySnapshot> snapshot(
      new RepositorySnapshot(std::move(forest)));
  return snapshot;
}

Result<std::shared_ptr<const RepositorySnapshot>>
RepositorySnapshot::CreateSuccessor(
    const std::shared_ptr<const RepositorySnapshot>& previous,
    schema::SchemaForest forest,
    const std::vector<schema::TreeId>& reuse_map) {
  if (previous == nullptr) {
    return Status::InvalidArgument("successor requires a previous snapshot");
  }
  if (reuse_map.size() != forest.num_trees()) {
    return Status::InvalidArgument(
        "reuse map must name every tree of the new forest");
  }
  const schema::SchemaForest& base = previous->forest();
  for (schema::TreeId t = 0;
       t < static_cast<schema::TreeId>(forest.num_trees()); ++t) {
    schema::TreeId prev = reuse_map[static_cast<size_t>(t)];
    if (prev < 0) continue;
    if (static_cast<size_t>(prev) >= base.num_trees()) {
      return Status::InvalidArgument("reuse map names a nonexistent tree");
    }
    // Reuse is only sound for the identical frozen payload: pointer
    // equality is the certificate (a content-equal copy would still be
    // safe, but the copy-on-write contract is sharing, so demand it).
    if (forest.tree_ptr(t) != base.tree_ptr(prev)) {
      return Status::InvalidArgument(
          "reuse map entry does not share the previous tree's payload");
    }
  }
  // Validate only the new payloads: shared trees were validated when they
  // first entered the chain, and the pointer check above certifies they
  // are those very objects.
  for (schema::TreeId t = 0;
       t < static_cast<schema::TreeId>(forest.num_trees()); ++t) {
    if (reuse_map[static_cast<size_t>(t)] < 0) {
      XSM_RETURN_NOT_OK(forest.tree(t).Validate());
    }
  }
  std::shared_ptr<const RepositorySnapshot> snapshot(
      new RepositorySnapshot(std::move(forest), *previous, reuse_map));
  return snapshot;
}

Result<std::shared_ptr<const RepositorySnapshot>>
RepositorySnapshot::FromParts(
    schema::SchemaForest forest, label::ForestIndex index,
    match::NameDictionary dictionary, uint64_t generation,
    uint64_t expected_fingerprint,
    const std::vector<uint64_t>& expected_tree_fingerprints) {
  XSM_RETURN_NOT_OK(forest.Validate());
  if (index.num_trees() != forest.num_trees()) {
    return Status::InvalidArgument(
        "adopted index does not describe the forest");
  }
  if (dictionary.total_nodes() != forest.total_nodes()) {
    return Status::InvalidArgument(
        "adopted dictionary does not describe the forest");
  }
  if (expected_tree_fingerprints.size() != forest.num_trees()) {
    return Status::Corruption(
        "per-tree fingerprint count does not match the forest");
  }
  std::shared_ptr<const RepositorySnapshot> snapshot(new RepositorySnapshot(
      std::move(forest), std::move(index), std::move(dictionary),
      generation));
  // The constructor recomputed fingerprints from the adopted forest; the
  // expected values came from the persisted file. Equality proves the
  // loaded snapshot carries exactly the content that was saved.
  if (snapshot->fingerprint() != expected_fingerprint) {
    return Status::Corruption(
        "loaded forest fingerprint does not match the saved one");
  }
  for (size_t t = 0; t < expected_tree_fingerprints.size(); ++t) {
    if (snapshot->tree_fingerprints_[t] != expected_tree_fingerprints[t]) {
      return Status::Corruption("tree " + std::to_string(t) +
                                " fingerprint does not match the saved one");
    }
  }
  return snapshot;
}

RepositorySnapshot::RepositorySnapshot(schema::SchemaForest forest)
    : forest_(std::move(forest)) {
  matcher_ = std::make_unique<core::Bellflower>(&forest_);
  name_dict_ = match::NameDictionary::Build(forest_);
  build_stats_.trees_rebuilt = forest_.num_trees();
  build_stats_.name_entries_computed = name_dict_.size();
  tree_fingerprints_.reserve(forest_.num_trees());
  for (schema::TreeId t = 0;
       t < static_cast<schema::TreeId>(forest_.num_trees()); ++t) {
    tree_fingerprints_.push_back(FingerprintTree(forest_.tree(t)));
  }
  FinishFingerprint();
}

RepositorySnapshot::RepositorySnapshot(schema::SchemaForest forest,
                                       label::ForestIndex index,
                                       match::NameDictionary dictionary,
                                       uint64_t generation)
    : forest_(std::move(forest)),
      name_dict_(std::move(dictionary)),
      generation_(generation) {
  matcher_ = std::make_unique<core::Bellflower>(&forest_, std::move(index));
  // The dictionary was deserialized against the pre-move forest; its
  // content (refs, entries) is address-free, only the back-pointer moves.
  name_dict_.BindForest(&forest_);
  // Nothing was rebuilt: the whole point of a warm start.
  build_stats_.trees_reused = forest_.num_trees();
  build_stats_.name_entries_copied = name_dict_.size();
  tree_fingerprints_.reserve(forest_.num_trees());
  for (schema::TreeId t = 0;
       t < static_cast<schema::TreeId>(forest_.num_trees()); ++t) {
    tree_fingerprints_.push_back(FingerprintTree(forest_.tree(t)));
  }
  FinishFingerprint();
}

RepositorySnapshot::RepositorySnapshot(
    schema::SchemaForest forest, const RepositorySnapshot& previous,
    const std::vector<schema::TreeId>& reuse_map)
    : forest_(std::move(forest)), generation_(previous.generation_ + 1) {
  label::ForestIndex::IncrementalStats index_stats;
  label::ForestIndex index = label::ForestIndex::BuildIncremental(
      forest_, previous.index(), reuse_map, &index_stats);
  matcher_ = std::make_unique<core::Bellflower>(&forest_, std::move(index));

  match::NameDictionary::IncrementalStats dict_stats;
  name_dict_ = match::NameDictionary::BuildIncremental(
      forest_, previous.name_dictionary(), reuse_map, &dict_stats);

  build_stats_.trees_reused = index_stats.trees_reused;
  build_stats_.trees_rebuilt = index_stats.trees_rebuilt;
  build_stats_.name_entries_copied = dict_stats.entries_copied;
  build_stats_.name_entries_computed = dict_stats.entries_computed;

  tree_fingerprints_.reserve(forest_.num_trees());
  for (schema::TreeId t = 0;
       t < static_cast<schema::TreeId>(forest_.num_trees()); ++t) {
    schema::TreeId prev = reuse_map[static_cast<size_t>(t)];
    tree_fingerprints_.push_back(prev >= 0
                                     ? previous.tree_fingerprint(prev)
                                     : FingerprintTree(forest_.tree(t)));
  }
  FinishFingerprint();
}

}  // namespace xsm::service
