#include "service/repository_snapshot.h"

#include <utility>

#include "util/random.h"

namespace xsm::service {

namespace {

inline uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h;
}

uint64_t FingerprintForest(const schema::SchemaForest& forest) {
  uint64_t h = Mix(forest.num_trees(), forest.total_nodes());
  for (size_t t = 0; t < forest.num_trees(); ++t) {
    const schema::SchemaTree& tree =
        forest.tree(static_cast<schema::TreeId>(t));
    h = Mix(h, tree.size());
    for (schema::NodeId n = 0; n < static_cast<schema::NodeId>(tree.size());
         ++n) {
      const schema::NodeProperties& props = tree.props(n);
      h = Mix(h, Fnv1a(props.name));
      h = Mix(h, Fnv1a(props.datatype));
      h = Mix(h, static_cast<uint64_t>(props.kind));
      h = Mix(h, (props.repeatable ? 2u : 0u) | (props.optional ? 1u : 0u));
      h = Mix(h, static_cast<uint64_t>(tree.parent(n)) + 1);
    }
  }
  return h;
}

}  // namespace

Result<std::shared_ptr<const RepositorySnapshot>> RepositorySnapshot::Create(
    schema::SchemaForest forest) {
  XSM_RETURN_NOT_OK(forest.Validate());
  // Not make_shared: the constructor is private and the forest must be in
  // its final location before the matcher indexes it.
  std::shared_ptr<const RepositorySnapshot> snapshot(
      new RepositorySnapshot(std::move(forest)));
  return snapshot;
}

RepositorySnapshot::RepositorySnapshot(schema::SchemaForest forest)
    : forest_(std::move(forest)) {
  matcher_ = std::make_unique<core::Bellflower>(&forest_);
  name_dict_ = match::NameDictionary::Build(forest_);
  fingerprint_ = FingerprintForest(forest_);
}

}  // namespace xsm::service
