// MatchService: the long-lived serving front end over one repository
// snapshot. Where core::Bellflower solves one matching problem, the service
// executes *traffic*: single queries, batches, and async submissions run
// concurrently on a fixed thread pool against the shared immutable
// snapshot, and the expensive preprocessing (element matching + clustering)
// is amortized across queries through a ClusterIndexCache — reclustering
// with the same (personal schema, clustering parameters) key happens at
// most once.
//
// Quickstart:
//   auto service = service::MatchService::Create(std::move(forest));
//   service::MatchQuery query;
//   query.id = "q1";
//   query.personal = *schema::ParseTreeSpec("name(address,email)");
//   query.options.delta = 0.75;
//   auto result = (*service)->Match(query);               // synchronous
//   auto future = (*service)->SubmitMatch(query);         // async
//   auto results = (*service)->MatchBatch(queries);       // parallel batch
#ifndef XSM_SERVICE_MATCH_SERVICE_H_
#define XSM_SERVICE_MATCH_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/bellflower.h"
#include "schema/schema_forest.h"
#include "schema/schema_tree.h"
#include "service/cluster_index_cache.h"
#include "service/repository_snapshot.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace xsm::service {

/// One unit of service work: a personal schema plus the matching knobs.
struct MatchQuery {
  /// Stable identity of the query. Labels results and — for randomized
  /// clustering initializations — seeds the per-query RNG, so re-running a
  /// query with the same id reproduces its result exactly regardless of
  /// concurrency (see MatchServiceOptions::derive_seeds).
  std::string id;
  schema::SchemaTree personal;
  core::MatchOptions options;
};

struct MatchServiceOptions {
  /// Worker threads executing SubmitMatch / MatchBatch work; 0 means
  /// ThreadPool::DefaultThreadCount().
  size_t num_threads = 0;
  /// Capacity of the cluster-state cache in entries (distinct
  /// (personal schema, clustering options) keys); 0 disables caching.
  size_t cluster_cache_capacity = 64;
  /// Base seed mixed with query ids by SeedForQuery.
  uint64_t base_seed = 42;
  /// When a query's clustering consumes randomness (CentroidInit::kRandom /
  /// kFarthestFirst), replace its k-means seed with
  /// SeedForQuery(base_seed, query.id) so results are a pure function of
  /// the query, not of thread interleaving. The default kMinSet
  /// initialization is deterministic and ignores the seed, so those
  /// queries share cache entries across ids.
  bool derive_seeds = true;
};

struct ServiceStats {
  uint64_t queries = 0;  ///< Match() calls (batch members included)
  uint64_t batches = 0;  ///< MatchBatch() calls
  ClusterIndexCache::Stats cache;
};

/// Thread-safe; one instance serves arbitrarily many concurrent callers.
class MatchService {
 public:
  /// Convenience: snapshots `repository` (validating it, building the
  /// index once) and wraps it in a service.
  static Result<std::unique_ptr<MatchService>> Create(
      schema::SchemaForest repository, const MatchServiceOptions& options =
                                           MatchServiceOptions());

  MatchService(std::shared_ptr<const RepositorySnapshot> snapshot,
               const MatchServiceOptions& options = MatchServiceOptions());

  MatchService(const MatchService&) = delete;
  MatchService& operator=(const MatchService&) = delete;

  /// Executes one query on the calling thread (consults / fills the
  /// cluster cache). Safe to call from any number of threads.
  Result<core::MatchResult> Match(const MatchQuery& query);

  /// Enqueues one query on the pool; the future resolves when it finishes.
  std::future<Result<core::MatchResult>> SubmitMatch(MatchQuery query);

  /// Executes all queries on the pool and returns their results in input
  /// order. Blocks until the whole batch is done. Call from outside the
  /// pool (a batch inside a pool task would wait on its own workers).
  std::vector<Result<core::MatchResult>> MatchBatch(
      std::vector<MatchQuery> queries);

  const RepositorySnapshot& snapshot() const { return *snapshot_; }
  const MatchServiceOptions& options() const { return options_; }
  ThreadPool& pool() { return pool_; }
  ServiceStats stats() const;

  /// Drops every cached cluster state (measurement / repository tuning).
  void ClearCache() { cache_.Clear(); }

  /// The options Match() actually runs for `query` after per-query seed
  /// derivation. Exposed for tests and tools.
  core::MatchOptions EffectiveOptions(const MatchQuery& query) const;

  /// The cluster-cache key for `query`: a canonical fingerprint of its
  /// personal schema and state-determining options. Exposed for tests.
  std::string ClusterStateKey(const MatchQuery& query) const;

 private:
  std::shared_ptr<const RepositorySnapshot> snapshot_;
  MatchServiceOptions options_;
  ClusterIndexCache cache_;
  ThreadPool pool_;
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> batches_{0};
};

}  // namespace xsm::service

#endif  // XSM_SERVICE_MATCH_SERVICE_H_
