// MatchService: the long-lived serving front end over one repository
// snapshot. Where core::Bellflower solves one matching problem, the service
// executes *traffic*: single queries, batches, and async submissions run
// concurrently on a fixed thread pool against the shared immutable
// snapshot, and the expensive preprocessing (element matching + clustering)
// is amortized across queries through a ClusterIndexCache — reclustering
// with the same (personal schema, clustering parameters) key happens at
// most once.
//
// Quickstart:
//   auto service = service::MatchService::Create(std::move(forest));
//   service::MatchQuery query;
//   query.id = "q1";
//   query.personal = *schema::ParseTreeSpec("name(address,email)");
//   query.options.delta = 0.75;
//   auto result = (*service)->Match(query);               // synchronous
//   auto handle = (*service)->SubmitMatch(query);         // async, cancellable
//   handle.Cancel();                                      // cooperative stop
//   auto partial = handle.Get();                          // mappings so far
//   auto batch = (*service)->MatchBatch(queries);         // parallel batch
//   // batch.results in input order; batch.generation / batch.fingerprint
//   // name the snapshot that served every member.
//
//   live::DeltaBuilder builder;                           // evolve the repo
//   builder.AddTree(*schema::ParseTreeSpec("invoice(total,customer)"));
//   auto report = (*service)->ApplyDelta(*builder.Build());
//   // report->generation, report->trees_reused, ... ; queries submitted
//   // from now on run against the new generation.
//
// Streaming (anytime) execution: MatchStreaming runs a query under an
// ExecutionControl (cancellation, deadline, stop-after-N) and reports every
// mapping to a MatchObserver the moment it is found; see
// core/match_observer.h. MatchServiceOptions::default_deadline_seconds
// bounds every query that doesn't bring its own deadline.
//
// Evolving repositories: the service fronts a live::RepositoryManager, so
// the repository can change while queries are being served. ApplyDelta
// publishes the next generation atomically; every query is pinned to the
// snapshot that was current when it entered (Match) or was submitted
// (SubmitMatch / MatchBatch) and finishes against it — a swap mid-flight
// never changes, tears, or aborts a running query. Cluster caches are
// namespaced by snapshot fingerprint, so a stale cluster state can never
// serve a different repository content; a bounded number of recent
// fingerprints' caches is retained (cache_retained_generations) to keep
// pinned in-flight queries warm across small deltas.
#ifndef XSM_SERVICE_MATCH_SERVICE_H_
#define XSM_SERVICE_MATCH_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/bellflower.h"
#include "core/execution_control.h"
#include "core/match_observer.h"
#include "live/repository_delta.h"
#include "live/repository_manager.h"
#include "obs/metrics.h"
#include "schema/schema_forest.h"
#include "schema/schema_tree.h"
#include "service/cluster_index_cache.h"
#include "service/matcher.h"
#include "service/repository_snapshot.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace xsm::service {

// MatchQuery, MatchServiceOptions, BatchMatchResult, ServiceStats and
// MatchHandle live in service/matcher.h (shared by every backend); this
// header keeps only the single-snapshot implementation.

/// Thread-safe; one instance serves arbitrarily many concurrent callers.
/// The single-snapshot Matcher backend.
class MatchService : public Matcher {
 public:
  /// Convenience: snapshots `repository` (validating it, building the
  /// index once) and wraps it in a service.
  static Result<std::unique_ptr<MatchService>> Create(
      schema::SchemaForest repository, const MatchServiceOptions& options =
                                           MatchServiceOptions());

  /// Boots a service from a snapshot persisted by SaveSnapshot /
  /// store::SaveSnapshotToFile: the forest, structural index, name
  /// dictionary and fingerprints are loaded, not rebuilt, and the
  /// generation chain continues delta ingestion from the loaded
  /// generation (the first ApplyDelta publishes it + 1).
  static Result<std::unique_ptr<MatchService>> WarmStart(
      const std::string& path, const MatchServiceOptions& options =
                                   MatchServiceOptions());

  /// Crash-safe boot: loads the snapshot, replays the delta journal's
  /// post-checkpoint suffix (live::RepositoryManager::Recover), and keeps
  /// journaling into the same WAL — the recovered chain is fingerprint-
  /// identical to the uninterrupted one. `report` (may be null) receives
  /// the replay accounting.
  static Result<std::unique_ptr<MatchService>> Recover(
      util::io::Env* env, const std::string& snapshot_path,
      const std::string& wal_path,
      const MatchServiceOptions& options = MatchServiceOptions(),
      live::RecoveryReport* report = nullptr);

  MatchService(std::shared_ptr<const RepositorySnapshot> snapshot,
               const MatchServiceOptions& options = MatchServiceOptions());

  /// Adopts an already-built generation chain (e.g. one produced by
  /// live::RepositoryManager::Recover, WAL attached and all).
  MatchService(std::unique_ptr<live::RepositoryManager> manager,
               const MatchServiceOptions& options = MatchServiceOptions());

  MatchService(const MatchService&) = delete;
  MatchService& operator=(const MatchService&) = delete;

  ~MatchService() override;

  // --- Matcher surface. ---------------------------------------------------

  /// The current snapshot is the pin: no translation layer, the snapshot
  /// class implements RepositoryPin directly.
  RepositoryPinPtr Pin() const override { return manager_->Current(); }

  /// Executes one request against an explicit pin on the calling thread
  /// (consults / fills the cluster cache). `pin` must come from this
  /// service's chain (Pin() / CurrentSnapshot()).
  Result<core::MatchResult> RunOn(
      const RepositoryPinPtr& pin, const MatchRequest& request,
      const core::ExecutionControl& control,
      core::MatchObserver* observer = nullptr) override;

  MatchHandle Submit(RepositoryPinPtr pin, MatchRequest request,
                     core::ExecutionControl control = core::ExecutionControl(),
                     core::MatchObserver* observer = nullptr) override;

  BatchMatchResult RunBatch(std::vector<MatchRequest> requests) override;

  Result<ClusterStatePtr> ClusterStateFor(const RepositoryPinPtr& pin,
                                          const MatchRequest& request) override;

  // --- Historical entry points (thin deprecated wrappers over the Matcher
  // surface; prefer Run/RunOn/Submit/RunBatch in new code). ----------------

  /// Deprecated: use Run / RunOn. Executes one query on the calling thread
  /// (consults / fills the cluster cache). Safe to call from any number of
  /// threads.
  Result<core::MatchResult> Match(const MatchQuery& query);

  /// Deprecated: use RunOn with an explicit pin. Anytime variant: runs
  /// under `control` (cancellation / deadline / stop-after-N; the service
  /// default deadline fills in if `control` has none) and streams progress
  /// to `observer` (may be null). A run no limit interrupts is
  /// byte-identical to Match(query); an interrupted run resolves Status-OK
  /// with the mappings found so far and the typed terminal status in
  /// MatchResult::execution. Cancellation never poisons the cluster cache:
  /// a cluster-state build that has started always completes (and is
  /// cached fully built); control is re-checked before and after it.
  Result<core::MatchResult> Match(const MatchQuery& query,
                                  const core::ExecutionControl& control,
                                  core::MatchObserver* observer = nullptr);

  /// Deprecated: use RunOn. Sugar for streaming consumers: Match(query,
  /// control, observer) with the argument order of "subscribe this
  /// observer to that query".
  Result<core::MatchResult> MatchStreaming(
      const MatchQuery& query, core::MatchObserver* observer,
      const core::ExecutionControl& control = core::ExecutionControl());

  /// Deprecated: use Submit. Enqueues one query on the pool against the
  /// current snapshot and returns a cancellable handle; the service
  /// default deadline starts now (queue wait counts). `observer` (may be
  /// null) must outlive the query; its callbacks run on the pool thread
  /// executing it.
  MatchHandle SubmitMatch(MatchQuery query,
                          core::ExecutionControl control =
                              core::ExecutionControl(),
                          core::MatchObserver* observer = nullptr);

  /// Deprecated: use Submit(pin, ...). SubmitMatch against an explicit
  /// snapshot pin instead of the current one. Callers that format results
  /// against a snapshot they already hold (ServeSession's NDJSON observers
  /// name mapped trees through the forest) pass that snapshot here, so
  /// query and formatter provably see the same generation even when deltas
  /// land between the caller's pin and the submission. `pinned` must come
  /// from this service's chain.
  MatchHandle SubmitMatchOn(
      std::shared_ptr<const RepositorySnapshot> pinned, MatchQuery query,
      core::ExecutionControl control = core::ExecutionControl(),
      core::MatchObserver* observer = nullptr);

  /// Deprecated: use RunBatch.
  BatchMatchResult MatchBatch(std::vector<MatchQuery> queries);

  /// Deprecated: use ClusterStateFor. The cached cluster state (element
  /// matching + clustering) for `query` against an explicit snapshot pin:
  /// consults the snapshot fingerprint's cache namespace and computes-once
  /// on miss, exactly like the query path. The build always runs to
  /// completion (query-supplied element.control is stripped), so the cache
  /// can never hold a partial state. This is the integration engine's
  /// bulk-preprocessing hook: N schemas sliced into personal-schema
  /// queries share every state with interactive traffic and with later
  /// integration runs on the same content. `snapshot` must come from this
  /// service's chain.
  Result<ClusterStatePtr> ClusterStateOn(
      const std::shared_ptr<const RepositorySnapshot>& snapshot,
      const MatchQuery& query);

  /// Applies a validated delta to the repository and atomically publishes
  /// the successor generation. In-flight queries finish against their
  /// pinned snapshot; queries entering after this returns see the new one.
  /// Serialized with concurrent ApplyDelta calls; on error nothing
  /// changes. `trace` (may be null) receives the per-stage spans
  /// (delta_validate / snapshot_build / wal_fsync / publish).
  Result<live::ApplyReport> ApplyDelta(
      const live::RepositoryDelta& delta,
      obs::TraceContext* trace = nullptr) override;

  /// Generation number of the current snapshot (0 until the first delta).
  uint64_t CurrentGeneration() const override {
    return manager_->CurrentGeneration();
  }

  /// The current snapshot. Hold the returned shared_ptr while touching the
  /// forest/dictionary it exposes — a concurrent ApplyDelta retires the
  /// snapshot once the last holder lets go.
  std::shared_ptr<const RepositorySnapshot> CurrentSnapshot() const {
    return manager_->Current();
  }

  const MatchServiceOptions& options() const override { return options_; }
  ThreadPool& pool() override { return pool_; }
  ServiceStats stats() const override;

  /// The registry this service's series live in — the shared one from
  /// MatchServiceOptions::metrics or the private fallback. Every stats
  /// surface (`!stats`, `/v1/stats`, `/metrics`) reads values that
  /// originate here, so they can never disagree.
  obs::MetricsRegistry& metrics() const override { return *metrics_; }

  /// Drops every cached cluster state in every retained namespace
  /// (measurement / repository tuning).
  void ClearCache();

  /// Persists the current snapshot for a later WarmStart (atomic write;
  /// see store::SaveSnapshotToFile). Safe alongside concurrent queries and
  /// deltas: the snapshot pinned at entry is saved, whole and consistent.
  /// `trace` (may be null) receives store_save / wal_compact spans.
  Result<store::SnapshotFileInfo> SaveSnapshot(
      const std::string& path,
      obs::TraceContext* trace = nullptr) const override {
    return manager_->SaveSnapshot(path, trace);
  }

  /// Write-ahead journals every subsequent ApplyDelta into `wal_path`
  /// (created fresh, based at the current generation): appended + fsync'd
  /// before the new generation is published, so an acknowledged delta
  /// survives a crash. SaveSnapshot then compacts the journal. See
  /// live::RepositoryManager::AttachWal.
  Status AttachWal(util::io::Env* env, const std::string& wal_path) override {
    return manager_->AttachWal(env, wal_path);
  }

  /// Whether deltas are currently being journaled.
  bool wal_attached() const override { return manager_->wal_attached(); }

  /// The options Match() actually runs for `query` against the *current*
  /// snapshot, after per-query seed derivation and element-matching
  /// plumbing injection (the snapshot's name dictionary, plus the matching
  /// pool when configured — unless the query brought its own). Exposed for
  /// tests and tools. Lifetime: the injected dictionary points into the
  /// snapshot current at this call — hold CurrentSnapshot() across any use
  /// of the returned options, or a concurrent ApplyDelta may retire it.
  core::MatchOptions EffectiveOptions(const MatchQuery& query) const override;

  /// The cluster-cache key for `query`: a canonical fingerprint of its
  /// personal schema and state-determining options. Stable across
  /// generations — cross-generation isolation comes from the namespace,
  /// not the key. Exposed for tests.
  std::string ClusterStateKey(const MatchQuery& query) const override;

 private:
  /// Per-fingerprint cluster-cache namespace, kept in LRU order.
  struct CacheNamespace {
    uint64_t fingerprint = 0;
    std::shared_ptr<ClusterIndexCache> cache;
  };

  /// Fills in the service default deadline when `control` has none.
  core::ExecutionControl ResolveControl(core::ExecutionControl control) const;

  /// Bumps the terminal-status counter for one finished query.
  void CountTerminal(core::ExecutionStatus status);

  /// EffectiveOptions against an explicit snapshot (the query's pin).
  core::MatchOptions EffectiveOptionsFor(
      const MatchQuery& query, const RepositorySnapshot& snapshot) const;

  /// The whole query path, against one pinned snapshot.
  Result<core::MatchResult> MatchOnSnapshot(
      const std::shared_ptr<const RepositorySnapshot>& snapshot,
      const MatchQuery& query, const core::ExecutionControl& control,
      core::MatchObserver* observer);

  /// The cache namespace for `fingerprint` (created if absent). Never
  /// returns null. Publication sites (constructor, ApplyDelta) pass
  /// `enforce_retention`: they move the namespace to the
  /// most-recently-published position and trim the oldest beyond the
  /// retention limit. The query path does neither, so a long-queued query
  /// pinned to an already-retired generation can neither evict a recent
  /// generation's warm cache nor promote its own stray namespace above
  /// one — strays sit at the least-retained position and are swept up by
  /// the next delta.
  std::shared_ptr<ClusterIndexCache> CacheFor(uint64_t fingerprint,
                                              bool enforce_retention = false);

  std::unique_ptr<live::RepositoryManager> manager_;
  MatchServiceOptions options_;
  /// Serializes ApplyDelta end to end (publication + cache registration),
  /// so `caches_` publication order always matches generation order.
  std::mutex apply_mu_;
  ThreadPool pool_;
  /// Element-matching shard pool; null when matching_threads == 0.
  std::unique_ptr<ThreadPool> matching_pool_;

  mutable std::mutex caches_mu_;
  /// Most recently *published* last (query touches never reorder);
  /// bounded by 1 + cache_retained_generations at publication sites.
  std::vector<CacheNamespace> caches_;
  /// Counters folded in from dropped namespaces, so stats() is cumulative.
  ClusterIndexCache::Stats retired_cache_stats_;

  /// Metric handles, pre-registered at construction (shared registry or
  /// the private fallback). Increments are single relaxed fetch_adds —
  /// the same cost as the raw atomics they replaced — and the registry is
  /// now the single source of truth stats() reads back from.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* queries_ = nullptr;
  obs::Counter* batches_ = nullptr;
  obs::Counter* cancelled_ = nullptr;
  obs::Counter* deadline_exceeded_ = nullptr;
  obs::Counter* early_stopped_ = nullptr;
  obs::Counter* deltas_applied_ = nullptr;
  obs::Counter* slow_queries_ = nullptr;
  obs::Histogram* query_latency_ms_ = nullptr;
  /// Mirrors cache/generation tallies into registry series at scrape
  /// time; removed in the destructor (the hook captures `this`).
  uint64_t scrape_hook_id_ = 0;
};

}  // namespace xsm::service

#endif  // XSM_SERVICE_MATCH_SERVICE_H_
