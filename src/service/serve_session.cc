#include "service/serve_session.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <memory>
#include <sstream>
#include <utility>

#include "generate/schema_mapping.h"
#include "live/repository_delta.h"
#include "schema/serialization.h"
#include "util/string_util.h"

namespace xsm::service {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

Result<schema::SchemaForest> LoadForestFromPath(const std::string& path,
                                                repo::LoadReport* report) {
  if (std::filesystem::is_directory(path)) {
    schema::SchemaForest forest;
    XSM_ASSIGN_OR_RETURN(repo::LoadReport loaded,
                         repo::LoadRepositoryFromDirectory(path, &forest));
    if (report != nullptr) *report = loaded;
    return forest;
  }
  return schema::LoadForestFromFile(path);
}

// --- NdjsonEventObserver ---------------------------------------------------

NdjsonEventObserver::NdjsonEventObserver(
    const std::string& id, const schema::SchemaTree* personal,
    RepositoryPinPtr pin, const EventSink& sink, bool cluster_events)
    : id_(JsonEscape(id)),
      personal_(personal),
      pin_(std::move(pin)),
      sink_(sink),
      cluster_events_(cluster_events) {}

void NdjsonEventObserver::OnMapping(const generate::SchemaMapping& mapping,
                                    size_t running_rank) {
  char nums[224];
  std::snprintf(nums, sizeof(nums),
                "\",\"rank\":%zu,\"tree\":%d,\"delta\":%.6f,"
                "\"delta_sim\":%.6f,\"delta_path\":%.6f,\"ms\":%.3f,"
                "\"map\":\"",
                running_rank, mapping.tree, mapping.delta, mapping.delta_sim,
                mapping.delta_path, ElapsedMs());
  std::string line = "{\"type\":\"mapping\",\"id\":\"" + id_ + nums;
  line += JsonEscape(
      generate::MappingToString(mapping, *personal_, pin_->forest()));
  line += "\"}";
  sink_(line);
}

void NdjsonEventObserver::OnClusterFinish(size_t sequence, size_t total,
                                          const core::ClusterSummary& summary,
                                          const core::MatchStats& so_far) {
  if (!cluster_events_) return;
  char nums[224];
  std::snprintf(nums, sizeof(nums),
                "\",\"seq\":%zu,\"total\":%zu,\"tree\":%d,"
                "\"mappings\":%zu,\"partials_generated\":%llu,"
                "\"ms\":%.3f}",
                sequence, total, summary.tree, so_far.num_mappings,
                static_cast<unsigned long long>(
                    so_far.generator.partial_mappings),
                ElapsedMs());
  sink_("{\"type\":\"cluster\",\"id\":\"" + id_ + nums);
}

void NdjsonEventObserver::OnFinish(const core::MatchResult& result) {
  (void)result;
  // Completion time measured on the worker, not when the submitting thread
  // gets around to emitting the done event.
  finished_ms_ = ElapsedMs();
}

// --- NdjsonIntegrationObserver ---------------------------------------------

void NdjsonIntegrationObserver::OnPair(
    const integrate::PairProgress& progress) {
  char line[224];
  std::snprintf(line, sizeof(line),
                "{\"type\":\"pair\",\"a\":%d,\"b\":%d,\"links\":%zu,"
                "\"score\":%.6f,\"done\":%zu,\"of\":%zu}",
                progress.a, progress.b, progress.links, progress.best_score,
                progress.sources_done, progress.sources_total);
  sink_(line);
}

void NdjsonIntegrationObserver::OnMediatedElement(
    size_t rank, const integrate::MediatedElement& element,
    const integrate::CorrespondenceCluster& cluster) {
  char nums[288];
  std::snprintf(nums, sizeof(nums),
                "\",\"tree\":%d,\"node\":%d,\"size\":%zu,\"schemas\":%zu,"
                "\"links\":%zu,\"confidence\":%.6f,\"severity\":\"",
                element.representative.tree, element.representative.node,
                cluster.members.size(), cluster.schemas, cluster.links,
                cluster.confidence);
  std::string line = "{\"type\":\"cluster\",\"rank\":" + std::to_string(rank) +
                     ",\"name\":\"" + JsonEscape(element.name) + nums;
  line += SeverityName(cluster.severity);
  line += "\",\"members\":[";
  const size_t listed = std::min(cluster.members.size(), kMaxMemberRefs);
  for (size_t i = 0; i < listed; ++i) {
    if (i > 0) line += ',';
    line += "\"" + std::to_string(cluster.members[i].tree) + ":" +
            std::to_string(cluster.members[i].node) + "\"";
  }
  line += "]";
  if (listed < cluster.members.size()) {
    line += ",\"members_truncated\":" +
            std::to_string(cluster.members.size() - listed);
  }
  line += "}";
  sink_(line);
}

void NdjsonIntegrationObserver::OnFinish(
    const integrate::IntegrationResult& result) {
  char line[512];
  std::snprintf(
      line, sizeof(line),
      "{\"type\":\"mediated\",\"status\":\"%s\",\"generation\":%llu,"
      "\"fingerprint\":\"%016llx\",\"seed\":%llu,\"trees\":%zu,"
      "\"slices\":%zu,\"pairs\":%zu,\"pairs_linked\":%zu,"
      "\"correspondences\":%zu,\"clusters\":%zu,\"elements\":%zu,"
      "\"ms\":%.3f}",
      std::string(core::ExecutionStatusName(result.execution)).c_str(),
      static_cast<unsigned long long>(result.generation),
      static_cast<unsigned long long>(result.fingerprint),
      static_cast<unsigned long long>(result.seed), result.stats.trees,
      result.stats.slices, result.stats.pairs_total,
      result.stats.pairs_linked, result.stats.correspondences,
      result.clusters.size(), result.mediated.elements.size(), ElapsedMs());
  sink_(line);
}

// --- ServeSession ----------------------------------------------------------

ServeSession::ServeSession(Matcher* service, ServeSessionOptions options)
    : service_(service), options_(std::move(options)) {}

Result<MatchQuery> ServeSession::ParseQuery(const std::string& line,
                                            size_t index) const {
  std::istringstream stream(line);
  std::string spec;
  stream >> spec;
  if (spec.empty()) {
    return Status::InvalidArgument("empty query line");
  }

  MatchRequestBuilder builder;
  builder.id("q" + std::to_string(index)).options(options_.defaults);
  XSM_ASSIGN_OR_RETURN(schema::SchemaTree personal,
                       schema::ParseTreeSpec(spec));
  builder.personal(std::move(personal));

  std::string token;
  while (stream >> token) {
    size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("expected key=value, got: " + token);
    }
    std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    if (key == "id") {
      builder.id(value);
    } else if (key == "delta") {
      builder.delta(std::atof(value.c_str()));
    } else if (key == "top") {
      builder.top_n(static_cast<size_t>(std::atol(value.c_str())));
    } else if (key == "join") {
      builder.request().options.kmeans.join_distance =
          static_cast<int>(std::atol(value.c_str()));
    } else if (key == "threshold") {
      builder.threshold(std::atof(value.c_str()));
    } else if (key == "alpha") {
      builder.alpha(std::atof(value.c_str()));
    } else if (key == "cluster") {
      if (value == "tree") {
        builder.clustering(core::ClusteringMode::kTreeClusters);
      } else if (value == "kmeans") {
        builder.clustering(core::ClusteringMode::kKMeans);
      } else {
        return Status::InvalidArgument("cluster must be tree or kmeans");
      }
    } else {
      return Status::InvalidArgument("unknown query key: " + key);
    }
  }
  // Build() validates the whole request up front (spec well-formedness,
  // ranges, objective/k-means parameters), so a line the session accepts is
  // a request every backend accepts.
  return builder.Build();
}

Result<core::MatchResult> ServeSession::RunQuery(
    const MatchQuery& query, const EventSink& sink,
    core::ExecutionControl control) {
  if (options_.first_n > 0 && control.stop_after_n_mappings == 0) {
    control.stop_after_n_mappings = options_.first_n;
  }
  // Span collection: the context lives on this frame and the call blocks
  // on the handle, so worker-thread spans can never outlive it.
  obs::TraceContext trace;
  if (options_.trace_events && control.trace == nullptr) {
    control.trace = &trace;
  }
  // One pin shared by the query and its observer: the observer formats
  // mapping text against the exact forest the query ran on, even when a
  // delta publishes between this call and the pool picking the task up.
  RepositoryPinPtr pin = service_->Pin();
  NdjsonEventObserver observer(query.id, &query.personal, pin, sink,
                               options_.cluster_events);
  const bool traced = control.trace == &trace;
  MatchHandle handle = service_->Submit(std::move(pin), query,
                                        std::move(control), &observer);
  Result<core::MatchResult> result = handle.Get();
  if (traced) EmitTraceEvent(query.id, trace, sink);
  const double done_ms = observer.DoneMs();
  const double slow_ms = service_->options().slow_query_ms;
  if (slow_ms > 0 && done_ms >= slow_ms) {
    char nums[128];
    std::snprintf(nums, sizeof(nums),
                  "\",\"ms\":%.3f,\"threshold_ms\":%.3f}", done_ms, slow_ms);
    sink("{\"type\":\"slow_query\",\"id\":\"" + JsonEscape(query.id) + nums);
  }
  EmitDoneEvent(query.id, result, done_ms, sink);
  return result;
}

size_t ServeSession::RunBatch(const std::vector<MatchQuery>& queries,
                              const EventSink& sink,
                              core::ExecutionControl control) {
  std::vector<std::unique_ptr<NdjsonEventObserver>> observers;
  std::vector<MatchHandle> handles;
  observers.reserve(queries.size());
  handles.reserve(queries.size());
  for (const MatchQuery& query : queries) {
    core::ExecutionControl query_control = control;
    // Each member needs its own cancel token: the caller's `control` is a
    // template, not one shared handle (sharing would make the first
    // member's cancellation stop the whole batch — the transports cancel
    // via the token copy they keep).
    if (options_.first_n > 0 && query_control.stop_after_n_mappings == 0) {
      query_control.stop_after_n_mappings = options_.first_n;
    }
    RepositoryPinPtr pin = service_->Pin();
    observers.push_back(std::make_unique<NdjsonEventObserver>(
        query.id, &query.personal, pin, sink, options_.cluster_events));
    handles.push_back(service_->Submit(std::move(pin), query,
                                       std::move(query_control),
                                       observers.back().get()));
  }

  size_t failed = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    Result<core::MatchResult> result = handles[i].Get();
    EmitDoneEvent(queries[i].id, result, observers[i]->DoneMs(), sink);
    if (!result.ok()) ++failed;
  }
  return failed;
}

Status ServeSession::RunCommand(const std::string& line,
                                const EventSink& sink,
                                core::ExecutionControl control) {
  std::istringstream stream(line);
  std::string command;
  stream >> command;

  if (command == "!integrate") {
    std::string args;
    std::getline(stream, args);
    return RunIntegrate(args, sink, std::move(control));
  }

  auto apply = [this, &sink, &command](live::DeltaBuilder builder) {
    auto delta = builder.Build();
    if (!delta.ok()) {
      EmitErrorEvent("", delta.status(), sink);
      return delta.status();
    }
    obs::TraceContext trace;
    obs::TraceContext* trace_ptr = options_.trace_events ? &trace : nullptr;
    auto report = service_->ApplyDelta(*delta, trace_ptr);
    if (!report.ok()) {
      EmitErrorEvent("", report.status(), sink);
      return report.status();
    }
    if (trace_ptr != nullptr) {
      EmitTraceEvent(command.substr(1), trace, sink);
    }
    EmitGenerationEvent(*report, sink);
    return Status::OK();
  };

  auto parse_source = [&stream]() {
    std::string token, source;
    while (stream >> token) {
      if (token.rfind("source=", 0) == 0) source = token.substr(7);
    }
    return source;
  };

  // Parses a tree id, rejecting values a TreeId cannot hold — a silently
  // wrapped id would target the wrong tree.
  auto parse_target = [&stream](long* target) {
    return static_cast<bool>(stream >> *target) && *target >= 0 &&
           *target <= std::numeric_limits<schema::TreeId>::max();
  };

  auto usage = [&sink](const std::string& message) {
    Status status = Status::InvalidArgument(message);
    EmitErrorEvent("", status, sink);
    return status;
  };

  if (command == "!ingest" || command == "!replace") {
    long target = -1;
    if (command == "!replace" && !parse_target(&target)) {
      return usage("usage: !replace ID SPEC [source=NAME]");
    }
    std::string spec;
    if (!(stream >> spec)) {
      return usage("usage: " + command + " SPEC [source=NAME]");
    }
    auto tree = schema::ParseTreeSpec(spec);
    if (!tree.ok()) {
      EmitErrorEvent("", tree.status(), sink);
      return tree.status();
    }
    std::string source = parse_source();
    if (source.empty()) source = "serve:" + command.substr(1);
    live::DeltaBuilder builder;
    if (command == "!ingest") {
      builder.AddTree(std::move(*tree), std::move(source));
    } else {
      builder.ReplaceTree(static_cast<schema::TreeId>(target),
                          std::move(*tree), std::move(source));
    }
    return apply(std::move(builder));
  }
  if (command == "!remove") {
    long target = -1;
    if (!parse_target(&target)) {
      return usage("usage: !remove ID");
    }
    live::DeltaBuilder builder;
    builder.RemoveTree(static_cast<schema::TreeId>(target));
    return apply(std::move(builder));
  }
  if (command == "!reload") {
    if (!options_.allow_filesystem) {
      Status status = Status::FailedPrecondition(
          "!reload is disabled on this transport");
      EmitErrorEvent("", status, sink);
      return status;
    }
    std::string path;
    if (!(stream >> path)) {
      return usage("usage: !reload (FILE|DIR)");
    }
    auto loaded = LoadForestFromPath(path);
    if (!loaded.ok()) {
      EmitErrorEvent("", loaded.status(), sink);
      return loaded.status();
    }
    if (loaded->num_trees() == 0) {
      return usage("!reload: " + path + " holds no trees");
    }
    // Whole-repository swap as one delta: retire every current tree, add
    // every loaded one (payloads shared from the loaded forest, not
    // copied). Published atomically like any other delta.
    RepositoryPinPtr pin = service_->Pin();
    live::DeltaBuilder builder;
    for (schema::TreeId t = 0;
         t < static_cast<schema::TreeId>(pin->num_trees()); ++t) {
      builder.RemoveTree(t);
    }
    for (schema::TreeId t = 0;
         t < static_cast<schema::TreeId>(loaded->num_trees()); ++t) {
      builder.AddTree(loaded->tree_ptr(t), loaded->source(t));
    }
    return apply(std::move(builder));
  }
  if (command == "!save") {
    if (!options_.allow_filesystem) {
      Status status =
          Status::FailedPrecondition("!save is disabled on this transport");
      EmitErrorEvent("", status, sink);
      return status;
    }
    std::string path;
    if (!(stream >> path)) {
      return usage("usage: !save PATH");
    }
    obs::TraceContext trace;
    obs::TraceContext* trace_ptr = options_.trace_events ? &trace : nullptr;
    auto info = service_->SaveSnapshot(path, trace_ptr);
    if (!info.ok()) {
      EmitErrorEvent("", info.status(), sink);
      return info.status();
    }
    if (trace_ptr != nullptr) EmitTraceEvent("save", trace, sink);
    char nums[384];
    std::snprintf(nums, sizeof(nums),
                  "\",\"format\":%u,\"generation\":%llu,"
                  "\"fingerprint\":\"%016llx\",\"trees\":%llu,"
                  "\"elements\":%llu,\"bytes\":%llu}",
                  info->format_version,
                  static_cast<unsigned long long>(info->generation),
                  static_cast<unsigned long long>(info->fingerprint),
                  static_cast<unsigned long long>(info->trees),
                  static_cast<unsigned long long>(info->total_nodes),
                  static_cast<unsigned long long>(info->total_bytes));
    sink("{\"type\":\"saved\",\"path\":\"" + JsonEscape(path) + nums);
    return Status::OK();
  }
  if (command == "!generation") {
    RepositoryPinPtr pin = service_->Pin();
    char nums[160];
    std::snprintf(nums, sizeof(nums),
                  "{\"type\":\"generation\",\"generation\":%llu,"
                  "\"fingerprint\":\"%016llx\",\"trees\":%zu}",
                  static_cast<unsigned long long>(pin->generation()),
                  static_cast<unsigned long long>(pin->fingerprint()),
                  pin->num_trees());
    sink(nums);
    return Status::OK();
  }
  if (command == "!stats") {
    EmitStatsEvent(sink);
    return Status::OK();
  }
  if (command == "!metrics") {
    // The full Prometheus exposition as one event — the same bytes
    // GET /metrics serves, wrapped for the NDJSON transport.
    sink("{\"type\":\"metrics\",\"exposition\":\"" +
         JsonEscape(service_->metrics().RenderPrometheusText()) + "\"}");
    return Status::OK();
  }
  return usage("unknown command " + command +
               " (try !ingest, !replace, !remove, !save, !reload, "
               "!integrate, !generation, !stats, !metrics)");
}

Status ServeSession::RunIntegrate(const std::string& args,
                                  const EventSink& sink,
                                  core::ExecutionControl control) {
  integrate::IntegrationOptions options;
  std::istringstream stream(args);
  std::string token;
  while (stream >> token) {
    size_t eq = token.find('=');
    if (eq == std::string::npos) {
      Status status = Status::InvalidArgument(
          "expected key=value, got: " + token);
      EmitErrorEvent("integrate", status, sink);
      return status;
    }
    std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    if (key == "threshold") {
      options.threshold = std::atof(value.c_str());
    } else if (key == "min_linkage") {
      options.min_linkage = static_cast<size_t>(std::atol(value.c_str()));
    } else if (key == "severity") {
      auto severity = integrate::ParseSeverity(value);
      if (!severity.ok()) {
        EmitErrorEvent("integrate", severity.status(), sink);
        return severity.status();
      }
      options.min_severity = *severity;
    } else if (key == "strong") {
      options.strong_confidence = std::atof(value.c_str());
    } else if (key == "probable") {
      options.probable_confidence = std::atof(value.c_str());
    } else if (key == "seed") {
      options.seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else {
      Status status = Status::InvalidArgument("unknown integrate key: " + key);
      EmitErrorEvent("integrate", status, sink);
      return status;
    }
  }
  obs::TraceContext trace;
  const bool traced = options_.trace_events && control.trace == nullptr;
  if (traced) control.trace = &trace;
  options.control = std::move(control);

  NdjsonIntegrationObserver observer(sink);
  integrate::IntegrationEngine engine(service_);
  auto result = engine.Integrate(options, &observer);
  if (traced) EmitTraceEvent("integrate", trace, sink);
  if (!result.ok()) {
    EmitErrorEvent("integrate", result.status(), sink);
    return result.status();
  }
  // Interrupted runs already reported their typed partial through the
  // "mediated" event's status field; they are not transport errors.
  return Status::OK();
}

void ServeSession::HandleLine(const std::string& raw, const EventSink& sink,
                              core::ExecutionControl control) {
  std::string line = raw;
  size_t hash = line.find('#');
  if (hash != std::string::npos) line.resize(hash);
  size_t first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos) return;
  if (line[first] == '!') {
    RunCommand(line.substr(first), sink, std::move(control));
    return;
  }
  size_t index = next_query_index_.fetch_add(1, std::memory_order_relaxed);
  auto query = ParseQuery(line, index);
  if (!query.ok()) {
    EmitErrorEvent("q" + std::to_string(index), query.status(), sink);
    return;
  }
  RunQuery(*query, sink, std::move(control));
}

void ServeSession::EmitDoneEvent(const std::string& id,
                                 const Result<core::MatchResult>& result,
                                 double elapsed_ms, const EventSink& sink) {
  if (!result.ok()) {
    EmitErrorEvent(id, result.status(), sink);
    return;
  }
  const core::MatchStats& stats = result->stats;
  char nums[256];
  // "mappings" counts everything with Δ ≥ δ found by the run — it matches
  // the `match` command's count and the number of mapping event lines;
  // "kept" is the returned list after top-N trimming.
  std::snprintf(
      nums, sizeof(nums),
      "\",\"mappings\":%zu,\"kept\":%zu,\"partial_mappings\":%zu,"
      "\"clusters\":%zu,\"useful\":%zu,\"ms\":%.3f}",
      stats.num_mappings, result->mappings.size(),
      result->partial_mappings.size(), stats.num_clusters,
      stats.num_useful_clusters, elapsed_ms);
  sink("{\"type\":\"done\",\"id\":\"" + JsonEscape(id) + "\",\"status\":\"" +
       std::string(core::ExecutionStatusName(result->execution)) + nums);
}

void ServeSession::EmitGenerationEvent(const live::ApplyReport& report,
                                       const EventSink& sink) {
  char nums[320];
  std::snprintf(
      nums, sizeof(nums),
      "{\"type\":\"generation\",\"generation\":%llu,"
      "\"fingerprint\":\"%016llx\",\"trees\":%zu,\"trees_reused\":%zu,"
      "\"trees_rebuilt\":%zu,\"names_copied\":%zu,\"names_computed\":%zu,"
      "\"build_ms\":%.3f}",
      static_cast<unsigned long long>(report.generation),
      static_cast<unsigned long long>(report.fingerprint), report.trees_total,
      report.trees_reused, report.trees_rebuilt, report.name_entries_copied,
      report.name_entries_computed, 1e3 * report.build_seconds);
  sink(nums);
}

void ServeSession::EmitErrorEvent(const std::string& id, const Status& status,
                                  const EventSink& sink) {
  // lower_snake_case code names ("not_found", "io_error") — a stable
  // machine-readable vocabulary, unlike the human ToString prefix.
  std::string_view camel = StatusCodeToString(status.code());
  std::string code;
  for (size_t i = 0; i < camel.size(); ++i) {
    unsigned char c = camel[i];
    bool boundary =
        i > 0 && std::isupper(c) &&
        (std::islower(static_cast<unsigned char>(camel[i - 1])) ||
         (i + 1 < camel.size() &&
          std::islower(static_cast<unsigned char>(camel[i + 1]))));
    if (boundary) code += '_';
    code += static_cast<char>(std::tolower(c));
  }
  std::string line = "{\"type\":\"error\"";
  if (!id.empty()) line += ",\"id\":\"" + JsonEscape(id) + "\"";
  line += ",\"code\":\"" + code + "\",\"message\":\"" +
          JsonEscape(status.ToString()) + "\"}";
  sink(line);
}

void ServeSession::EmitStatsEvent(const EventSink& sink) const {
  ServiceStats stats = service_->stats();
  // Durability counters live in the registry (the manager increments the
  // handles directly); reading them back here keeps every surface on the
  // same numbers.
  obs::LabelSet labels;
  if (!service_->options().metrics_tenant.empty()) {
    labels.push_back({"tenant", service_->options().metrics_tenant});
  }
  const obs::MetricsRegistry& metrics = service_->metrics();
  char nums[768];
  std::snprintf(
      nums, sizeof(nums),
      "{\"type\":\"stats\",\"generation\":%llu,\"deltas_applied\":%llu,"
      "\"queries\":%llu,\"batches\":%llu,\"cancelled\":%llu,"
      "\"deadline_exceeded\":%llu,\"early_stopped\":%llu,"
      "\"slow_queries\":%llu,"
      "\"cache_hits\":%llu,\"cache_shared\":%llu,\"cache_misses\":%llu,"
      "\"cache_evictions\":%llu,\"cache_entries\":%zu,"
      "\"cache_namespaces\":%zu,\"wal_appends\":%llu,"
      "\"wal_compactions\":%llu,\"snapshot_saves\":%llu}",
      static_cast<unsigned long long>(stats.generation),
      static_cast<unsigned long long>(stats.deltas_applied),
      static_cast<unsigned long long>(stats.queries),
      static_cast<unsigned long long>(stats.batches),
      static_cast<unsigned long long>(stats.cancelled),
      static_cast<unsigned long long>(stats.deadline_exceeded),
      static_cast<unsigned long long>(stats.early_stopped),
      static_cast<unsigned long long>(stats.slow_queries),
      static_cast<unsigned long long>(stats.cache.hits),
      static_cast<unsigned long long>(stats.cache.shared),
      static_cast<unsigned long long>(stats.cache.misses),
      static_cast<unsigned long long>(stats.cache.evictions),
      stats.cache.entries, stats.cache_namespaces,
      static_cast<unsigned long long>(
          metrics.CounterValue("xsm_wal_appends_total", labels)),
      static_cast<unsigned long long>(
          metrics.CounterValue("xsm_wal_compactions_total", labels)),
      static_cast<unsigned long long>(
          metrics.CounterValue("xsm_snapshot_saves_total", labels)));
  sink(nums);
}

void ServeSession::EmitTraceEvent(const std::string& id,
                                  const obs::TraceContext& trace,
                                  const EventSink& sink) {
  std::string line = "{\"type\":\"trace\",\"id\":\"" + JsonEscape(id) +
                     "\",\"spans\":[";
  const std::vector<obs::TraceSpan> spans = trace.spans();
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) line += ',';
    char nums[96];
    std::snprintf(nums, sizeof(nums), "\",\"start_ms\":%.3f,\"ms\":%.3f}",
                  spans[i].start_ms, spans[i].duration_ms);
    line += "{\"name\":\"" + JsonEscape(spans[i].name) + "\",\"note\":\"" +
            JsonEscape(spans[i].note) + nums;
  }
  line += "]}";
  sink(line);
}

}  // namespace xsm::service
