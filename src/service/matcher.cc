#include "service/matcher.h"

#include <utility>

#include "util/random.h"

namespace xsm::service {

Result<MatchRequest> MatchRequestBuilder::Build() const {
  if (request_.personal.empty()) {
    return Status::InvalidArgument("personal schema is empty");
  }
  XSM_RETURN_NOT_OK(request_.personal.Validate());
  const core::MatchOptions& options = request_.options;
  if (options.delta < 0.0 || options.delta > 1.0) {
    return Status::InvalidArgument("delta must be in [0,1]");
  }
  if (options.element.threshold < 0.0 || options.element.threshold > 1.0) {
    return Status::InvalidArgument("threshold must be in [0,1]");
  }
  XSM_RETURN_NOT_OK(options.objective.Validate());
  if (options.clustering == core::ClusteringMode::kKMeans) {
    XSM_RETURN_NOT_OK(options.kmeans.Validate());
  }
  return request_;
}

core::MatchOptions EffectiveRequestOptions(
    const MatchRequest& request, const EffectiveOptionsPolicy& policy) {
  core::MatchOptions effective = request.options;
  const bool randomized =
      effective.clustering == core::ClusteringMode::kKMeans &&
      effective.kmeans.init != cluster::CentroidInit::kMinSet;
  if (policy.derive_seeds && randomized) {
    effective.kmeans.seed = SeedForQuery(policy.base_seed, request.id);
  }
  // A request-supplied element.control is dropped, not honored: cached
  // cluster-state builds must always run to completion — a cancelled build
  // would fail every concurrent request sharing it in-flight (the cache key
  // excludes control on purpose). Cancellation and deadlines bound the
  // generation phase through the RunOn control instead.
  effective.element.control = nullptr;
  return effective;
}

std::vector<ShardDescriptor> Matcher::Shards() const {
  RepositoryPinPtr pin = Pin();
  ShardDescriptor shard;
  shard.shard = 0;
  shard.generation = pin->generation();
  shard.fingerprint = pin->fingerprint();
  shard.trees = pin->num_trees();
  shard.nodes = pin->total_nodes();
  shard.first_tree = 0;
  return {shard};
}

Result<MatchOutcome> Matcher::Run(const MatchRequest& request,
                                  const core::ExecutionControl& control,
                                  core::MatchObserver* observer) {
  RepositoryPinPtr pin = Pin();
  MatchOutcome outcome;
  outcome.generation = pin->generation();
  outcome.fingerprint = pin->fingerprint();
  XSM_ASSIGN_OR_RETURN(outcome.result, RunOn(pin, request, control, observer));
  return outcome;
}

}  // namespace xsm::service
