#include "service/match_service.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <utility>

#include "obs/trace.h"
#include "store/snapshot_store.h"
#include "util/random.h"
#include "util/timer.h"

namespace xsm::service {

namespace {

void AppendFormat(std::string* out, const char* fmt, ...) {
  char buf[128];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->append(buf);
}

/// Appends a string length-prefixed, so names containing the fingerprint's
/// own delimiters (':' is legal in XML names) cannot make two different
/// schemas serialize to one key.
void AppendString(std::string* out, const std::string& s) {
  AppendFormat(out, "%zu=", s.size());
  out->append(s);
}

/// Canonical serialization of the personal schema: every structural and
/// property bit that can influence element matching.
void AppendTreeFingerprint(const schema::SchemaTree& tree, std::string* out) {
  for (schema::NodeId n = 0; n < static_cast<schema::NodeId>(tree.size());
       ++n) {
    const schema::NodeProperties& props = tree.props(n);
    AppendFormat(out, "%d:", tree.parent(n));
    AppendString(out, props.name);
    AppendFormat(out, ":%d:", static_cast<int>(props.kind));
    AppendString(out, props.datatype);
    AppendFormat(out, ":%d%d;", props.repeatable ? 1 : 0,
                 props.optional ? 1 : 0);
  }
}

void AppendStateOptionsFingerprint(const core::ClusterStateOptions& options,
                                   std::string* out) {
  // Element matching stage. A custom matcher is identified by address: two
  // queries share a cache entry only when they pass the same instance. The
  // execution-plumbing fields (dictionary, pool, shards, control) are
  // deliberately absent: they never change the result.
  AppendFormat(out, "|el:%.17g:%d:%p", options.element.threshold,
               options.element.match_attributes ? 1 : 0,
               static_cast<const void*>(options.element.matcher));

  if (options.clustering == core::ClusteringMode::kTreeClusters) {
    out->append("|tree");  // the baseline ignores every k-means knob
    return;
  }
  const cluster::KMeansOptions& km = options.kmeans;
  AppendFormat(out, "|km:%d:%zu", static_cast<int>(km.init),
               km.num_centroids);
  AppendFormat(out, ":%d:%d", km.join_reclustering ? km.join_distance : -1,
               km.remove_reclustering
                   ? static_cast<int>(km.min_cluster_size)
                   : -1);
  AppendFormat(out, ":%zu:%d:%.17g", km.max_cluster_size,
               static_cast<int>(km.distance), km.name_weight);
  AppendFormat(out, ":%.17g:%d", km.convergence_fraction, km.max_iterations);
  // The seed only feeds the randomized initializations; normalizing it to 0
  // for kMinSet lets per-query derived seeds share one cache entry in the
  // common deterministic case.
  uint64_t effective_seed =
      km.init == cluster::CentroidInit::kMinSet ? 0 : km.seed;
  AppendFormat(out, ":%" PRIu64, effective_seed);
}

}  // namespace

std::string BuildClusterStateKey(const schema::SchemaTree& personal,
                                 const core::ClusterStateOptions& options) {
  std::string key;
  key.reserve(256);
  AppendTreeFingerprint(personal, &key);
  AppendStateOptionsFingerprint(options, &key);
  return key;
}

Result<std::unique_ptr<MatchService>> MatchService::Create(
    schema::SchemaForest repository, const MatchServiceOptions& options) {
  XSM_ASSIGN_OR_RETURN(std::shared_ptr<const RepositorySnapshot> snapshot,
                       RepositorySnapshot::Create(std::move(repository)));
  return std::make_unique<MatchService>(std::move(snapshot), options);
}

Result<std::unique_ptr<MatchService>> MatchService::WarmStart(
    const std::string& path, const MatchServiceOptions& options) {
  XSM_ASSIGN_OR_RETURN(std::shared_ptr<const RepositorySnapshot> snapshot,
                       store::LoadSnapshotFromFile(path));
  return std::make_unique<MatchService>(std::move(snapshot), options);
}

Result<std::unique_ptr<MatchService>> MatchService::Recover(
    util::io::Env* env, const std::string& snapshot_path,
    const std::string& wal_path, const MatchServiceOptions& options,
    live::RecoveryReport* report) {
  XSM_ASSIGN_OR_RETURN(
      std::unique_ptr<live::RepositoryManager> manager,
      live::RepositoryManager::Recover(env, snapshot_path, wal_path, report));
  return std::make_unique<MatchService>(std::move(manager), options);
}

MatchService::MatchService(std::shared_ptr<const RepositorySnapshot> snapshot,
                           const MatchServiceOptions& options)
    : MatchService(
          std::make_unique<live::RepositoryManager>(std::move(snapshot)),
          options) {}

MatchService::MatchService(std::unique_ptr<live::RepositoryManager> manager,
                           const MatchServiceOptions& options)
    : manager_(std::move(manager)),
      options_(options),
      pool_(options.num_threads == 0 ? ThreadPool::DefaultThreadCount()
                                     : options.num_threads) {
  if (options.matching_threads > 0) {
    matching_pool_ = std::make_unique<ThreadPool>(options.matching_threads);
  }

  // Metric series: registered once, incremented lock-free ever after.
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  obs::LabelSet labels;
  if (!options_.metrics_tenant.empty()) {
    labels.push_back({"tenant", options_.metrics_tenant});
  }
  queries_ = metrics_->RegisterCounter(
      "xsm_queries_total", "Match() calls (batch members included)", labels);
  batches_ = metrics_->RegisterCounter("xsm_batches_total",
                                       "MatchBatch() calls", labels);
  cancelled_ = metrics_->RegisterCounter(
      "xsm_queries_cancelled_total", "queries stopped by cancellation",
      labels);
  deadline_exceeded_ = metrics_->RegisterCounter(
      "xsm_queries_deadline_exceeded_total",
      "queries stopped by their wall-clock deadline", labels);
  early_stopped_ = metrics_->RegisterCounter(
      "xsm_queries_early_stopped_total",
      "queries stopped by their mapping budget", labels);
  deltas_applied_ = metrics_->RegisterCounter(
      "xsm_deltas_applied_total", "successful ApplyDelta publications",
      labels);
  slow_queries_ = metrics_->RegisterCounter(
      "xsm_slow_queries_total",
      "queries slower than the configured slow-query threshold", labels);
  query_latency_ms_ = metrics_->RegisterHistogram(
      "xsm_query_duration_ms", "wall-clock query latency in milliseconds",
      obs::DefaultLatencyBoundsMs(), labels);

  // Cache and generation tallies live in their own structures (per-
  // namespace counters, the manager's chain); this hook mirrors them into
  // registry series at scrape time, so `/metrics` and stats() read the
  // same numbers by construction.
  obs::Counter* cache_hits = metrics_->RegisterCounter(
      "xsm_cluster_cache_hits_total", "cluster-state cache hits", labels);
  obs::Counter* cache_shared = metrics_->RegisterCounter(
      "xsm_cluster_cache_shared_total",
      "cluster-state builds shared with a concurrent query", labels);
  obs::Counter* cache_misses = metrics_->RegisterCounter(
      "xsm_cluster_cache_misses_total", "cluster-state cache misses",
      labels);
  obs::Counter* cache_evictions = metrics_->RegisterCounter(
      "xsm_cluster_cache_evictions_total",
      "cluster states dropped by the LRU policy", labels);
  obs::Gauge* cache_entries = metrics_->RegisterGauge(
      "xsm_cluster_cache_entries", "resident cluster states", labels);
  obs::Gauge* cache_namespaces = metrics_->RegisterGauge(
      "xsm_cluster_cache_namespaces",
      "retained per-fingerprint cache namespaces", labels);
  obs::Gauge* generation = metrics_->RegisterGauge(
      "xsm_repository_generation", "current repository generation", labels);
  // Durability events (WAL appends, checkpoint compactions, snapshot
  // saves) are counted by the manager itself via these handles.
  live::ManagerMetrics manager_metrics;
  manager_metrics.wal_appends = metrics_->RegisterCounter(
      "xsm_wal_appends_total", "deltas journaled and fsynced before publish",
      labels);
  manager_metrics.wal_compactions = metrics_->RegisterCounter(
      "xsm_wal_compactions_total",
      "journal compactions after a durable checkpoint", labels);
  manager_metrics.snapshot_saves = metrics_->RegisterCounter(
      "xsm_snapshot_saves_total", "snapshots persisted to disk", labels);
  manager_->SetMetrics(manager_metrics);

  scrape_hook_id_ = metrics_->AddScrapeHook([this, cache_hits, cache_shared,
                                             cache_misses, cache_evictions,
                                             cache_entries, cache_namespaces,
                                             generation]() {
    ServiceStats s = stats();
    cache_hits->Set(s.cache.hits);
    cache_shared->Set(s.cache.shared);
    cache_misses->Set(s.cache.misses);
    cache_evictions->Set(s.cache.evictions);
    cache_entries->Set(static_cast<double>(s.cache.entries));
    cache_namespaces->Set(static_cast<double>(s.cache_namespaces));
    generation->Set(static_cast<double>(s.generation));
  });

  // Materialize the initial generation's cache namespace so the first
  // queries don't race to create it.
  CacheFor(manager_->Current()->fingerprint(), /*enforce_retention=*/true);
}

MatchService::~MatchService() {
  // The scrape hook captures `this`; detach it before members go away.
  metrics_->RemoveScrapeHook(scrape_hook_id_);
}

core::MatchOptions MatchService::EffectiveOptions(
    const MatchQuery& query) const {
  return EffectiveOptionsFor(query, *manager_->Current());
}

core::MatchOptions MatchService::EffectiveOptionsFor(
    const MatchQuery& query, const RepositorySnapshot& snapshot) const {
  // The pure, backend-independent part (seed derivation + control strip)
  // lives in EffectiveRequestOptions so every surface reporting effective
  // options computes them the same way.
  core::MatchOptions effective = EffectiveRequestOptions(
      query, {options_.base_seed, options_.derive_seeds});
  // Element-matching execution plumbing. Results never depend on these (the
  // engine is bit-identical with or without them), so the cluster-state key
  // ignores them and cached states stay shareable across configurations.
  if (effective.element.dictionary == nullptr) {
    effective.element.dictionary = &snapshot.name_dictionary();
  }
  if (effective.element.pool == nullptr && matching_pool_ != nullptr) {
    effective.element.pool = matching_pool_.get();
  }
  return effective;
}

std::string MatchService::ClusterStateKey(const MatchQuery& query) const {
  return BuildClusterStateKey(
      query.personal, core::ClusterStateOptions::From(EffectiveOptions(query)));
}

core::ExecutionControl MatchService::ResolveControl(
    core::ExecutionControl control) const {
  if (!control.deadline.has_value() && options_.default_deadline_seconds > 0) {
    control.deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(options_.default_deadline_seconds));
  }
  return control;
}

namespace {

/// Pins handed to this backend must be its own snapshots; a pin from a
/// different backend (or a null one) is a caller bug surfaced as
/// InvalidArgument instead of undefined behaviour.
Result<std::shared_ptr<const RepositorySnapshot>> AsSnapshot(
    const RepositoryPinPtr& pin) {
  auto snapshot = std::dynamic_pointer_cast<const RepositorySnapshot>(pin);
  if (snapshot == nullptr) {
    return Status::InvalidArgument(
        "pin does not come from this backend's chain");
  }
  return snapshot;
}

}  // namespace

Result<core::MatchResult> MatchService::RunOn(
    const RepositoryPinPtr& pin, const MatchRequest& request,
    const core::ExecutionControl& control, core::MatchObserver* observer) {
  XSM_ASSIGN_OR_RETURN(std::shared_ptr<const RepositorySnapshot> snapshot,
                       AsSnapshot(pin));
  return MatchOnSnapshot(snapshot, request, control, observer);
}

MatchHandle MatchService::Submit(RepositoryPinPtr pin, MatchRequest request,
                                 core::ExecutionControl control,
                                 core::MatchObserver* observer) {
  Result<std::shared_ptr<const RepositorySnapshot>> snapshot =
      AsSnapshot(pin);
  if (!snapshot.ok()) {
    std::promise<Result<core::MatchResult>> failed;
    failed.set_value(snapshot.status());
    return MatchHandle(core::CancelToken(), failed.get_future());
  }
  return SubmitMatchOn(std::move(snapshot.value()), std::move(request),
                       std::move(control), observer);
}

Result<ClusterStatePtr> MatchService::ClusterStateFor(
    const RepositoryPinPtr& pin, const MatchRequest& request) {
  XSM_ASSIGN_OR_RETURN(std::shared_ptr<const RepositorySnapshot> snapshot,
                       AsSnapshot(pin));
  return ClusterStateOn(snapshot, request);
}

Result<core::MatchResult> MatchService::Match(const MatchQuery& query) {
  return Match(query, core::ExecutionControl(), nullptr);
}

Result<core::MatchResult> MatchService::Match(
    const MatchQuery& query, const core::ExecutionControl& control,
    core::MatchObserver* observer) {
  return MatchOnSnapshot(manager_->Current(), query, control, observer);
}

Result<core::MatchResult> MatchService::MatchOnSnapshot(
    const std::shared_ptr<const RepositorySnapshot>& snapshot,
    const MatchQuery& query, const core::ExecutionControl& control,
    core::MatchObserver* observer) {
  queries_->Increment();
  // Latency instrumentation (histogram + slow-query accounting) is the
  // per-query work enable_metrics == false strips, giving benchmarks an
  // uninstrumented baseline.
  const bool instrument = options_.enable_metrics;
  Timer latency_timer;
  auto record_latency = [&]() {
    if (!instrument) return;
    const double elapsed_ms = latency_timer.ElapsedSeconds() * 1e3;
    query_latency_ms_->Observe(elapsed_ms);
    if (options_.slow_query_ms > 0 && elapsed_ms >= options_.slow_query_ms) {
      slow_queries_->Increment();
    }
  };
  core::MatchOptions effective = EffectiveOptionsFor(query, *snapshot);
  // Reject invalid generation options up front (mirroring Bellflower::Match)
  // so a bad query cannot pay for — or cache — a cluster-state build.
  XSM_RETURN_NOT_OK(effective.objective.Validate());
  if (effective.delta < 0.0 || effective.delta > 1.0) {
    return Status::InvalidArgument("delta must be in [0,1]");
  }
  core::ExecutionControl resolved = ResolveControl(control);

  // A query that is already cancelled / past its deadline pays for nothing.
  core::ExecutionMonitor pre(resolved);
  if (pre.ShouldStop()) {
    core::MatchResult result;
    result.stats.repository_nodes = snapshot->forest().total_nodes();
    result.stats.repository_trees = snapshot->forest().num_trees();
    result.execution = pre.status();
    CountTerminal(result.execution);
    if (observer != nullptr) observer->OnFinish(result);
    record_latency();
    return result;
  }

  // The cache namespace is the snapshot's fingerprint: a state built for
  // one repository content can only ever serve that content, whatever
  // generations come and go while this query runs.
  std::shared_ptr<ClusterIndexCache> cache =
      CacheFor(snapshot->fingerprint());

  // The factory deliberately ignores `resolved`: a cluster-state build that
  // starts always completes, so the cache only ever holds fully built
  // entries and concurrent queries sharing the in-flight build are never
  // failed by someone else's cancellation. The control is re-checked at the
  // top of the generation phase, so an expired query still stops promptly.
  core::ClusterStateOptions state_options =
      core::ClusterStateOptions::From(effective);
  const core::Bellflower& matcher = snapshot->matcher();
  // Trace-only control for the build: cancellation/deadline stay stripped
  // (a started build must complete — see EffectiveOptionsFor), but spans
  // from a build this query runs itself land in its trace.
  core::ExecutionControl build_control;
  build_control.trace = resolved.trace;
  ClusterStatePtr state;
  {
    obs::ScopedSpan cache_span(resolved.trace, "cluster_cache");
    ClusterIndexCache::Fetch fetch = ClusterIndexCache::Fetch::kMiss;
    XSM_ASSIGN_OR_RETURN(
        state,
        cache->GetOrCompute(
            BuildClusterStateKey(query.personal, state_options),
            [&]() {
              return matcher.BuildClusterState(query.personal, state_options,
                                               &build_control);
            },
            &fetch));
    if (resolved.trace != nullptr) {
      switch (fetch) {
        case ClusterIndexCache::Fetch::kHit:
          cache_span.set_note("hit");
          break;
        case ClusterIndexCache::Fetch::kShared:
          cache_span.set_note("shared");
          break;
        case ClusterIndexCache::Fetch::kMiss:
          cache_span.set_note("miss");
          break;
      }
    }
  }
  Result<core::MatchResult> run = matcher.MatchWithState(
      query.personal, *state, effective, resolved, observer);
  if (run.ok()) CountTerminal(run->execution);
  record_latency();
  return run;
}

Result<core::MatchResult> MatchService::MatchStreaming(
    const MatchQuery& query, core::MatchObserver* observer,
    const core::ExecutionControl& control) {
  return Match(query, control, observer);
}

MatchHandle MatchService::SubmitMatch(MatchQuery query,
                                      core::ExecutionControl control,
                                      core::MatchObserver* observer) {
  // Pin the snapshot at submission, not execution: the caller reasoned
  // about the repository that existed when it submitted, so a delta landing
  // while the query waits in the pool queue must not retarget it.
  return SubmitMatchOn(manager_->Current(), std::move(query),
                       std::move(control), observer);
}

MatchHandle MatchService::SubmitMatchOn(
    std::shared_ptr<const RepositorySnapshot> snapshot, MatchQuery query,
    core::ExecutionControl control, core::MatchObserver* observer) {
  // Resolve the default deadline now: time spent queued counts against it.
  control = ResolveControl(std::move(control));
  core::CancelToken token = control.cancel;
  // Pool queue wait is the admission-side span: it starts now and ends
  // when a worker picks the query up.
  const double submitted_ms =
      control.trace != nullptr ? control.trace->NowMs() : 0;
  std::future<Result<core::MatchResult>> future =
      pool_.Submit([this, snapshot = std::move(snapshot),
                    query = std::move(query), control = std::move(control),
                    submitted_ms, observer]() {
        if (control.trace != nullptr) {
          control.trace->AddSpan("queue_wait", "", submitted_ms,
                                 control.trace->NowMs() - submitted_ms);
        }
        return MatchOnSnapshot(snapshot, query, control, observer);
      });
  return MatchHandle(std::move(token), std::move(future));
}

BatchMatchResult MatchService::MatchBatch(std::vector<MatchQuery> queries) {
  return RunBatch(std::move(queries));
}

BatchMatchResult MatchService::RunBatch(std::vector<MatchRequest> queries) {
  batches_->Increment();
  // One pin for the whole batch: all members run against the same
  // generation, so the result set is internally consistent even when
  // deltas land mid-batch — and the result records which generation that
  // was, so provenance never has to race CurrentGeneration().
  std::shared_ptr<const RepositorySnapshot> snapshot = manager_->Current();
  BatchMatchResult batch;
  batch.generation = snapshot->generation();
  batch.fingerprint = snapshot->fingerprint();
  std::vector<std::future<Result<core::MatchResult>>> futures;
  futures.reserve(queries.size());
  for (MatchQuery& query : queries) {
    futures.push_back(
        pool_.Submit([this, snapshot, query = std::move(query)]() {
          return MatchOnSnapshot(snapshot, query, core::ExecutionControl(),
                                 nullptr);
        }));
  }
  batch.results.reserve(futures.size());
  for (auto& future : futures) {
    batch.results.push_back(future.get());
  }
  return batch;
}

Result<ClusterStatePtr> MatchService::ClusterStateOn(
    const std::shared_ptr<const RepositorySnapshot>& snapshot,
    const MatchQuery& query) {
  core::MatchOptions effective = EffectiveOptionsFor(query, *snapshot);
  core::ClusterStateOptions state_options =
      core::ClusterStateOptions::From(effective);
  std::shared_ptr<ClusterIndexCache> cache = CacheFor(snapshot->fingerprint());
  const core::Bellflower& matcher = snapshot->matcher();
  return cache->GetOrCompute(
      BuildClusterStateKey(query.personal, state_options), [&]() {
        return matcher.BuildClusterState(query.personal, state_options);
      });
}

Result<live::ApplyReport> MatchService::ApplyDelta(
    const live::RepositoryDelta& delta, obs::TraceContext* trace) {
  // One critical section across publication *and* cache registration:
  // the manager serializes concurrent Apply calls on its own, but without
  // this lock two ApplyDelta callers could register their namespaces in
  // the opposite order, leaving a superseded generation in the
  // most-recently-published slot and trimming the current one.
  std::lock_guard<std::mutex> lock(apply_mu_);
  XSM_ASSIGN_OR_RETURN(live::ApplyReport report,
                       manager_->Apply(delta, trace));
  deltas_applied_->Increment();
  // Materialize (or revive) the new generation's cache namespace and let
  // the retention policy retire the oldest ones.
  CacheFor(report.fingerprint, /*enforce_retention=*/true);
  return report;
}

std::shared_ptr<ClusterIndexCache> MatchService::CacheFor(
    uint64_t fingerprint, bool enforce_retention) {
  std::lock_guard<std::mutex> lock(caches_mu_);
  // `caches_` is ordered by publication recency (most recent last), and
  // only publication sites reorder: a query touch must not let a stale
  // straggler's namespace outrank — and later outlive — a recently
  // published generation's warm cache.
  std::shared_ptr<ClusterIndexCache> cache;
  for (size_t i = 0; i < caches_.size(); ++i) {
    if (caches_[i].fingerprint != fingerprint) continue;
    cache = caches_[i].cache;
    if (enforce_retention && i + 1 != caches_.size()) {
      // Re-published (e.g. a delta restored this content): move to back.
      CacheNamespace ns = std::move(caches_[i]);
      caches_.erase(caches_.begin() + static_cast<ptrdiff_t>(i));
      caches_.push_back(std::move(ns));
    }
    break;
  }
  if (cache == nullptr) {
    CacheNamespace ns;
    ns.fingerprint = fingerprint;
    ns.cache =
        std::make_shared<ClusterIndexCache>(options_.cluster_cache_capacity);
    cache = ns.cache;
    if (enforce_retention) {
      caches_.push_back(std::move(ns));
    } else {
      // Query-path creation (a query pinned to an already-retired
      // generation): least-retained position, first to be trimmed.
      caches_.insert(caches_.begin(), std::move(ns));
    }
  }
  if (enforce_retention) {
    const size_t limit = 1 + options_.cache_retained_generations;
    while (caches_.size() > limit) {
      // Retire the least recently used namespace, keeping its counters
      // (and counting its resident states as evictions) so stats() stays
      // cumulative. The namespace just touched sits at the back, so the
      // one being published is never the one retired.
      ClusterIndexCache::Stats dropped = caches_.front().cache->stats();
      retired_cache_stats_.hits += dropped.hits;
      retired_cache_stats_.shared += dropped.shared;
      retired_cache_stats_.misses += dropped.misses;
      retired_cache_stats_.evictions += dropped.evictions + dropped.entries;
      caches_.erase(caches_.begin());
    }
  }
  return cache;
}

void MatchService::ClearCache() {
  std::lock_guard<std::mutex> lock(caches_mu_);
  for (CacheNamespace& ns : caches_) {
    ns.cache->Clear();
  }
}

void MatchService::CountTerminal(core::ExecutionStatus status) {
  switch (status) {
    case core::ExecutionStatus::kCompleted:
      break;
    case core::ExecutionStatus::kCancelled:
      cancelled_->Increment();
      break;
    case core::ExecutionStatus::kDeadlineExceeded:
      deadline_exceeded_->Increment();
      break;
    case core::ExecutionStatus::kEarlyStopped:
      early_stopped_->Increment();
      break;
  }
}

ServiceStats MatchService::stats() const {
  ServiceStats s;
  s.queries = queries_->value();
  s.batches = batches_->value();
  s.cancelled = cancelled_->value();
  s.deadline_exceeded = deadline_exceeded_->value();
  s.early_stopped = early_stopped_->value();
  s.generation = manager_->CurrentGeneration();
  s.deltas_applied = deltas_applied_->value();
  s.slow_queries = slow_queries_->value();
  std::lock_guard<std::mutex> lock(caches_mu_);
  s.cache_namespaces = caches_.size();
  s.cache = retired_cache_stats_;
  for (const CacheNamespace& ns : caches_) {
    ClusterIndexCache::Stats live = ns.cache->stats();
    s.cache.hits += live.hits;
    s.cache.shared += live.shared;
    s.cache.misses += live.misses;
    s.cache.evictions += live.evictions;
    s.cache.entries += live.entries;
  }
  return s;
}

}  // namespace xsm::service
