// ServeSession: the transport-independent serving core shared by the CLI's
// stdin serve mode and the xsm::net HTTP front end. One session wraps one
// Matcher backend (single-snapshot or sharded) and exposes exactly the
// serve-mode surface — query lines
// ("SPEC [key=value ...]"), repository commands ("!ingest SPEC", "!remove
// ID", ...) and the NDJSON event vocabulary (mapping / cluster / done /
// error / generation / saved / stats / metrics / trace / slow_query /
// pair / mediated) — as plain functions over an
// EventSink, so the two transports cannot drift: stdin serve prints the
// sink's lines to stdout, the HTTP server frames them as response chunks,
// and both emit byte-identical events for the same input.
//
// Thread-safety: a session holds no mutable query state besides an id
// counter; RunQuery / RunCommand may be called from any number of threads
// concurrently (the HTTP server runs one call per worker). Each call's
// events go only to the sink passed to that call — per-connection sinks
// never interleave. HandleLine's automatic query numbering is the only
// cross-call state and is atomic.
#ifndef XSM_SERVICE_SERVE_SESSION_H_
#define XSM_SERVICE_SERVE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/execution_control.h"
#include "core/match_observer.h"
#include "integrate/integration_engine.h"
#include "obs/trace.h"
#include "repo/loader.h"
#include "service/matcher.h"
#include "util/status.h"
#include "util/timer.h"

namespace xsm::service {

/// Receives one complete NDJSON event line (no trailing newline) per call.
/// Called from the thread executing the query or command — for submitted
/// queries that is a service pool thread.
using EventSink = std::function<void(const std::string& line)>;

/// JSON string escaping for event payloads (quotes, backslashes, control
/// characters as \uXXXX).
std::string JsonEscape(const std::string& s);

/// Loads a forest from either a saved forest file or a directory of
/// .dtd/.xsd schemas (serve-mode !reload; CLI --repo-dir startup).
/// `report` (optional) receives the directory-load counters.
Result<schema::SchemaForest> LoadForestFromPath(const std::string& path,
                                                repo::LoadReport* report =
                                                    nullptr);

struct ServeSessionOptions {
  /// Defaults each query line's key=value pairs override.
  core::MatchOptions defaults;
  /// stop_after_n_mappings applied to every query whose control has none.
  uint64_t first_n = 0;
  /// Also emit one "cluster" event per generated cluster.
  bool cluster_events = false;
  /// Allow commands that touch the server's filesystem (!reload, !save).
  /// The HTTP front end turns this off: remote clients must not name
  /// arbitrary server paths; saving goes through the state-dir endpoint.
  bool allow_filesystem = true;
  /// Emit one "trace" event per query / mutation with the per-stage span
  /// breakdown (queue wait, cache outcome, dictionary scoring, ...). Field
  /// order is fixed, so suites can byte-compare modulo the timing values.
  /// Batch members stay untraced (one shared context would interleave
  /// their spans nondeterministically).
  bool trace_events = false;
};

/// Streams one query's run as NDJSON events into a sink. Event lines are
/// composed as strings — unbounded fields (query ids, mapping text) can
/// never truncate the JSON; fixed snprintf buffers only ever hold numeric
/// fields. Callbacks fire on the thread executing the query.
class NdjsonEventObserver : public core::MatchObserver {
 public:
  /// `personal` and `pin` must outlive the observer; `pin` is the
  /// generation the query is pinned to (its forest names the mapped trees).
  NdjsonEventObserver(
      const std::string& id, const schema::SchemaTree* personal,
      RepositoryPinPtr pin, const EventSink& sink, bool cluster_events);

  void OnMapping(const generate::SchemaMapping& mapping,
                 size_t running_rank) override;
  void OnClusterFinish(size_t sequence, size_t total,
                       const core::ClusterSummary& summary,
                       const core::MatchStats& so_far) override;
  void OnFinish(const core::MatchResult& result) override;

  double ElapsedMs() const { return timer_.ElapsedSeconds() * 1e3; }
  /// Submission-to-completion latency; falls back to the current elapsed
  /// time for runs that failed before finishing.
  double DoneMs() const {
    return finished_ms_ >= 0 ? finished_ms_ : ElapsedMs();
  }

 private:
  std::string id_;  // pre-escaped
  const schema::SchemaTree* personal_;
  RepositoryPinPtr pin_;
  const EventSink& sink_;
  bool cluster_events_;
  Timer timer_;
  double finished_ms_ = -1;
};

/// Streams an integration run as NDJSON events: one "pair" event per linked
/// schema pair, one "cluster" event per mediated element (rank order), and a
/// terminal "mediated" summary. Shared by the stdin serve, HTTP and CLI
/// surfaces, so their event streams are byte-identical for the same run
/// (modulo the "ms" field of the terminal event).
class NdjsonIntegrationObserver : public integrate::IntegrationObserver {
 public:
  explicit NdjsonIntegrationObserver(const EventSink& sink) : sink_(sink) {}

  void OnPair(const integrate::PairProgress& progress) override;
  void OnMediatedElement(
      size_t rank, const integrate::MediatedElement& element,
      const integrate::CorrespondenceCluster& cluster) override;
  void OnFinish(const integrate::IntegrationResult& result) override;

  double ElapsedMs() const { return timer_.ElapsedSeconds() * 1e3; }

  /// Member refs listed per cluster event before truncating to a count
  /// field — bounds event size against pathological chained clusters.
  static constexpr size_t kMaxMemberRefs = 64;

 private:
  const EventSink& sink_;
  Timer timer_;
};

class ServeSession {
 public:
  /// `service` must outlive the session. Any Matcher backend works — the
  /// session never looks behind the interface.
  ServeSession(Matcher* service, ServeSessionOptions options);

  Matcher* service() const { return service_; }
  const ServeSessionOptions& options() const { return options_; }

  /// Parses one query line of the serve/batch grammar:
  ///   SPEC [id=NAME] [delta=D] [top=N] [cluster=tree|kmeans] [join=J]
  ///        [threshold=T] [alpha=A]
  /// against the session defaults. `index` numbers the fallback id "q<i>".
  Result<MatchQuery> ParseQuery(const std::string& line, size_t index) const;

  /// Runs one query to completion, streaming mapping/cluster events to
  /// `sink` the moment they are found and finishing with one "done" (or
  /// "error") event. The query executes on the service pool; this call
  /// blocks until it resolves. `control`'s cancel token is honored
  /// throughout (the HTTP server wires client disconnect to it); the
  /// session first_n and the service default deadline fill in when
  /// `control` carries none.
  Result<core::MatchResult> RunQuery(
      const MatchQuery& query, const EventSink& sink,
      core::ExecutionControl control = core::ExecutionControl());

  /// Submits every query on the service pool, streams interleaved mapping
  /// events, then emits the done events in input order (the batch-mode
  /// contract). Returns the number of queries that failed with an error
  /// Status (interrupted runs — cancelled / deadline — are not errors).
  size_t RunBatch(const std::vector<MatchQuery>& queries,
                  const EventSink& sink,
                  core::ExecutionControl control = core::ExecutionControl());

  /// Handles one serve-mode '!' command line. Grammar:
  ///   !ingest SPEC [source=NAME]      add one tree
  ///   !replace ID SPEC [source=NAME]  swap tree ID's payload
  ///   !remove ID                      retire tree ID
  ///   !reload (FILE|DIR)              replace the whole repository
  ///   !save PATH                      persist the current snapshot
  ///   !integrate [key=value ...]      N-way integration (see RunIntegrate)
  ///   !generation                     report the current generation
  ///   !stats                          service counters as one event
  ///   !metrics                        Prometheus exposition as one event
  /// Every successful mutation emits one "generation" event; failures emit
  /// typed "error" events. Returns the command's status (already reported
  /// to the sink — callers only need it for transport-level mapping, e.g.
  /// the HTTP response code). `control` bounds long-running commands
  /// (currently !integrate); the default is unlimited.
  Status RunCommand(const std::string& line, const EventSink& sink,
                    core::ExecutionControl control = core::ExecutionControl());

  /// Runs a holistic N-way integration of the current snapshot (see
  /// integrate::IntegrationEngine), streaming pair / cluster events and a
  /// terminal "mediated" summary to `sink`. `args` is the option grammar
  ///   [threshold=T] [min_linkage=N] [severity=weak|probable|strong]
  ///   [strong=C] [probable=C] [seed=S]
  /// over integrate::IntegrationOptions defaults. `control`'s cancel token
  /// and deadline are honored between slices (the HTTP server wires client
  /// disconnect and admission deadlines to it); an interrupted run still
  /// emits its typed partial "mediated" event and returns OK — only option
  /// parse failures and engine errors are error Statuses (already reported
  /// to the sink as typed "error" events).
  Status RunIntegrate(const std::string& args, const EventSink& sink,
                      core::ExecutionControl control =
                          core::ExecutionControl());

  /// One stdin-serve iteration: strips '#' comments and whitespace, ignores
  /// blank lines, dispatches '!' lines to RunCommand and everything else
  /// through ParseQuery + RunQuery with an auto-incremented query index.
  void HandleLine(const std::string& line, const EventSink& sink,
                  core::ExecutionControl control = core::ExecutionControl());

  /// Emits the "done"/"error" terminal event for one finished query.
  /// Exposed for transports that submit queries themselves.
  static void EmitDoneEvent(const std::string& id,
                            const Result<core::MatchResult>& result,
                            double elapsed_ms, const EventSink& sink);

  /// Emits one "generation" event describing a published delta.
  static void EmitGenerationEvent(const live::ApplyReport& report,
                                  const EventSink& sink);

  /// Emits one typed "error" event: {"type":"error","code":...,
  /// "message":...} (+ "id" when non-empty). `code` is the lowercase
  /// StatusCode name, so transports can map it (e.g. to an HTTP status).
  static void EmitErrorEvent(const std::string& id, const Status& status,
                             const EventSink& sink);

  /// Emits the "stats" event RunCommand("!stats") produces; also used by
  /// the HTTP /stats endpoint so the two surfaces report identical fields.
  /// Every value is read back from the service (whose counters live in
  /// the metrics registry), so `!stats`, `/v1/stats` and `/metrics` agree.
  void EmitStatsEvent(const EventSink& sink) const;

  /// Emits one "trace" event: {"type":"trace","id":...,"spans":[{"name":
  /// ...,"note":...,"start_ms":...,"ms":...},...]}. Deterministic field
  /// order; only the two timing values vary between identical runs.
  static void EmitTraceEvent(const std::string& id,
                             const obs::TraceContext& trace,
                             const EventSink& sink);

 private:
  Matcher* service_;
  ServeSessionOptions options_;
  std::atomic<size_t> next_query_index_{0};
};

}  // namespace xsm::service

#endif  // XSM_SERVICE_SERVE_SESSION_H_
