// RepositorySnapshot: an immutable view of one loaded repository — the
// schema forest plus the structural index and matcher built over it, created
// once at load time and shared by every query. This is the service layer's
// unit of repository state: queries hold a shared_ptr<const ...> to the
// snapshot they run against, so a repository swap (live::RepositoryManager
// publishing a delta) never disturbs in-flight queries.
//
// Snapshots form generation chains: CreateSuccessor builds generation g+1
// from generation g by copy-on-write — trees the delta did not touch share
// their SchemaTree payload, TreeIndex labeling and NameDictionary per-name
// state with the predecessor; only touched trees are rebuilt. A successor
// is member-for-member equal to a snapshot built from scratch on the same
// forest (the live equivalence suite enforces this).
#ifndef XSM_SERVICE_REPOSITORY_SNAPSHOT_H_
#define XSM_SERVICE_REPOSITORY_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/bellflower.h"
#include "label/tree_index.h"
#include "match/name_dictionary.h"
#include "schema/schema_forest.h"
#include "service/repository_pin.h"
#include "util/status.h"

namespace xsm::service {

/// Content hash of one tree: structure + node properties, independent of the
/// tree's position in the forest (a tree keeps its fingerprint when removals
/// renumber it). Exposed so other repository representations (the sharded
/// backend's federated view) fingerprint content identically to snapshots.
uint64_t FingerprintTree(const schema::SchemaTree& tree);

/// Folds per-tree fingerprints (in TreeId order) into the forest-level
/// fingerprint exactly the way RepositorySnapshot does, so equal content
/// yields equal fingerprints across backends.
uint64_t CombineForestFingerprint(size_t num_trees, size_t total_nodes,
                                  const std::vector<uint64_t>& tree_fps);

/// Immutable repository + index + matcher. Never mutated after creation, so
/// a const reference may be used from any number of threads concurrently.
/// A snapshot is the single-backend RepositoryPin: MatchService::Pin()
/// returns its current snapshot directly.
class RepositorySnapshot : public RepositoryPin {
 public:
  /// How a snapshot came to be: what CreateSuccessor reused versus rebuilt
  /// (a from-scratch Create reports everything as rebuilt/computed).
  struct BuildStats {
    size_t trees_reused = 0;      ///< index + dictionary state shared
    size_t trees_rebuilt = 0;     ///< labeled and indexed from scratch
    size_t name_entries_copied = 0;    ///< folds/signatures carried over
    size_t name_entries_computed = 0;  ///< folds/signatures computed anew
  };

  /// Validates and freezes `forest`, building the forest index once.
  /// Heap-allocates the snapshot so the matcher's internal pointer into the
  /// forest stays valid for the snapshot's whole life. The snapshot is
  /// generation 0 of a fresh chain.
  static Result<std::shared_ptr<const RepositorySnapshot>> Create(
      schema::SchemaForest forest);

  /// Builds the next generation from `previous` by copy-on-write.
  /// `reuse_map[t]` names the tree of `previous` that new tree `t` is —
  /// certified by shared-payload pointer equality, which is rejected with
  /// InvalidArgument when violated — or -1 for an added/replaced tree.
  /// Shared trees reuse the predecessor's TreeIndex, NameDictionary state
  /// and per-tree fingerprint; only the rest is built.
  static Result<std::shared_ptr<const RepositorySnapshot>> CreateSuccessor(
      const std::shared_ptr<const RepositorySnapshot>& previous,
      schema::SchemaForest forest,
      const std::vector<schema::TreeId>& reuse_map);

  /// Store-assembly hook (store::DeserializeSnapshot): adopts components
  /// deserialized from a persisted snapshot instead of building them, so a
  /// warm start never re-labels or re-folds anything. Validates `forest`,
  /// requires `index`/`dictionary` to describe it (the dictionary is
  /// re-bound to the forest's final address), and recomputes the content
  /// fingerprints from the adopted forest: a mismatch with
  /// `expected_fingerprint` / `expected_tree_fingerprints` (the values read
  /// from the file) fails with Corruption, so a loaded snapshot provably
  /// carries the content that was saved. The snapshot resumes the saved
  /// chain at `generation` — CreateSuccessor continues from generation + 1.
  static Result<std::shared_ptr<const RepositorySnapshot>> FromParts(
      schema::SchemaForest forest, label::ForestIndex index,
      match::NameDictionary dictionary, uint64_t generation,
      uint64_t expected_fingerprint,
      const std::vector<uint64_t>& expected_tree_fingerprints);

  RepositorySnapshot(const RepositorySnapshot&) = delete;
  RepositorySnapshot& operator=(const RepositorySnapshot&) = delete;

  const schema::SchemaForest& forest() const override { return forest_; }
  const core::Bellflower& matcher() const { return *matcher_; }
  const label::ForestIndex& index() const { return matcher_->index(); }
  /// Deduplicated name table over the forest, built once here so every
  /// query's element-matching stage scores distinct names instead of nodes.
  const match::NameDictionary& name_dictionary() const { return name_dict_; }

  size_t num_trees() const { return forest_.num_trees(); }
  size_t total_nodes() const { return forest_.total_nodes(); }

  /// Position in the snapshot chain: 0 for Create, predecessor + 1 for
  /// CreateSuccessor. Identifies "which repository state" in logs and
  /// service stats; cache correctness keys on fingerprint(), not on this.
  uint64_t generation() const override { return generation_; }

  /// Content hash over every tree's structure and node properties;
  /// identifies the repository *content* (two snapshots with equal
  /// fingerprints hold equal forests, whatever their generations) and
  /// namespaces the service's cluster caches.
  uint64_t fingerprint() const override { return fingerprint_; }

  /// Content hash of one tree (independent of its TreeId, so a tree keeps
  /// its fingerprint when removals renumber it).
  uint64_t tree_fingerprint(schema::TreeId id) const override {
    return tree_fingerprints_[static_cast<size_t>(id)];
  }

  /// What this snapshot's construction reused versus rebuilt.
  const BuildStats& build_stats() const { return build_stats_; }

 private:
  explicit RepositorySnapshot(schema::SchemaForest forest);

  /// Successor path: adopts the incrementally built index/dictionary.
  RepositorySnapshot(schema::SchemaForest forest,
                     const RepositorySnapshot& previous,
                     const std::vector<schema::TreeId>& reuse_map);

  /// Warm-start path: adopts deserialized components (see FromParts).
  RepositorySnapshot(schema::SchemaForest forest, label::ForestIndex index,
                     match::NameDictionary dictionary, uint64_t generation);

  /// Combines the per-tree fingerprints (already filled in) into the
  /// forest-level fingerprint.
  void FinishFingerprint();

  schema::SchemaForest forest_;
  std::unique_ptr<core::Bellflower> matcher_;
  match::NameDictionary name_dict_;
  uint64_t generation_ = 0;
  uint64_t fingerprint_ = 0;
  std::vector<uint64_t> tree_fingerprints_;
  BuildStats build_stats_;
};

}  // namespace xsm::service

#endif  // XSM_SERVICE_REPOSITORY_SNAPSHOT_H_
