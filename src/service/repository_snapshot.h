// RepositorySnapshot: an immutable view of one loaded repository — the
// schema forest plus the structural index and matcher built over it, created
// once at load time and shared by every query. This is the service layer's
// unit of repository state: queries hold a shared_ptr<const ...> to the
// snapshot they run against, so a future repository reload can swap in a new
// snapshot without disturbing in-flight queries.
#ifndef XSM_SERVICE_REPOSITORY_SNAPSHOT_H_
#define XSM_SERVICE_REPOSITORY_SNAPSHOT_H_

#include <cstdint>
#include <memory>

#include "core/bellflower.h"
#include "label/tree_index.h"
#include "match/name_dictionary.h"
#include "schema/schema_forest.h"
#include "util/status.h"

namespace xsm::service {

/// Immutable repository + index + matcher. Never mutated after Create, so a
/// const reference may be used from any number of threads concurrently.
class RepositorySnapshot {
 public:
  /// Validates and freezes `forest`, building the forest index once.
  /// Heap-allocates the snapshot so the matcher's internal pointer into the
  /// forest stays valid for the snapshot's whole life.
  static Result<std::shared_ptr<const RepositorySnapshot>> Create(
      schema::SchemaForest forest);

  RepositorySnapshot(const RepositorySnapshot&) = delete;
  RepositorySnapshot& operator=(const RepositorySnapshot&) = delete;

  const schema::SchemaForest& forest() const { return forest_; }
  const core::Bellflower& matcher() const { return *matcher_; }
  const label::ForestIndex& index() const { return matcher_->index(); }
  /// Deduplicated name table over the forest, built once here so every
  /// query's element-matching stage scores distinct names instead of nodes.
  const match::NameDictionary& name_dictionary() const { return name_dict_; }

  size_t num_trees() const { return forest_.num_trees(); }
  size_t total_nodes() const { return forest_.total_nodes(); }

  /// Content hash over every tree's structure and node properties;
  /// identifies the snapshot in logs and namespaces persisted cache keys.
  uint64_t fingerprint() const { return fingerprint_; }

 private:
  explicit RepositorySnapshot(schema::SchemaForest forest);

  schema::SchemaForest forest_;
  std::unique_ptr<core::Bellflower> matcher_;
  match::NameDictionary name_dict_;
  uint64_t fingerprint_ = 0;
};

}  // namespace xsm::service

#endif  // XSM_SERVICE_REPOSITORY_SNAPSHOT_H_
