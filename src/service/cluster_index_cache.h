// ClusterIndexCache: a thread-safe LRU cache of immutable ClusterState
// (element matching + clustering output) keyed by a fingerprint of the
// personal schema and the clustering options. This is what amortizes the
// paper's preprocessing across queries: reclustering with the same
// (personal, k-means parameters) key is computed at most once — concurrent
// requests for a missing key share a single in-flight computation — and the
// resulting state is handed out as shared_ptr<const ...> for lock-free
// concurrent generation.
#ifndef XSM_SERVICE_CLUSTER_INDEX_CACHE_H_
#define XSM_SERVICE_CLUSTER_INDEX_CACHE_H_

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/bellflower.h"
#include "util/status.h"

namespace xsm::service {

/// Shareable handle to one immutable cluster state.
using ClusterStatePtr = std::shared_ptr<const core::ClusterState>;

class ClusterIndexCache {
 public:
  struct Stats {
    uint64_t hits = 0;       ///< served from a ready entry
    uint64_t shared = 0;     ///< waited on another thread's in-flight build
    uint64_t misses = 0;     ///< ran the factory
    uint64_t evictions = 0;  ///< ready entries dropped by the LRU policy
    size_t entries = 0;      ///< ready entries currently resident
  };

  using Factory = std::function<Result<core::ClusterState>()>;

  /// How one GetOrCompute was served (trace-span note material).
  enum class Fetch {
    kHit,     ///< ready entry
    kShared,  ///< waited on another thread's in-flight build
    kMiss,    ///< ran the factory
  };

  /// `capacity` is the maximum number of ready entries; 0 disables caching
  /// entirely (every GetOrCompute runs the factory).
  explicit ClusterIndexCache(size_t capacity) : capacity_(capacity) {}

  ClusterIndexCache(const ClusterIndexCache&) = delete;
  ClusterIndexCache& operator=(const ClusterIndexCache&) = delete;

  /// Returns the state cached under `key`, or runs `factory` to build it.
  /// Concurrent calls with the same missing key run the factory exactly
  /// once; the others block until it finishes. A failed factory propagates
  /// its Status to every waiter and leaves no entry behind (the next call
  /// retries). `fetch` (optional) reports how this call was served.
  Result<ClusterStatePtr> GetOrCompute(const std::string& key,
                                       const Factory& factory,
                                       Fetch* fetch = nullptr);

  Stats stats() const;
  size_t capacity() const { return capacity_; }

  /// Drops all ready entries (in-flight builds are unaffected; states
  /// already handed out stay alive through their shared_ptr).
  void Clear();

 private:
  struct Outcome {
    Status status;
    ClusterStatePtr state;  // non-null iff status.ok()
  };
  struct Slot {
    std::shared_future<Outcome> future;
    bool ready = false;
    std::list<std::string>::iterator lru_it;  // valid iff ready
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Slot> slots_;
  /// Ready keys, most recently used first.
  std::list<std::string> lru_;
  Stats stats_;
};

}  // namespace xsm::service

#endif  // XSM_SERVICE_CLUSTER_INDEX_CACHE_H_
