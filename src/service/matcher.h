// Matcher: the one calling surface every matching backend implements.
//
// Historically callers bound to five overlapping MatchService entry points
// (Match / Match+control / MatchStreaming / SubmitMatch / MatchBatch), which
// made the service the only possible backend. This header is the redesigned
// contract: a backend takes one MatchRequest in and produces one MatchOutcome
// (streaming progress through the same MatchObserver as before), against an
// explicit RepositoryPin so the caller and the engine provably see the same
// repository generation. Both the single-snapshot MatchService and the
// scatter-gather shard::ShardedMatchService implement it, so ServeSession,
// the HTTP endpoints, the CLI and the IntegrationEngine are backend-agnostic.
//
//   Result<MatchOutcome> out = matcher->Run(request);            // terminal
//   MatchHandle h = matcher->Submit(matcher->Pin(), request);    // async
//   matcher->RunOn(pin, request, control, &observer);            // streaming
//
// The historical MatchService entry points still exist as thin deprecated
// wrappers over this surface.
#ifndef XSM_SERVICE_MATCHER_H_
#define XSM_SERVICE_MATCHER_H_

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/bellflower.h"
#include "core/execution_control.h"
#include "core/match_observer.h"
#include "live/repository_delta.h"
#include "live/repository_manager.h"
#include "obs/metrics.h"
#include "schema/schema_tree.h"
#include "service/cluster_index_cache.h"
#include "service/repository_pin.h"
#include "store/snapshot_store.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace xsm::service {

/// One unit of service work: a personal schema plus the matching knobs.
struct MatchRequest {
  /// Stable identity of the request. Labels results and — for randomized
  /// clustering initializations — seeds the per-query RNG, so re-running a
  /// request with the same id reproduces its result exactly regardless of
  /// concurrency (see MatchServiceOptions::derive_seeds).
  std::string id;
  schema::SchemaTree personal;
  core::MatchOptions options;
};

/// Historical name; MatchQuery and MatchRequest are the same type.
/// Deprecated: new code should say MatchRequest.
using MatchQuery = MatchRequest;

/// Validated construction of a MatchRequest: setters collect the knobs that
/// used to be poked loose into MatchQuery fields by every serving layer, and
/// Build() runs the complete validation (previously scattered across
/// ParseQuery, MatchService and Bellflower) once, up front. A request that
/// Build() returns is accepted by every backend.
class MatchRequestBuilder {
 public:
  MatchRequestBuilder& id(std::string id) {
    request_.id = std::move(id);
    return *this;
  }
  MatchRequestBuilder& personal(schema::SchemaTree personal) {
    request_.personal = std::move(personal);
    return *this;
  }
  /// Adopts a full options block (defaults for a serving layer), on top of
  /// which the knob setters below apply.
  MatchRequestBuilder& options(const core::MatchOptions& options) {
    request_.options = options;
    return *this;
  }
  MatchRequestBuilder& delta(double delta) {
    request_.options.delta = delta;
    return *this;
  }
  MatchRequestBuilder& top_n(size_t top_n) {
    request_.options.top_n = top_n;
    return *this;
  }
  MatchRequestBuilder& threshold(double threshold) {
    request_.options.element.threshold = threshold;
    return *this;
  }
  MatchRequestBuilder& alpha(double alpha) {
    request_.options.objective.alpha = alpha;
    return *this;
  }
  MatchRequestBuilder& clustering(core::ClusteringMode mode) {
    request_.options.clustering = mode;
    return *this;
  }
  MatchRequestBuilder& join_reclustering(bool enabled) {
    request_.options.kmeans.join_reclustering = enabled;
    return *this;
  }
  MatchRequestBuilder& include_partial_mappings(bool enabled) {
    request_.options.include_partial_mappings = enabled;
    return *this;
  }

  /// Access to the request under construction (for knobs without setters).
  MatchRequest& request() { return request_; }

  /// Validates every field a backend would otherwise reject mid-flight:
  /// non-empty well-formed personal schema, δ and element threshold in
  /// [0,1], objective and k-means parameters. Returns the finished request
  /// by value; the builder may be reused afterwards.
  Result<MatchRequest> Build() const;

 private:
  MatchRequest request_;
};

struct MatchServiceOptions {
  /// Worker threads executing Submit / RunBatch work; 0 means
  /// ThreadPool::DefaultThreadCount().
  size_t num_threads = 0;
  /// Worker threads for the element-matching stage of cluster-state builds
  /// (dictionary shards; see match::ElementMatchingOptions::pool). A
  /// dedicated pool, separate from `num_threads`: queries executing on the
  /// main pool fan their matching out here, so they can never deadlock
  /// waiting on their own workers. 0 scores serially on the query's thread
  /// — the right default when the main pool already saturates the machine.
  size_t matching_threads = 0;
  /// Capacity of each cluster-state cache namespace in entries (distinct
  /// (personal schema, clustering options) keys); 0 disables caching.
  size_t cluster_cache_capacity = 64;
  /// Cluster caches are namespaced by snapshot fingerprint (repository
  /// content), so ApplyDelta can never let a stale cluster state serve a
  /// changed repository. This many *non-current* fingerprints' caches are
  /// retained alongside the current one: queries pinned to a recent
  /// generation stay warm across small deltas, and a delta that restores
  /// earlier content (equal fingerprint) gets its warm cache back.
  size_t cache_retained_generations = 1;
  /// Base seed mixed with request ids by SeedForQuery.
  uint64_t base_seed = 42;
  /// When a request's clustering consumes randomness (CentroidInit::kRandom
  /// / kFarthestFirst), replace its k-means seed with
  /// SeedForQuery(base_seed, request.id) so results are a pure function of
  /// the request, not of thread interleaving. The default kMinSet
  /// initialization is deterministic and ignores the seed, so those
  /// requests share cache entries across ids.
  bool derive_seeds = true;
  /// Per-query wall-clock deadline in seconds, applied to every request
  /// whose ExecutionControl carries no deadline of its own; 0 disables. The
  /// clock starts when the request is submitted (Submit) or executed
  /// (Run / RunBatch members), so pool queue wait counts against it. An
  /// expired request returns the mappings found so far with
  /// MatchResult::execution == kDeadlineExceeded.
  double default_deadline_seconds = 0;
  /// Registry this backend's metric series live in — shared across
  /// components (the HTTP front-end passes one registry to every tenant's
  /// backend) so one `/metrics` scrape covers the process. nullptr: the
  /// backend creates a private registry (metrics() exposes it either way).
  obs::MetricsRegistry* metrics = nullptr;
  /// Value of the `tenant` label on this backend's series; empty emits
  /// unlabeled series (single-tenant processes).
  std::string metrics_tenant;
  /// false disables the per-query instrumentation added beyond the
  /// historical counters — latency histogram, slow-query accounting —
  /// giving benchmarks an uninstrumented baseline to measure overhead
  /// against. Counters still work (they replaced equal-cost atomics).
  bool enable_metrics = true;
  /// Queries slower than this many wall-clock milliseconds count into
  /// xsm_slow_queries_total, and serving layers log them (ServeSession
  /// emits a "slow_query" NDJSON event). 0 disables.
  double slow_query_ms = 0;
};

/// The pure part of the "effective options" computation: what any backend
/// runs for `request` given only the seeding policy — per-request k-means
/// seed derivation for randomized initializations, and the removal of any
/// caller-supplied element.control (cached cluster-state builds must always
/// run to completion). Backends layer execution plumbing (the snapshot's
/// name dictionary, the matching pool) on top of this; that plumbing never
/// changes results, so `!stats`, HTTP and the CLI all report exactly the
/// options this function returns.
struct EffectiveOptionsPolicy {
  uint64_t base_seed = 42;
  bool derive_seeds = true;
};
core::MatchOptions EffectiveRequestOptions(const MatchRequest& request,
                                           const EffectiveOptionsPolicy& policy);

/// Result of one RunBatch call: the per-request results in input order plus
/// the provenance of the pin the whole batch ran against. Callers recording
/// where results came from (integration provenance, scatter-gather merges)
/// read the generation/fingerprint instead of racing CurrentGeneration()
/// against concurrent deltas.
struct BatchMatchResult {
  /// Generation number of the pin that served every batch member.
  uint64_t generation = 0;
  /// Content fingerprint of that pin.
  uint64_t fingerprint = 0;
  /// Per-request results, in input order.
  std::vector<Result<core::MatchResult>> results;
};

/// Terminal result of one Run call: the engine result plus the provenance
/// of the repository content that produced it.
struct MatchOutcome {
  core::MatchResult result;
  uint64_t generation = 0;
  uint64_t fingerprint = 0;
};

struct ServiceStats {
  uint64_t queries = 0;  ///< executed requests (batch members included)
  uint64_t batches = 0;  ///< RunBatch() calls
  // Queries cut short by execution control (terminal status != kCompleted).
  uint64_t cancelled = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t early_stopped = 0;
  // Evolving-repository state.
  uint64_t generation = 0;       ///< current repository generation
  uint64_t deltas_applied = 0;   ///< successful ApplyDelta calls
  /// Queries whose wall-clock time exceeded MatchServiceOptions::
  /// slow_query_ms (0 while that threshold is disabled).
  uint64_t slow_queries = 0;
  size_t cache_namespaces = 0;   ///< retained per-fingerprint caches
  /// Cluster-cache counters aggregated over every namespace this backend
  /// ever held (dropped namespaces' counters are folded in, and their
  /// resident entries at drop time count as evictions).
  ClusterIndexCache::Stats cache;
};

/// One shard of a backend's repository, as reported by Matcher::Shards().
/// The unsharded backend reports exactly one covering everything.
struct ShardDescriptor {
  size_t shard = 0;            ///< shard index in [0, K)
  uint64_t generation = 0;     ///< the shard's own generation chain position
  uint64_t fingerprint = 0;    ///< content fingerprint of the shard's forest
  size_t trees = 0;            ///< trees owned by this shard
  size_t nodes = 0;            ///< total nodes across those trees
  schema::TreeId first_tree = 0;  ///< first global TreeId the shard owns
};

/// Handle to one in-flight Submit request. Cancel() requests cooperative
/// cancellation — the request still resolves normally (Status-OK) with the
/// mappings found so far and execution == kCancelled. Move-only; Get() may
/// be called once.
class MatchHandle {
 public:
  MatchHandle() = default;
  MatchHandle(core::CancelToken token,
              std::future<Result<core::MatchResult>> future)
      : token_(std::move(token)), future_(std::move(future)) {}

  /// Requests cancellation; safe from any thread, idempotent, and a no-op
  /// once the request finished.
  void Cancel() const { token_.Cancel(); }

  /// Blocks until the request finishes and returns its result.
  Result<core::MatchResult> Get() { return future_.get(); }

  /// True until Get() consumes the result.
  bool valid() const { return future_.valid(); }

  /// The underlying future, for callers that need wait_for/wait_until.
  std::future<Result<core::MatchResult>>& future() { return future_; }

  const core::CancelToken& token() const { return token_; }

 private:
  core::CancelToken token_;
  std::future<Result<core::MatchResult>> future_;
};

/// Abstract matching backend. Thread-safe: one instance serves arbitrarily
/// many concurrent callers. Implementations: MatchService (one snapshot
/// chain), shard::ShardedMatchService (K shard chains, scatter-gather).
class Matcher {
 public:
  virtual ~Matcher() = default;

  // --- Repository surface. -----------------------------------------------

  /// Pins the current repository generation. Hold the returned pointer
  /// while touching anything it exposes — a concurrent ApplyDelta retires
  /// the generation once the last holder lets go.
  virtual RepositoryPinPtr Pin() const = 0;

  /// Generation number of the current pin (0 until the first delta).
  virtual uint64_t CurrentGeneration() const = 0;

  /// Applies a validated delta and atomically publishes the successor
  /// generation. In-flight requests finish against their pins; requests
  /// entering after this returns see the new generation. Serialized with
  /// concurrent ApplyDelta calls; on error nothing changes. `trace` (may
  /// be null) receives the per-stage spans.
  virtual Result<live::ApplyReport> ApplyDelta(
      const live::RepositoryDelta& delta,
      obs::TraceContext* trace = nullptr) = 0;

  /// Persists the current repository for a later warm start (atomic write).
  /// Sharded backends fan this out into per-shard files plus a manifest
  /// under `path`; the returned info aggregates over every file written.
  virtual Result<store::SnapshotFileInfo> SaveSnapshot(
      const std::string& path, obs::TraceContext* trace = nullptr) const = 0;

  /// Write-ahead journals every subsequent ApplyDelta (sharded backends
  /// journal per shard under the given path prefix): appended + fsync'd
  /// before the new generation is published, so an acknowledged delta
  /// survives a crash.
  virtual Status AttachWal(util::io::Env* env,
                           const std::string& wal_path) = 0;

  /// Whether deltas are currently being journaled.
  virtual bool wal_attached() const = 0;

  /// The backend's shard layout: one descriptor per shard, in shard order.
  /// The default (unsharded) implementation reports a single shard covering
  /// the whole pinned repository.
  virtual std::vector<ShardDescriptor> Shards() const;

  // --- Query surface. ----------------------------------------------------

  /// Executes one request against an explicit pin, on the calling thread,
  /// streaming progress to `observer` (may be null) under `control`. The
  /// pin must come from this backend's Pin(). A run no limit interrupts is
  /// deterministic for a fixed (pin fingerprint, request); an interrupted
  /// run resolves Status-OK with the mappings found so far and the typed
  /// terminal status in MatchResult::execution.
  virtual Result<core::MatchResult> RunOn(
      const RepositoryPinPtr& pin, const MatchRequest& request,
      const core::ExecutionControl& control,
      core::MatchObserver* observer = nullptr) = 0;

  /// Terminal convenience: pins the current generation, runs the request,
  /// and wraps the result with the pin's provenance.
  Result<MatchOutcome> Run(
      const MatchRequest& request,
      const core::ExecutionControl& control = core::ExecutionControl(),
      core::MatchObserver* observer = nullptr);

  /// Enqueues one request on the pool against an explicit pin and returns
  /// a cancellable handle; the backend default deadline starts now (queue
  /// wait counts). `observer` (may be null) must outlive the request; its
  /// callbacks run on the pool thread executing it.
  virtual MatchHandle Submit(
      RepositoryPinPtr pin, MatchRequest request,
      core::ExecutionControl control = core::ExecutionControl(),
      core::MatchObserver* observer = nullptr) = 0;

  /// Executes all requests on the pool and returns their results in input
  /// order. The whole batch runs against one pin — the generation current
  /// at the call — so its results are mutually consistent even when deltas
  /// land mid-batch. Blocks until the batch is done; call from outside the
  /// backend's pool.
  virtual BatchMatchResult RunBatch(std::vector<MatchRequest> requests) = 0;

  /// The cached cluster state (element matching + clustering) for
  /// `request` against an explicit pin: consults the fingerprint-keyed
  /// cache namespace and computes-once on miss, exactly like the query
  /// path. The build always runs to completion, so the cache can never
  /// hold a partial state.
  virtual Result<ClusterStatePtr> ClusterStateFor(
      const RepositoryPinPtr& pin, const MatchRequest& request) = 0;

  // --- Introspection. ----------------------------------------------------

  virtual const MatchServiceOptions& options() const = 0;
  virtual ThreadPool& pool() = 0;
  virtual ServiceStats stats() const = 0;

  /// The registry this backend's series live in. Every stats surface
  /// (`!stats`, `/v1/stats`, `/metrics`) reads values that originate here,
  /// so they can never disagree.
  virtual obs::MetricsRegistry& metrics() const = 0;

  /// The options this backend actually runs for `request` against the
  /// current pin: EffectiveRequestOptions plus backend execution plumbing
  /// (which never changes results).
  virtual core::MatchOptions EffectiveOptions(
      const MatchRequest& request) const = 0;

  /// The cluster-cache key for `request`: a canonical fingerprint of its
  /// personal schema and state-determining options. Stable across
  /// generations and identical across backends — cross-generation
  /// isolation comes from the fingerprint namespace, not the key.
  virtual std::string ClusterStateKey(const MatchRequest& request) const = 0;
};

/// The canonical cluster-cache key (exposed so every backend and test
/// derives keys the same way): a canonical serialization of the personal
/// schema plus the state-determining options.
std::string BuildClusterStateKey(const schema::SchemaTree& personal,
                                 const core::ClusterStateOptions& options);

}  // namespace xsm::service

#endif  // XSM_SERVICE_MATCHER_H_
