// RepositoryPin: the backend-agnostic "one repository generation" handle.
//
// Callers that format results, enumerate trees, or record provenance used
// to hold a shared_ptr<const RepositorySnapshot> — which ties them to the
// single-snapshot backend. A pin is the part of that contract every
// backend can honor: an immutable forest view plus the generation /
// fingerprint identity, alive for as long as the pin is held. The
// unsharded backend's pin *is* its RepositorySnapshot; the sharded
// backend's pin is a federated view over K shard snapshots (the forest is
// materialized from shared tree payloads, so holding it costs pointers,
// not copies).
#ifndef XSM_SERVICE_REPOSITORY_PIN_H_
#define XSM_SERVICE_REPOSITORY_PIN_H_

#include <cstdint>
#include <memory>

#include "schema/schema_forest.h"

namespace xsm::service {

/// Immutable, shareable view of one repository generation. Implementations
/// guarantee that everything reachable through forest() stays valid while
/// the pin is held, regardless of concurrent deltas.
class RepositoryPin {
 public:
  virtual ~RepositoryPin() = default;

  /// The pinned forest (tree payloads + sources). Never mutated.
  virtual const schema::SchemaForest& forest() const = 0;

  /// Position in the backend's publication chain (0 before any delta).
  virtual uint64_t generation() const = 0;

  /// Content fingerprint of the pinned repository. Two pins with equal
  /// fingerprints hold equal forests, whatever their generations or
  /// backends — the sharded fingerprint composes per-tree fingerprints
  /// with the same mix as the unsharded one, so equal content always
  /// means equal fingerprints across backends.
  virtual uint64_t fingerprint() const = 0;

  /// Content hash of one tree (independent of its TreeId).
  virtual uint64_t tree_fingerprint(schema::TreeId id) const = 0;

  size_t num_trees() const { return forest().num_trees(); }
  size_t total_nodes() const { return forest().total_nodes(); }
};

using RepositoryPinPtr = std::shared_ptr<const RepositoryPin>;

}  // namespace xsm::service

#endif  // XSM_SERVICE_REPOSITORY_PIN_H_
