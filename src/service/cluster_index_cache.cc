#include "service/cluster_index_cache.h"

#include <utility>

namespace xsm::service {

Result<ClusterStatePtr> ClusterIndexCache::GetOrCompute(
    const std::string& key, const Factory& factory, Fetch* fetch) {
  if (capacity_ == 0) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++stats_.misses;
    }
    if (fetch != nullptr) *fetch = Fetch::kMiss;
    XSM_ASSIGN_OR_RETURN(core::ClusterState state, factory());
    return std::make_shared<const core::ClusterState>(std::move(state));
  }

  std::promise<Outcome> promise;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = slots_.find(key);
    if (it != slots_.end()) {
      Slot& slot = it->second;
      std::shared_future<Outcome> future = slot.future;
      if (slot.ready) {
        ++stats_.hits;
        if (fetch != nullptr) *fetch = Fetch::kHit;
        lru_.splice(lru_.begin(), lru_, slot.lru_it);  // mark recently used
      } else {
        ++stats_.shared;
        if (fetch != nullptr) *fetch = Fetch::kShared;
      }
      lock.unlock();
      Outcome outcome = future.get();
      if (!outcome.status.ok()) return outcome.status;
      return outcome.state;
    }
    ++stats_.misses;
    if (fetch != nullptr) *fetch = Fetch::kMiss;
    Slot slot;
    slot.future = promise.get_future().share();
    slots_.emplace(key, std::move(slot));
  }

  // Build outside the lock: other keys proceed, same-key callers wait on
  // the shared future.
  Outcome outcome;
  {
    Result<core::ClusterState> built = factory();
    if (built.ok()) {
      outcome.state = std::make_shared<const core::ClusterState>(
          std::move(built).value());
    } else {
      outcome.status = built.status();
    }
  }
  promise.set_value(outcome);

  std::unique_lock<std::mutex> lock(mu_);
  auto it = slots_.find(key);
  if (!outcome.status.ok()) {
    // Leave no failed entry behind; the next request retries.
    if (it != slots_.end() && !it->second.ready) slots_.erase(it);
    return outcome.status;
  }
  if (it != slots_.end() && !it->second.ready) {
    lru_.push_front(key);
    it->second.ready = true;
    it->second.lru_it = lru_.begin();
    while (lru_.size() > capacity_) {
      slots_.erase(lru_.back());
      lru_.pop_back();
      ++stats_.evictions;
    }
  }
  return outcome.state;
}

ClusterIndexCache::Stats ClusterIndexCache::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  Stats snapshot = stats_;
  snapshot.entries = lru_.size();
  return snapshot;
}

void ClusterIndexCache::Clear() {
  std::unique_lock<std::mutex> lock(mu_);
  for (const std::string& key : lru_) {
    slots_.erase(key);
  }
  lru_.clear();
}

}  // namespace xsm::service
