// Bellflower: the experimental clustered schema matching system (paper §3,
// Fig. 3). Pipeline: element matching ② → clustering ⓒ → per-cluster
// mapping generation ④ → one merged, ranked mapping list ⑤.
//
// The non-clustered baseline ("tree clusters": every repository tree is one
// cluster) runs through the same pipeline with ClusteringMode::kTreeClusters.
#ifndef XSM_CORE_BELLFLOWER_H_
#define XSM_CORE_BELLFLOWER_H_

#include <cstdint>
#include <vector>

#include "cluster/kmeans.h"
#include "core/execution_control.h"
#include "generate/mapping_generator.h"
#include "generate/partial_generator.h"
#include "label/tree_index.h"
#include "match/element_matching.h"
#include "match/structural_matcher.h"
#include "objective/objective.h"
#include "schema/schema_forest.h"
#include "schema/schema_tree.h"
#include "util/status.h"

namespace xsm::core {

enum class ClusteringMode {
  /// Non-clustered baseline: one cluster per repository tree.
  kTreeClusters = 0,
  /// Clustered schema matching with the k-means clusterer.
  kKMeans = 1,
};

/// Order in which useful clusters are handed to the mapping generator.
/// Quality ordering implements the paper's §7 future-work item: "a measure
/// of cluster's quality can be used to decide which clusters have better
/// chances to produce good mappings. In this way, the time-to-first good
/// mapping can be improved."
enum class ClusterOrder {
  kNatural = 0,            ///< repository order (paper behaviour)
  kQualityDescending = 1,  ///< optimistic-Δ estimate, best first
};

/// All knobs of one matching run (Def. 3's P = (s, R, Δ, δ) plus system
/// parameters).
struct MatchOptions {
  /// Element-matching stage (matcher + threshold).
  match::ElementMatchingOptions element;

  /// Objective function Δ parameters (α, K).
  objective::ObjectiveParams objective;

  /// Objective threshold δ: solutions are all mappings with Δ ≥ δ.
  double delta = 0.75;

  ClusteringMode clustering = ClusteringMode::kKMeans;
  cluster::KMeansOptions kmeans;

  /// Mapping generator algorithm & limits (GeneratorOptions::delta is
  /// overridden by `delta` above).
  generate::GeneratorOptions generator;

  /// Keep only the best N mappings in the result (0 = keep all).
  size_t top_n = 0;

  /// With top_n > 0 and the B&B generator: once N mappings are known, the
  /// effective δ rises to the N-th best Δ found so far, so later clusters
  /// prune everything that cannot enter the top N (Def. 3's "top-N
  /// mappings" delivery mode). The returned top N is identical to the
  /// non-adaptive run; only the work shrinks.
  bool adaptive_top_n = true;

  /// Cluster processing order (affects time-to-first-mapping, not the
  /// final result set).
  ClusterOrder cluster_order = ClusterOrder::kNatural;

  /// Also enumerate partial mappings in non-useful clusters (§2.3
  /// extension). Complete mappings are unaffected.
  bool include_partial_mappings = false;
  generate::PartialGeneratorOptions partial;

  /// §2.3 non-generic ("two-phase") technique: a second matcher group of
  /// structural matchers re-scores mapping elements after clustering.
  /// Element scores become
  ///   (1 − structural_weight)·localized + structural_weight·structural.
  /// nullptr disables the second phase (the paper's generic technique).
  const match::StructuralMatcher* structural_matcher = nullptr;
  double structural_weight = 0.5;
  /// true  — the paper's proposal: structural matchers run per cluster,
  ///         only on elements that survived clustering;
  /// false — comparison baseline: structural matchers run on every
  ///         mapping element before clustering.
  bool structural_within_clusters_only = true;
};

/// Per-cluster summary used by the Tab. 1a reproduction.
struct ClusterSummary {
  schema::TreeId tree = -1;
  size_t num_points = 0;            ///< distinct repository nodes
  size_t num_mapping_elements = 0;  ///< (n, n′) pairs inside the cluster
  bool useful = false;
  double search_space = 0;          ///< Π_n |ME_n ∩ cluster|
};

/// Aggregate statistics of one Match() run — everything Tab. 1 and Fig. 4–6
/// report.
struct MatchStats {
  size_t repository_nodes = 0;
  size_t repository_trees = 0;

  // Element matching stage.
  size_t total_mapping_elements = 0;  ///< Σ_n |ME_n| (paper: 4520)
  size_t distinct_mapping_nodes = 0;
  double time_matching_seconds = 0;

  // Clustering stage.
  size_t num_clusters = 0;
  size_t num_useful_clusters = 0;
  /// Mean (n, n′) pairs per useful cluster (Tab. 1a "avg. # of mapping
  /// elements").
  double avg_elements_per_useful_cluster = 0;
  /// Σ over useful clusters of Π_n |ME_n ∩ cluster| (Tab. 1a "total # of
  /// schema mappings" — the mapping generator's search space).
  double search_space = 0;
  cluster::KMeansStats kmeans;
  double time_clustering_seconds = 0;

  // Generation stage.
  generate::GeneratorCounters generator;  ///< Tab. 1b counters
  size_t num_mappings = 0;                ///< mappings with Δ ≥ δ
  double time_generation_seconds = 0;

  // Time-to-first-result accounting (for ClusterOrder comparisons): work
  // done up to and including the cluster that produced the first mapping.
  uint64_t partials_until_first_mapping = 0;
  size_t clusters_until_first_mapping = 0;

  // Partial-mapping extension.
  size_t num_partial_mappings = 0;
  generate::GeneratorCounters partial_generator;

  // Two-phase (structural) matching extension: how many (n, n′) pairs the
  // second matcher group scored, and the time it took. The §2.3 efficiency
  // claim is that the within-cluster count is much smaller than the
  // total-elements count.
  uint64_t structural_evaluations = 0;
  double time_structural_seconds = 0;

  std::vector<ClusterSummary> cluster_summaries;
};

struct MatchResult {
  /// Ranked solution list (Δ descending; deterministic tie-break).
  std::vector<generate::SchemaMapping> mappings;
  /// Partial mappings from non-useful clusters, ranked; empty unless
  /// MatchOptions::include_partial_mappings is set.
  std::vector<generate::PartialMapping> partial_mappings;
  MatchStats stats;
  /// Why the run ended. Anything other than kCompleted means the search was
  /// cut short (ExecutionControl) and `mappings` / `partial_mappings` hold
  /// the results gathered up to that point, still ranked and top-N-trimmed.
  ExecutionStatus execution = ExecutionStatus::kCompleted;
};

/// The subset of MatchOptions that determines the expensive, reusable
/// preprocessing (element matching ②③ + clustering ⓒ). Two MatchOptions
/// with equal ClusterStateOptions can share one ClusterState; everything
/// else in MatchOptions (δ, top-N, cluster order, partial mappings,
/// structural matchers) only affects the generation phase.
struct ClusterStateOptions {
  match::ElementMatchingOptions element;
  ClusteringMode clustering = ClusteringMode::kKMeans;
  cluster::KMeansOptions kmeans;

  /// Projects a full MatchOptions onto its state-determining subset.
  static ClusterStateOptions From(const MatchOptions& options) {
    ClusterStateOptions state;
    state.element = options.element;
    state.clustering = options.clustering;
    state.kmeans = options.kmeans;
    return state;
  }
};

/// Immutable output of the matching+clustering stages for one personal
/// schema. Build once with Bellflower::BuildClusterState, then run any
/// number of (concurrent) MatchWithState calls against it — the state is
/// never mutated after construction, so a `const ClusterState&` may be
/// shared freely across threads (this is what service::ClusterIndexCache
/// hands out).
struct ClusterState {
  match::ElementMatchingResult matching;
  /// One point per distinct matched repository node (aligned with
  /// matching.distinct_nodes / matching.masks).
  std::vector<cluster::ClusterPoint> points;
  cluster::ClusteringResult clustering;

  double time_matching_seconds = 0;
  double time_clustering_seconds = 0;
};

class MatchObserver;  // core/match_observer.h

/// The matching system. Owns the structural index over the repository; the
/// repository itself must outlive the Bellflower instance.
class Bellflower {
 public:
  explicit Bellflower(const schema::SchemaForest* repository);

  /// Adopts a prebuilt index over `repository` instead of building one —
  /// the copy-on-write path: service::RepositorySnapshot::CreateSuccessor
  /// labels only the trees a delta touched (ForestIndex::BuildIncremental)
  /// and hands the result here. `index` must describe exactly `repository`.
  Bellflower(const schema::SchemaForest* repository,
             label::ForestIndex index);

  const schema::SchemaForest& repository() const { return *repository_; }
  const label::ForestIndex& index() const { return index_; }

  /// Resolves the Δpath normalization constant K for these options:
  /// user-supplied positive value, else max(1, repository diameter − 1).
  double ResolveK(const objective::ObjectiveParams& params) const;

  /// Solves the schema matching problem P = (personal, R, Δ, δ).
  /// Equivalent to BuildClusterState + MatchWithState.
  Result<MatchResult> Match(const schema::SchemaTree& personal,
                            const MatchOptions& options) const;

  /// Anytime variant: `control` bounds the run (cooperative cancellation,
  /// wall-clock deadline, early exit after N mappings) and `observer` (may
  /// be null) streams cluster progress and every emitted mapping as it is
  /// found. A run that no limit interrupts produces a result byte-identical
  /// to the blocking overload; an interrupted run returns the mappings
  /// gathered so far with MatchResult::execution naming the reason — a cut
  /// run is still Status-OK, not an error. Control is honored before
  /// preprocessing, during its element-matching stage (per dictionary
  /// entry), and throughout generation at cluster and node-expansion
  /// granularity. (service::MatchService builds its *cached* states without
  /// control on purpose, so cancellation never poisons the cache.)
  Result<MatchResult> Match(const schema::SchemaTree& personal,
                            const MatchOptions& options,
                            const ExecutionControl& control,
                            MatchObserver* observer = nullptr) const;

  /// Runs the expensive preprocessing stages (element matching +
  /// clustering) and returns their reusable result. Thread-safe: only
  /// reads the repository and index. `control` (may be null) bounds the
  /// element-matching stage: a stopped build returns Status kCancelled /
  /// kDeadlineExceeded — never a half-built state. It supplements any
  /// control already present in options.element.
  Result<ClusterState> BuildClusterState(
      const schema::SchemaTree& personal, const ClusterStateOptions& options,
      const ExecutionControl* control = nullptr) const;

  /// Clustering-only half of BuildClusterState: takes a completed
  /// element-matching result (whose NodeRefs must be in *this* repository's
  /// tree-id space) and runs point extraction + clustering on it. This is
  /// the seam the sharded backend uses — it scatters MatchElements across
  /// shard repositories, merges the per-shard results into the global
  /// tree-id space, and clusters the merged result here so the clustering
  /// stage sees exactly what the unsharded pipeline would have seen.
  /// `matching_seconds` seeds ClusterState::time_matching_seconds.
  Result<ClusterState> ClusterFromMatching(
      const schema::SchemaTree& personal,
      match::ElementMatchingResult matching, double matching_seconds,
      const ClusterStateOptions& options,
      const ExecutionControl* control = nullptr) const;

  /// Runs the generation stages (④⑤ plus the §2.3 extensions) against a
  /// previously built state. `state` must have been built for the same
  /// personal schema (and this repository); it is not mutated, so many
  /// MatchWithState calls may run concurrently against one state.
  /// `options`' state-determining fields are ignored — the state wins.
  Result<MatchResult> MatchWithState(const schema::SchemaTree& personal,
                                     const ClusterState& state,
                                     const MatchOptions& options) const;

  /// Anytime variant of MatchWithState; see the streaming Match overload
  /// for `control` / `observer` semantics. `cluster_subset` (may be null =
  /// all clusters) restricts generation to the given indexes into
  /// state.clustering.clusters — the sharded backend partitions the global
  /// cluster list by owning shard and runs one restricted call per shard
  /// against the *shared* state. The union of disjoint subset runs emits
  /// exactly the mappings of one unrestricted run (each cluster's generator
  /// call sees identical candidates either way); only run-level stats and
  /// the adaptive-δ work savings differ.
  Result<MatchResult> MatchWithState(
      const schema::SchemaTree& personal, const ClusterState& state,
      const MatchOptions& options, const ExecutionControl& control,
      MatchObserver* observer = nullptr,
      const std::vector<size_t>* cluster_subset = nullptr) const;

 private:
  /// Shared generation path; `control` == nullptr means unlimited (the
  /// monitor never stops) with zero per-expansion overhead beyond two
  /// branches.
  Result<MatchResult> MatchWithStateImpl(
      const schema::SchemaTree& personal, const ClusterState& state,
      const MatchOptions& options, const ExecutionControl* control,
      MatchObserver* observer,
      const std::vector<size_t>* cluster_subset = nullptr) const;

  const schema::SchemaForest* repository_;
  label::ForestIndex index_;
};

}  // namespace xsm::core

#endif  // XSM_CORE_BELLFLOWER_H_
