// MatchObserver: streaming callbacks of one matching run. Where the
// blocking API returns one MatchResult at the end, an observer sees every
// mapping the moment the generator emits it — the delivery half of the
// paper's §7 time-to-first-good-mapping item (ClusterOrder decides *which*
// cluster runs first, the observer lets the caller *act* on its output
// immediately).
//
// All callbacks run synchronously on the thread executing the match, in
// generation order, between the corresponding OnClusterStart/OnClusterFinish
// pair. References passed to callbacks are only valid during the call —
// copy what you keep. Implementations must not call back into the run.
// Default implementations are no-ops, so observers override only what they
// need.
#ifndef XSM_CORE_MATCH_OBSERVER_H_
#define XSM_CORE_MATCH_OBSERVER_H_

#include <cstddef>

#include "core/bellflower.h"
#include "generate/partial_generator.h"
#include "generate/schema_mapping.h"

namespace xsm::core {

class MatchObserver {
 public:
  virtual ~MatchObserver() = default;

  /// Generation is starting on a useful cluster: the `sequence`-th of
  /// `total` useful clusters in generation order (0-based, after any
  /// ClusterOrder reordering).
  virtual void OnClusterStart(size_t sequence, size_t total,
                              const ClusterSummary& summary) {
    (void)sequence;
    (void)total;
    (void)summary;
  }

  /// Generation finished on that cluster. `stats_so_far` is a live snapshot
  /// of the run's cumulative statistics (generator counters, num_mappings
  /// found so far, time-to-first accounting) — the incremental view of what
  /// the blocking API only reports at the end.
  virtual void OnClusterFinish(size_t sequence, size_t total,
                               const ClusterSummary& summary,
                               const MatchStats& stats_so_far) {
    (void)sequence;
    (void)total;
    (void)summary;
    (void)stats_so_far;
  }

  /// A mapping with Δ ≥ δ was emitted. `running_rank` is its 1-based rank
  /// under generate::MappingOrder among all mappings found so far in this
  /// run (rank 1 = best so far); the final ranked list may still reorder or
  /// truncate (top-N).
  virtual void OnMapping(const generate::SchemaMapping& mapping,
                         size_t running_rank) {
    (void)mapping;
    (void)running_rank;
  }

  /// A partial mapping was emitted (only with
  /// MatchOptions::include_partial_mappings).
  virtual void OnPartialMapping(const generate::PartialMapping& partial) {
    (void)partial;
  }

  /// The run is over: `result` is the final ranked (and top-N-trimmed)
  /// MatchResult the caller is about to receive, terminal status included.
  /// Fired exactly once per Status-OK run, on the run's thread, after the
  /// last OnMapping/OnClusterFinish; not fired when the run fails with an
  /// error Status.
  virtual void OnFinish(const MatchResult& result) { (void)result; }
};

}  // namespace xsm::core

#endif  // XSM_CORE_MATCH_OBSERVER_H_
