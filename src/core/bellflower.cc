#include "core/bellflower.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <functional>

#include "core/match_observer.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace xsm::core {

using generate::SchemaMapping;
using schema::NodeRef;

Bellflower::Bellflower(const schema::SchemaForest* repository)
    : repository_(repository) {
  index_ = label::ForestIndex::Build(*repository);
}

Bellflower::Bellflower(const schema::SchemaForest* repository,
                       label::ForestIndex index)
    : repository_(repository), index_(std::move(index)) {
  assert(index_.num_trees() == repository_->num_trees());
}

double Bellflower::ResolveK(const objective::ObjectiveParams& params) const {
  if (params.k_norm > 0) return params.k_norm;
  return std::max(1, index_.max_diameter() - 1);
}

Result<MatchResult> Bellflower::Match(const schema::SchemaTree& personal,
                                      const MatchOptions& options) const {
  XSM_RETURN_NOT_OK(options.objective.Validate());
  if (options.delta < 0.0 || options.delta > 1.0) {
    return Status::InvalidArgument("delta must be in [0,1]");
  }
  XSM_ASSIGN_OR_RETURN(
      ClusterState state,
      BuildClusterState(personal, ClusterStateOptions::From(options)));
  return MatchWithStateImpl(personal, state, options, nullptr, nullptr);
}

Result<MatchResult> Bellflower::Match(const schema::SchemaTree& personal,
                                      const MatchOptions& options,
                                      const ExecutionControl& control,
                                      MatchObserver* observer) const {
  XSM_RETURN_NOT_OK(options.objective.Validate());
  if (options.delta < 0.0 || options.delta > 1.0) {
    return Status::InvalidArgument("delta must be in [0,1]");
  }
  // Already cancelled / past deadline: don't pay for preprocessing.
  ExecutionMonitor pre(control);
  if (pre.ShouldStop()) {
    MatchResult result;
    result.stats.repository_nodes = repository_->total_nodes();
    result.stats.repository_trees = repository_->num_trees();
    result.execution = pre.status();
    if (observer != nullptr) observer->OnFinish(result);
    return result;
  }
  // The element-matching stage polls `control` too; a build it stops comes
  // back as kCancelled / kDeadlineExceeded and is folded into the same
  // partial-result contract as a stop during generation.
  Result<ClusterState> built =
      BuildClusterState(personal, ClusterStateOptions::From(options),
                        &control);
  if (!built.ok()) {
    const StatusCode code = built.status().code();
    if (code == StatusCode::kCancelled ||
        code == StatusCode::kDeadlineExceeded) {
      MatchResult result;
      result.stats.repository_nodes = repository_->total_nodes();
      result.stats.repository_trees = repository_->num_trees();
      result.execution = code == StatusCode::kCancelled
                             ? ExecutionStatus::kCancelled
                             : ExecutionStatus::kDeadlineExceeded;
      if (observer != nullptr) observer->OnFinish(result);
      return result;
    }
    return built.status();
  }
  return MatchWithStateImpl(personal, built.value(), options, &control,
                            observer);
}

Result<ClusterState> Bellflower::BuildClusterState(
    const schema::SchemaTree& personal, const ClusterStateOptions& options,
    const ExecutionControl* control) const {
  if (personal.empty()) {
    return Status::InvalidArgument("personal schema is empty");
  }
  XSM_RETURN_NOT_OK(personal.Validate());

  ClusterState state;

  // --- Stage ②③: element matching. ---------------------------------------
  Timer timer;
  match::ElementMatchingOptions element = options.element;
  if (element.control == nullptr) element.control = control;
  obs::TraceContext* trace =
      element.control != nullptr ? element.control->trace : nullptr;
  {
    obs::ScopedSpan span(trace, "element_match");
    XSM_ASSIGN_OR_RETURN(
        state.matching,
        match::MatchElements(personal, *repository_, element));
  }
  return ClusterFromMatching(personal, std::move(state.matching),
                             timer.ElapsedSeconds(), options, control);
}

Result<ClusterState> Bellflower::ClusterFromMatching(
    const schema::SchemaTree& personal, match::ElementMatchingResult matching,
    double matching_seconds, const ClusterStateOptions& options,
    const ExecutionControl* control) const {
  ClusterState state;
  state.matching = std::move(matching);
  state.time_matching_seconds = matching_seconds;
  obs::TraceContext* trace = control != nullptr ? control->trace : nullptr;
  if (trace == nullptr && options.element.control != nullptr) {
    trace = options.element.control->trace;
  }

  if (state.matching.distinct_nodes.empty()) {
    return state;  // No mapping elements anywhere: nothing to cluster.
  }

  // Cluster points = distinct matched repository nodes. Element scores are
  // deliberately not part of a point: clustering depends only on node
  // positions and masks, which is what makes the state reusable across
  // generation-phase option changes (δ, top-N, structural matchers, ...).
  state.points.reserve(state.matching.distinct_nodes.size());
  for (size_t i = 0; i < state.matching.distinct_nodes.size(); ++i) {
    state.points.push_back(
        {state.matching.distinct_nodes[i], state.matching.masks[i]});
  }

  // --- Stage ⓒ: clustering. ----------------------------------------------
  Timer timer;
  obs::ScopedSpan cluster_span(trace, "clustering");
  if (options.clustering == ClusteringMode::kTreeClusters) {
    state.clustering = cluster::TreeClusters(state.points);
  } else {
    std::vector<size_t> set_sizes(personal.size());
    for (size_t i = 0; i < personal.size(); ++i) {
      set_sizes[i] = state.matching.sets[i].size();
    }
    cluster::KMeansClusterer clusterer(repository_, &index_);
    XSM_ASSIGN_OR_RETURN(
        state.clustering,
        clusterer.Cluster(state.points, set_sizes, options.kmeans));
  }
  state.time_clustering_seconds = timer.ElapsedSeconds();
  return state;
}

Result<MatchResult> Bellflower::MatchWithState(
    const schema::SchemaTree& personal, const ClusterState& state,
    const MatchOptions& options) const {
  return MatchWithStateImpl(personal, state, options, nullptr, nullptr);
}

Result<MatchResult> Bellflower::MatchWithState(
    const schema::SchemaTree& personal, const ClusterState& state,
    const MatchOptions& options, const ExecutionControl& control,
    MatchObserver* observer,
    const std::vector<size_t>* cluster_subset) const {
  return MatchWithStateImpl(personal, state, options, &control, observer,
                            cluster_subset);
}

Result<MatchResult> Bellflower::MatchWithStateImpl(
    const schema::SchemaTree& personal, const ClusterState& state,
    const MatchOptions& options, const ExecutionControl* control,
    MatchObserver* observer,
    const std::vector<size_t>* cluster_subset) const {
  XSM_RETURN_NOT_OK(options.objective.Validate());
  if (options.delta < 0.0 || options.delta > 1.0) {
    return Status::InvalidArgument("delta must be in [0,1]");
  }
  if (personal.empty()) {
    return Status::InvalidArgument("personal schema is empty");
  }
  if (state.matching.sets.size() != personal.size()) {
    return Status::InvalidArgument(
        "cluster state was built for a different personal schema");
  }

  MatchResult result;
  MatchStats& stats = result.stats;
  stats.repository_nodes = repository_->total_nodes();
  stats.repository_trees = repository_->num_trees();
  stats.time_matching_seconds = state.time_matching_seconds;
  stats.total_mapping_elements = state.matching.total_mapping_elements();
  stats.distinct_mapping_nodes = state.matching.distinct_nodes.size();

  if (state.matching.distinct_nodes.empty()) {
    // No mapping elements anywhere: empty solution list.
    if (observer != nullptr) observer->OnFinish(result);
    return result;
  }

  // Cooperative execution: one monitor is shared by every generator call of
  // this run, so the cancel/deadline/early-exit verdict is checked at node-
  // expansion granularity and the emitted-mapping budget is global across
  // clusters. A null `control` never stops.
  ExecutionMonitor monitor;
  if (control != nullptr) monitor = ExecutionMonitor(*control);
  // Indices into result.mappings kept sorted by MappingOrder, so each
  // running rank costs O(log k) compares + one insert instead of a linear
  // rescan of everything found so far.
  std::vector<size_t> rank_order;
  if (observer != nullptr) {
    // The generators append to result.mappings and then fire the hook, so
    // the new mapping is always the last element.
    monitor.on_emit = [&result, &rank_order, observer]() {
      const size_t new_index = result.mappings.size() - 1;
      auto before = [&result](size_t a, size_t b) {
        return generate::MappingOrder()(result.mappings[a],
                                        result.mappings[b]);
      };
      auto pos = std::upper_bound(rank_order.begin(), rank_order.end(),
                                  new_index, before);
      size_t rank = static_cast<size_t>(pos - rank_order.begin()) + 1;
      rank_order.insert(pos, new_index);
      observer->OnMapping(result.mappings[new_index], rank);
    };
    monitor.on_partial_emit = [&result, observer]() {
      observer->OnPartialMapping(result.partial_mappings.back());
    };
  }

  // Two-phase baseline: structural matchers applied to *every* mapping
  // element (structural_within_clusters_only == false). Scores never
  // influence clustering, so rescoring a local copy here — after the
  // clustering stage — produces the same mappings as the historical
  // rescore-before-clustering order while keeping `state` immutable.
  const match::ElementMatchingResult* matching = &state.matching;
  match::ElementMatchingResult rescored;
  if (options.structural_matcher != nullptr &&
      !options.structural_within_clusters_only) {
    rescored = state.matching;
    Timer structural_timer;
    const double w = options.structural_weight;
    for (auto& set : rescored.sets) {
      if (monitor.ShouldStop()) break;
      for (auto& element : set.elements) {
        double structural = options.structural_matcher->Score(
            personal, set.personal_node, repository_->tree(element.node.tree),
            element.node.node);
        element.score = (1.0 - w) * element.score + w * structural;
        ++stats.structural_evaluations;
      }
    }
    stats.time_structural_seconds = structural_timer.ElapsedSeconds();
    matching = &rescored;
  }

  const std::vector<cluster::ClusterPoint>& points = state.points;
  const cluster::ClusteringResult& clustering = state.clustering;
  stats.time_clustering_seconds = state.time_clustering_seconds;
  stats.kmeans = clustering.stats;
  // With a cluster subset, run-level stats describe the subset's share of
  // the work so per-shard stats sum to (roughly) the global run.
  const size_t num_considered = cluster_subset != nullptr
                                    ? cluster_subset->size()
                                    : clustering.clusters.size();
  stats.num_clusters = num_considered;
  if (cluster_subset != nullptr) {
    for (size_t ci : *cluster_subset) {
      if (ci >= clustering.clusters.size()) {
        return Status::InvalidArgument("cluster_subset index out of range");
      }
    }
  }

  // --- Stage ④: per-cluster mapping generation. --------------------------
  Timer timer;
  obs::TraceContext* trace = control != nullptr ? control->trace : nullptr;
  std::optional<obs::ScopedSpan> generate_span;
  generate_span.emplace(trace, "generate");
  const uint32_t full_mask = matching->FullMask();
  double k_resolved = ResolveK(options.objective);
  objective::BellflowerObjective objective(
      options.objective.alpha, k_resolved,
      static_cast<int>(personal.size()),
      static_cast<int>(personal.num_edges()));
  generate::GeneratorOptions gen_options = options.generator;
  gen_options.delta = options.delta;

  // First pass: per-cluster candidate sets and summaries.
  std::vector<generate::ClusterCandidates> all_candidates(
      clustering.clusters.size());
  stats.cluster_summaries.reserve(num_considered);
  size_t useful_pairs = 0;
  std::vector<size_t> useful_order;
  std::vector<size_t> non_useful;
  // Summaries are pushed in iteration order; under a subset that order is
  // not the cluster index, so keep the ci → summary position map explicit.
  std::vector<size_t> summary_index(clustering.clusters.size(), 0);

  for (size_t pos = 0; pos < num_considered; ++pos) {
    const size_t ci = cluster_subset != nullptr ? (*cluster_subset)[pos] : pos;
    // A stop during candidate building leaves later clusters out of
    // useful_order / non_useful, so the generation loops skip them too.
    if (monitor.ShouldStop()) break;
    const cluster::Cluster& c = clustering.clusters[ci];
    ClusterSummary summary;
    summary.tree = c.tree;
    summary.num_points = c.members.size();
    summary.useful = c.useful(full_mask);
    for (int32_t m : c.members) {
      summary.num_mapping_elements += static_cast<size_t>(
          std::popcount(points[static_cast<size_t>(m)].personal_mask));
    }

    // Candidate lists: ME_n ∩ cluster. Both sides are sorted by NodeRef,
    // so intersect with a linear merge.
    std::vector<NodeRef> member_nodes;
    member_nodes.reserve(c.members.size());
    for (int32_t m : c.members) {
      member_nodes.push_back(points[static_cast<size_t>(m)].node);
    }
    std::sort(member_nodes.begin(), member_nodes.end());

    generate::ClusterCandidates& cands = all_candidates[ci];
    cands.tree = c.tree;
    cands.candidates.resize(personal.size());
    for (size_t n = 0; n < personal.size(); ++n) {
      const auto& me = matching->sets[n].elements;
      auto& dst = cands.candidates[n];
      size_t i = 0;
      size_t j = 0;
      while (i < me.size() && j < member_nodes.size()) {
        if (me[i].node < member_nodes[j]) {
          ++i;
        } else if (member_nodes[j] < me[i].node) {
          ++j;
        } else {
          dst.push_back(me[i]);
          ++i;
          ++j;
        }
      }
    }

    if (options.structural_matcher != nullptr &&
        options.structural_within_clusters_only && summary.useful &&
        cands.useful()) {
      // The paper's two-phase technique: the structural matcher group only
      // sees elements inside (useful) clusters.
      Timer structural_timer;
      const double w = options.structural_weight;
      const schema::SchemaTree& repo_tree = repository_->tree(cands.tree);
      for (size_t n = 0; n < cands.candidates.size(); ++n) {
        for (auto& element : cands.candidates[n]) {
          double structural = options.structural_matcher->Score(
              personal, static_cast<schema::NodeId>(n), repo_tree,
              element.node.node);
          element.score = (1.0 - w) * element.score + w * structural;
          ++stats.structural_evaluations;
        }
      }
      stats.time_structural_seconds += structural_timer.ElapsedSeconds();
    }

    if (summary.useful && cands.useful()) {
      summary.search_space = cands.SearchSpaceSize();
      ++stats.num_useful_clusters;
      useful_pairs += summary.num_mapping_elements;
      stats.search_space += summary.search_space;
      useful_order.push_back(ci);
    } else {
      summary.useful = false;  // mask-useful but candidate-starved is rare
      non_useful.push_back(ci);
    }
    summary_index[ci] = stats.cluster_summaries.size();
    stats.cluster_summaries.push_back(std::move(summary));
  }

  // Cluster ordering (§7 future work): optimistic-Δ estimate per cluster.
  if (options.cluster_order == ClusterOrder::kQualityDescending &&
      !monitor.stopped()) {
    std::vector<schema::NodeId> order = personal.PreOrder();
    std::vector<double> quality(clustering.clusters.size(), 0.0);
    for (size_t ci : useful_order) {
      const generate::ClusterCandidates& cands = all_candidates[ci];
      double sim = 0;
      for (const auto& list : cands.candidates) {
        double mx = 0;
        for (const auto& e : list) mx = std::max(mx, e.score);
        sim += mx;
      }
      // Lower bound of the total path excess: per personal edge, the
      // minimum distance between the two candidate sets (≥ 1).
      const label::TreeIndex& tidx = index_.tree(cands.tree);
      int64_t excess = 0;
      for (schema::NodeId n : order) {
        if (personal.parent(n) == schema::kInvalidNode) continue;
        const auto& child_cands =
            cands.candidates[static_cast<size_t>(n)];
        const auto& parent_cands =
            cands.candidates[static_cast<size_t>(personal.parent(n))];
        int64_t best = label::ForestIndex::kInfiniteDistance;
        for (const auto& a : parent_cands) {
          for (const auto& b : child_cands) {
            if (a.node == b.node) continue;
            best = std::min<int64_t>(
                best, tidx.Distance(a.node.node, b.node.node));
            if (best <= 1) break;
          }
          if (best <= 1) break;
        }
        if (best < 1) best = 1;
        excess += best - 1;
      }
      quality[ci] = objective.UpperBound(
          0.0, sim, static_cast<int64_t>(personal.num_edges()) + excess,
          static_cast<int>(personal.num_edges()));
    }
    std::stable_sort(useful_order.begin(), useful_order.end(),
                     [&](size_t a, size_t b) {
                       return quality[a] > quality[b];
                     });
  }

  // Second pass: generate, tracking time-to-first-result. With adaptive
  // top-N pruning the effective δ ratchets up to the N-th best Δ seen.
  const bool adaptive =
      options.adaptive_top_n && options.top_n > 0 &&
      gen_options.algorithm == generate::Algorithm::kBranchAndBound;
  bool first_seen = false;
  const size_t total_useful = useful_order.size();
  size_t sequence = 0;
  for (size_t ci : useful_order) {
    if (monitor.ShouldStop()) break;
    if (observer != nullptr) {
      observer->OnClusterStart(sequence, total_useful,
                               stats.cluster_summaries[summary_index[ci]]);
    }
    generate::GeneratorOptions cluster_options = gen_options;
    if (adaptive && result.mappings.size() >= options.top_n) {
      std::vector<double> deltas;
      deltas.reserve(result.mappings.size());
      for (const auto& m : result.mappings) deltas.push_back(m.delta);
      std::nth_element(deltas.begin(),
                       deltas.begin() + static_cast<long>(options.top_n) - 1,
                       deltas.end(), std::greater<double>());
      cluster_options.delta = std::max(
          cluster_options.delta,
          deltas[options.top_n - 1]);
    }
    generate::MappingGenerator generator(personal, objective,
                                         cluster_options);
    XSM_RETURN_NOT_OK(generator.Generate(
        all_candidates[ci], index_.tree(all_candidates[ci].tree),
        &result.mappings, &stats.generator, &monitor));
    if (!first_seen) {
      ++stats.clusters_until_first_mapping;
      if (!result.mappings.empty()) {
        first_seen = true;
        stats.partials_until_first_mapping =
            stats.generator.partial_mappings;
      }
    }
    if (observer != nullptr) {
      stats.num_mappings = result.mappings.size();  // incremental snapshot
      observer->OnClusterFinish(sequence, total_useful,
                                stats.cluster_summaries[summary_index[ci]],
                                stats);
    }
    ++sequence;
  }
  if (!first_seen) {
    stats.partials_until_first_mapping = stats.generator.partial_mappings;
  }

  // Partial mappings from non-useful clusters (§2.3 extension).
  if (options.include_partial_mappings) {
    generate::PartialMappingGenerator partial_generator(personal, objective,
                                                        options.partial);
    for (size_t ci : non_useful) {
      if (monitor.ShouldStop()) break;
      XSM_RETURN_NOT_OK(partial_generator.Generate(
          all_candidates[ci], index_.tree(all_candidates[ci].tree),
          &result.partial_mappings, &stats.partial_generator, &monitor));
    }
    std::sort(result.partial_mappings.begin(),
              result.partial_mappings.end(),
              generate::PartialMappingOrder());
    stats.num_partial_mappings = result.partial_mappings.size();
  }

  stats.time_generation_seconds = timer.ElapsedSeconds();

  stats.avg_elements_per_useful_cluster =
      stats.num_useful_clusters == 0
          ? 0.0
          : static_cast<double>(useful_pairs) /
                static_cast<double>(stats.num_useful_clusters);

  // --- Stage ⑤: one ranked list. ------------------------------------------
  generate_span.reset();
  obs::ScopedSpan merge_span(trace, "topk_merge");
  std::sort(result.mappings.begin(), result.mappings.end(),
            generate::MappingOrder());
  stats.num_mappings = result.mappings.size();
  if (options.top_n > 0 && result.mappings.size() > options.top_n) {
    result.mappings.resize(options.top_n);
  }
  result.execution = monitor.status();
  if (observer != nullptr) observer->OnFinish(result);
  return result;
}

}  // namespace xsm::core
