// Cooperative execution control for anytime matching runs (§7 future work:
// improving time-to-first good mapping requires an API that can *stop*).
//
// A matching run is no longer all-or-nothing: callers hand MatchWithState an
// ExecutionControl carrying a shared CancelToken, an absolute wall-clock
// deadline, and an early-exit mapping budget. The generator inner loops poll
// an ExecutionMonitor at node-expansion granularity, so a run stops within
// one candidate trial of the signal and returns everything found so far with
// a typed terminal status (MatchResult::execution).
//
// This header is deliberately dependency-free (std only): the generate layer
// includes it without pulling in the rest of core.
#ifndef XSM_CORE_EXECUTION_CONTROL_H_
#define XSM_CORE_EXECUTION_CONTROL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>

namespace xsm::obs {
class TraceContext;  // obs/trace.h — forward-declared to stay std-only
}  // namespace xsm::obs

namespace xsm::core {

/// Why a matching run stopped.
enum class ExecutionStatus {
  kCompleted = 0,         ///< ran to the natural end of the search
  kCancelled = 1,         ///< CancelToken fired
  kDeadlineExceeded = 2,  ///< wall-clock deadline passed
  kEarlyStopped = 3,      ///< stop_after_n_mappings budget reached
};

/// Stable lowercase name: "completed", "cancelled", "deadline_exceeded",
/// "early_stopped".
std::string_view ExecutionStatusName(ExecutionStatus status);

/// Shared cancellation flag. Copies share one flag, so a caller keeps a
/// token, hands a copy to the run (possibly on another thread), and flips
/// both with one Cancel(). Thread-safe; cancellation is sticky.
class CancelToken {
 public:
  CancelToken() : cancelled_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() const { cancelled_->store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> cancelled_;
};

/// Flow-control limits of one matching run. Default-constructed: unlimited
/// (the run behaves exactly like the historical blocking API).
struct ExecutionControl {
  /// Cooperative cancellation; keep a copy to Cancel() from another thread.
  CancelToken cancel;

  /// Absolute wall-clock deadline. Absolute (not a duration) so queue wait
  /// in a serving layer counts against it.
  std::optional<std::chrono::steady_clock::time_point> deadline;

  /// Stop after this many mappings (Δ ≥ δ) have been emitted; 0 = no limit.
  /// The run keeps the mappings found and reports kEarlyStopped only if the
  /// budget actually cut the search short.
  uint64_t stop_after_n_mappings = 0;

  /// Per-query span collector (obs/trace.h); nullptr = tracing off. Not
  /// part of any cache key — purely observational. Instrumented stages
  /// are null-safe, so the untraced path pays one pointer test.
  obs::TraceContext* trace = nullptr;

  /// Convenience: a control whose deadline is `seconds` from now.
  static ExecutionControl WithDeadline(double seconds);

  /// True if any limit is configured (a cancel token always is).
  bool limited() const {
    return deadline.has_value() || stop_after_n_mappings != 0;
  }
};

/// Per-run polling state over one ExecutionControl, shared by every
/// generator call of the run. ShouldStop() is the hot-path check: the cancel
/// flag (one relaxed atomic load) and the mapping budget are checked every
/// call, the clock only every kDeadlineStride calls. The first non-OK
/// verdict is sticky. Not thread-safe — one monitor per run, polled from the
/// run's own thread.
class ExecutionMonitor {
 public:
  /// No control: never stops (blocking behaviour).
  ExecutionMonitor() = default;
  /// `control` must outlive the monitor.
  explicit ExecutionMonitor(const ExecutionControl& control)
      : control_(&control) {}

  /// Returns true when the run must stop, recording why in status().
  bool ShouldStop();

  /// Records one emitted mapping: advances the early-stop budget and fires
  /// on_emit. Called by the generators right after appending to the output.
  void RecordEmitted() {
    ++emitted_;
    if (on_emit) on_emit();
  }

  /// Records one emitted partial mapping (observer hook only; partial
  /// mappings do not consume the stop_after_n_mappings budget).
  void RecordPartialEmitted() {
    if (on_partial_emit) on_partial_emit();
  }

  ExecutionStatus status() const { return status_; }
  bool stopped() const { return status_ != ExecutionStatus::kCompleted; }
  uint64_t emitted() const { return emitted_; }

  /// Fired by RecordEmitted / RecordPartialEmitted; the new mapping is the
  /// last element of the run's output vector. Wired to MatchObserver by
  /// Bellflower; empty by default.
  std::function<void()> on_emit;
  std::function<void()> on_partial_emit;

 private:
  /// Node expansions between deadline clock reads. The first ShouldStop()
  /// reads the clock immediately, so an already-expired deadline stops the
  /// run before any work.
  static constexpr uint32_t kDeadlineStride = 128;

  const ExecutionControl* control_ = nullptr;
  ExecutionStatus status_ = ExecutionStatus::kCompleted;
  uint64_t emitted_ = 0;
  uint32_t until_clock_check_ = 0;
};

}  // namespace xsm::core

#endif  // XSM_CORE_EXECUTION_CONTROL_H_
