// Preservation analysis for Fig. 5 / Fig. 6: what fraction of the
// non-clustered baseline's mappings does a clustered run retain, as a
// function of the objective threshold δ?
#ifndef XSM_CORE_PRESERVATION_H_
#define XSM_CORE_PRESERVATION_H_

#include <cstddef>
#include <vector>

#include "generate/schema_mapping.h"

namespace xsm::core {

/// One point of the preservation curve.
struct PreservationPoint {
  double delta = 0;
  size_t baseline_count = 0;   ///< baseline mappings with Δ ≥ delta
  size_t clustered_count = 0;  ///< clustered mappings with Δ ≥ delta
  /// clustered / baseline; defined as 1.0 where the baseline is empty.
  double preserved = 1.0;
};

/// Computes the curve on `num_points` thresholds evenly spaced over
/// [delta_min, delta_max] (inclusive). Inputs need not be sorted.
std::vector<PreservationPoint> PreservationCurve(
    const std::vector<generate::SchemaMapping>& baseline,
    const std::vector<generate::SchemaMapping>& clustered, double delta_min,
    double delta_max, int num_points);

/// True if every clustered mapping assignment also appears in the baseline
/// (clustering may only lose mappings, never invent them). O(n log n).
bool IsSubsetOf(const std::vector<generate::SchemaMapping>& clustered,
                const std::vector<generate::SchemaMapping>& baseline);

}  // namespace xsm::core

#endif  // XSM_CORE_PRESERVATION_H_
