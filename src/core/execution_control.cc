#include "core/execution_control.h"

namespace xsm::core {

std::string_view ExecutionStatusName(ExecutionStatus status) {
  switch (status) {
    case ExecutionStatus::kCompleted:
      return "completed";
    case ExecutionStatus::kCancelled:
      return "cancelled";
    case ExecutionStatus::kDeadlineExceeded:
      return "deadline_exceeded";
    case ExecutionStatus::kEarlyStopped:
      return "early_stopped";
  }
  return "unknown";
}

ExecutionControl ExecutionControl::WithDeadline(double seconds) {
  ExecutionControl control;
  control.deadline = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(seconds));
  return control;
}

bool ExecutionMonitor::ShouldStop() {
  if (status_ != ExecutionStatus::kCompleted) return true;
  if (control_ == nullptr) return false;
  if (control_->cancel.cancelled()) {
    status_ = ExecutionStatus::kCancelled;
    return true;
  }
  if (control_->stop_after_n_mappings != 0 &&
      emitted_ >= control_->stop_after_n_mappings) {
    status_ = ExecutionStatus::kEarlyStopped;
    return true;
  }
  if (control_->deadline.has_value()) {
    if (until_clock_check_ == 0) {
      until_clock_check_ = kDeadlineStride;
      if (std::chrono::steady_clock::now() >= *control_->deadline) {
        status_ = ExecutionStatus::kDeadlineExceeded;
        return true;
      }
    } else {
      --until_clock_check_;
    }
  }
  return false;
}

}  // namespace xsm::core
