#include "core/preservation.h"

#include <algorithm>
#include <cassert>

namespace xsm::core {

using generate::SchemaMapping;

std::vector<PreservationPoint> PreservationCurve(
    const std::vector<SchemaMapping>& baseline,
    const std::vector<SchemaMapping>& clustered, double delta_min,
    double delta_max, int num_points) {
  assert(num_points >= 2);
  assert(delta_min <= delta_max);

  // Sort deltas ascending; count above threshold via binary search.
  std::vector<double> base_deltas;
  base_deltas.reserve(baseline.size());
  for (const auto& m : baseline) base_deltas.push_back(m.delta);
  std::sort(base_deltas.begin(), base_deltas.end());
  std::vector<double> clus_deltas;
  clus_deltas.reserve(clustered.size());
  for (const auto& m : clustered) clus_deltas.push_back(m.delta);
  std::sort(clus_deltas.begin(), clus_deltas.end());

  auto count_at_least = [](const std::vector<double>& v, double threshold) {
    return static_cast<size_t>(
        v.end() - std::lower_bound(v.begin(), v.end(), threshold));
  };

  std::vector<PreservationPoint> curve;
  curve.reserve(static_cast<size_t>(num_points));
  double step = (delta_max - delta_min) / static_cast<double>(num_points - 1);
  for (int i = 0; i < num_points; ++i) {
    PreservationPoint p;
    p.delta = delta_min + step * i;
    p.baseline_count = count_at_least(base_deltas, p.delta);
    p.clustered_count = count_at_least(clus_deltas, p.delta);
    p.preserved = p.baseline_count == 0
                      ? 1.0
                      : static_cast<double>(p.clustered_count) /
                            static_cast<double>(p.baseline_count);
    curve.push_back(p);
  }
  return curve;
}

bool IsSubsetOf(const std::vector<SchemaMapping>& clustered,
                const std::vector<SchemaMapping>& baseline) {
  // Compare by assignment identity (tree, images).
  auto key_less = [](const SchemaMapping& a, const SchemaMapping& b) {
    if (a.tree != b.tree) return a.tree < b.tree;
    return a.images < b.images;
  };
  std::vector<const SchemaMapping*> base_sorted;
  base_sorted.reserve(baseline.size());
  for (const auto& m : baseline) base_sorted.push_back(&m);
  std::sort(base_sorted.begin(), base_sorted.end(),
            [&](const SchemaMapping* a, const SchemaMapping* b) {
              return key_less(*a, *b);
            });
  for (const auto& m : clustered) {
    auto it = std::lower_bound(
        base_sorted.begin(), base_sorted.end(), &m,
        [&](const SchemaMapping* a, const SchemaMapping* b) {
          return key_less(*a, *b);
        });
    if (it == base_sorted.end() || !(*it)->SameAssignment(m)) return false;
  }
  return true;
}

}  // namespace xsm::core
