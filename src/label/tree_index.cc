#include "label/tree_index.h"

#include <algorithm>
#include <cassert>

namespace xsm::label {

using schema::NodeId;
using schema::SchemaTree;

TreeIndex TreeIndex::Build(const SchemaTree& tree) {
  TreeIndex idx;
  const size_t n = tree.size();
  if (n == 0) return idx;

  idx.depth_.resize(n);
  idx.pre_.resize(n);
  idx.post_.resize(n);
  idx.first_pos_.assign(n, -1);
  idx.euler_.reserve(2 * n);
  idx.euler_depth_.reserve(2 * n);

  // Iterative DFS producing the Euler tour and pre/post ranks. The stack
  // holds (node, next-child-index) frames.
  struct Frame {
    NodeId node;
    size_t next_child;
  };
  std::vector<Frame> stack;
  stack.push_back({tree.root(), 0});
  int32_t pre_counter = 0;
  int32_t post_counter = 0;
  idx.height_ = 0;

  auto visit = [&](NodeId v) {
    idx.euler_.push_back(v);
    idx.euler_depth_.push_back(idx.depth_[static_cast<size_t>(v)]);
  };

  idx.depth_[static_cast<size_t>(tree.root())] = 0;
  idx.pre_[static_cast<size_t>(tree.root())] = pre_counter++;
  idx.first_pos_[static_cast<size_t>(tree.root())] = 0;
  visit(tree.root());

  while (!stack.empty()) {
    Frame& f = stack.back();
    const auto& children = tree.children(f.node);
    if (f.next_child < children.size()) {
      NodeId c = children[f.next_child++];
      idx.depth_[static_cast<size_t>(c)] =
          idx.depth_[static_cast<size_t>(f.node)] + 1;
      idx.height_ =
          std::max(idx.height_, idx.depth_[static_cast<size_t>(c)]);
      idx.pre_[static_cast<size_t>(c)] = pre_counter++;
      idx.first_pos_[static_cast<size_t>(c)] =
          static_cast<int32_t>(idx.euler_.size());
      visit(c);
      stack.push_back({c, 0});
    } else {
      idx.post_[static_cast<size_t>(f.node)] = post_counter++;
      stack.pop_back();
      if (!stack.empty()) visit(stack.back().node);
    }
  }

  // Sparse table of minimum-depth positions over the Euler tour.
  const size_t m = idx.euler_.size();
  idx.log2_.resize(m + 1);
  idx.log2_[1] = 0;
  for (size_t i = 2; i <= m; ++i) {
    idx.log2_[i] = idx.log2_[i / 2] + 1;
  }
  int levels = idx.log2_[m] + 1;
  idx.sparse_.assign(static_cast<size_t>(levels), {});
  idx.sparse_[0].resize(m);
  for (size_t i = 0; i < m; ++i) {
    idx.sparse_[0][i] = static_cast<int32_t>(i);
  }
  for (int k = 1; k < levels; ++k) {
    size_t len = size_t{1} << k;
    idx.sparse_[static_cast<size_t>(k)].resize(m - len + 1);
    for (size_t i = 0; i + len <= m; ++i) {
      int32_t a = idx.sparse_[static_cast<size_t>(k - 1)][i];
      int32_t b = idx.sparse_[static_cast<size_t>(k - 1)][i + len / 2];
      idx.sparse_[static_cast<size_t>(k)][i] =
          idx.euler_depth_[static_cast<size_t>(a)] <=
                  idx.euler_depth_[static_cast<size_t>(b)]
              ? a
              : b;
    }
  }

  // Diameter via two passes of "farthest node": pick the deepest node from
  // the root, then the farthest node from it. Distances use the index we
  // just built (correct because LCA is ready at this point).
  if (n > 1) {
    NodeId a = 0;
    int best = -1;
    for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
      if (idx.depth_[static_cast<size_t>(v)] > best) {
        best = idx.depth_[static_cast<size_t>(v)];
        a = v;
      }
    }
    int diam = 0;
    for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
      diam = std::max(diam, idx.Distance(a, v));
    }
    idx.diameter_ = diam;
  }
  return idx;
}

void TreeIndex::SerializeTo(wire::Writer* out) const {
  // The labeling products that required a tree traversal are persisted:
  // the Euler tour, the rank arrays, and the depth-derived aggregates.
  // euler_depth_, log2_ and the RMQ sparse table are pure functions of
  // them (no tree access), rebuilt on load — cheaper to recompute than to
  // decode, checksum and range-validate, and consistent by construction.
  out->U64(depth_.size());
  out->I32Vec(depth_);
  out->I32Vec(pre_);
  out->I32Vec(post_);
  out->I32Vec(first_pos_);
  out->I32Vec(euler_);
  out->I32(diameter_);
  out->I32(height_);
}

Result<TreeIndex> TreeIndex::DeserializeBinary(wire::Reader* in,
                                               size_t expected_nodes) {
  TreeIndex idx;
  const uint64_t n = in->U64();
  in->I32Vec(&idx.depth_);
  in->I32Vec(&idx.pre_);
  in->I32Vec(&idx.post_);
  in->I32Vec(&idx.first_pos_);
  in->I32Vec(&idx.euler_);
  idx.diameter_ = in->I32();
  idx.height_ = in->I32();
  XSM_RETURN_NOT_OK(in->status());

  // Dimensional and range validation: every array Lca/Distance indexes
  // into must have exactly the shape Build would have produced, and every
  // stored position/node must be in range — so a logically inconsistent
  // (but CRC-clean) file can yield wrong answers at worst, never an
  // out-of-bounds access.
  auto corrupt = [](const char* what) {
    return Status::Corruption(std::string("tree index: ") + what);
  };
  if (n != expected_nodes) return corrupt("node count mismatch");
  if (idx.depth_.size() != n || idx.pre_.size() != n ||
      idx.post_.size() != n || idx.first_pos_.size() != n) {
    return corrupt("rank array size mismatch");
  }
  const size_t m = idx.euler_.size();
  if (m != (n == 0 ? 0 : 2 * n - 1)) {
    return corrupt("euler tour size mismatch");
  }
  for (size_t i = 0; i < m; ++i) {
    if (idx.euler_[i] < 0 || static_cast<uint64_t>(idx.euler_[i]) >= n) {
      return corrupt("euler entry out of range");
    }
  }
  for (size_t v = 0; v < n; ++v) {
    if (idx.first_pos_[v] < 0 ||
        static_cast<size_t>(idx.first_pos_[v]) >= m) {
      return corrupt("first position out of range");
    }
  }
  if (n == 0) return idx;

  // Rebuild the derived arrays (identically to Build, which makes the
  // sparse table valid by construction: every stored position is a tour
  // position).
  idx.euler_depth_.resize(m);
  for (size_t i = 0; i < m; ++i) {
    idx.euler_depth_[i] = idx.depth_[static_cast<size_t>(idx.euler_[i])];
  }
  idx.log2_.resize(m + 1);
  idx.log2_[1] = 0;
  for (size_t i = 2; i <= m; ++i) idx.log2_[i] = idx.log2_[i / 2] + 1;
  int levels = idx.log2_[m] + 1;
  idx.sparse_.assign(static_cast<size_t>(levels), {});
  idx.sparse_[0].resize(m);
  for (size_t i = 0; i < m; ++i) {
    idx.sparse_[0][i] = static_cast<int32_t>(i);
  }
  for (int k = 1; k < levels; ++k) {
    size_t len = size_t{1} << k;
    idx.sparse_[static_cast<size_t>(k)].resize(m - len + 1);
    for (size_t i = 0; i + len <= m; ++i) {
      int32_t a = idx.sparse_[static_cast<size_t>(k - 1)][i];
      int32_t b = idx.sparse_[static_cast<size_t>(k - 1)][i + len / 2];
      idx.sparse_[static_cast<size_t>(k)][i] =
          idx.euler_depth_[static_cast<size_t>(a)] <=
                  idx.euler_depth_[static_cast<size_t>(b)]
              ? a
              : b;
    }
  }
  return idx;
}

NodeId TreeIndex::Lca(NodeId u, NodeId v) const {
  assert(u >= 0 && static_cast<size_t>(u) < depth_.size());
  assert(v >= 0 && static_cast<size_t>(v) < depth_.size());
  int32_t l = first_pos_[static_cast<size_t>(u)];
  int32_t r = first_pos_[static_cast<size_t>(v)];
  if (l > r) std::swap(l, r);
  size_t len = static_cast<size_t>(r - l + 1);
  int k = log2_[len];
  int32_t a = sparse_[static_cast<size_t>(k)][static_cast<size_t>(l)];
  int32_t b = sparse_[static_cast<size_t>(k)]
                     [static_cast<size_t>(r) - (size_t{1} << k) + 1];
  int32_t pos = euler_depth_[static_cast<size_t>(a)] <=
                        euler_depth_[static_cast<size_t>(b)]
                    ? a
                    : b;
  return euler_[static_cast<size_t>(pos)];
}

int TreeIndex::Distance(NodeId u, NodeId v) const {
  NodeId l = Lca(u, v);
  return depth_[static_cast<size_t>(u)] + depth_[static_cast<size_t>(v)] -
         2 * depth_[static_cast<size_t>(l)];
}

bool TreeIndex::IsAncestorOrSelf(NodeId anc, NodeId desc) const {
  return pre_[static_cast<size_t>(anc)] <= pre_[static_cast<size_t>(desc)] &&
         post_[static_cast<size_t>(anc)] >= post_[static_cast<size_t>(desc)];
}

ForestIndex ForestIndex::Build(const schema::SchemaForest& forest) {
  ForestIndex fi;
  fi.indexes_.reserve(forest.num_trees());
  for (schema::TreeId t = 0;
       t < static_cast<schema::TreeId>(forest.num_trees()); ++t) {
    fi.indexes_.push_back(
        std::make_shared<const TreeIndex>(TreeIndex::Build(forest.tree(t))));
    fi.max_diameter_ =
        std::max(fi.max_diameter_, fi.indexes_.back()->diameter());
  }
  return fi;
}

ForestIndex ForestIndex::FromParts(
    std::vector<std::shared_ptr<const TreeIndex>> parts) {
  ForestIndex fi;
  fi.indexes_ = std::move(parts);
  for (const auto& index : fi.indexes_) {
    fi.max_diameter_ = std::max(fi.max_diameter_, index->diameter());
  }
  return fi;
}

ForestIndex ForestIndex::BuildIncremental(
    const schema::SchemaForest& forest, const ForestIndex& previous,
    const std::vector<schema::TreeId>& reuse_map, IncrementalStats* stats) {
  assert(reuse_map.size() == forest.num_trees());
  ForestIndex fi;
  fi.indexes_.reserve(forest.num_trees());
  IncrementalStats local;
  for (schema::TreeId t = 0;
       t < static_cast<schema::TreeId>(forest.num_trees()); ++t) {
    schema::TreeId prev = reuse_map[static_cast<size_t>(t)];
    if (prev >= 0 &&
        static_cast<size_t>(prev) < previous.num_trees() &&
        previous.tree(prev).num_nodes() == forest.tree(t).size()) {
      fi.indexes_.push_back(previous.tree_ptr(prev));
      ++local.trees_reused;
    } else {
      fi.indexes_.push_back(
          std::make_shared<const TreeIndex>(TreeIndex::Build(forest.tree(t))));
      ++local.trees_rebuilt;
    }
    fi.max_diameter_ =
        std::max(fi.max_diameter_, fi.indexes_.back()->diameter());
  }
  if (stats != nullptr) *stats = local;
  return fi;
}

void ForestIndex::SerializeTo(wire::Writer* out) const {
  out->U64(indexes_.size());
  for (const std::shared_ptr<const TreeIndex>& index : indexes_) {
    index->SerializeTo(out);
  }
}

Result<ForestIndex> ForestIndex::DeserializeBinary(
    wire::Reader* in, const schema::SchemaForest& forest) {
  const uint64_t count = in->U64();
  if (in->ok() && count != forest.num_trees()) {
    return Status::Corruption("forest index: tree count mismatch");
  }
  ForestIndex fi;
  fi.indexes_.reserve(forest.num_trees());
  for (schema::TreeId t = 0;
       t < static_cast<schema::TreeId>(forest.num_trees()); ++t) {
    XSM_ASSIGN_OR_RETURN(
        TreeIndex index,
        TreeIndex::DeserializeBinary(in, forest.tree(t).size()));
    fi.max_diameter_ = std::max(fi.max_diameter_, index.diameter());
    fi.indexes_.push_back(
        std::make_shared<const TreeIndex>(std::move(index)));
  }
  XSM_RETURN_NOT_OK(in->status());
  return fi;
}

}  // namespace xsm::label
