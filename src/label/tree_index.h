// Node-labeling substrate for constant-time structural queries.
//
// The paper (§4 "Distance measure") relies on node-labeling techniques
// [Kaplan & Milo] for "low-cost computation of path lengths" — clustering
// computes tree distances in its innermost loop, and the objective function
// needs path lengths per candidate mapping. We label each tree with an Euler
// tour + sparse-table LCA structure (O(n log n) build, O(1) query) and with
// pre/post intervals for O(1) ancestor tests.
#ifndef XSM_LABEL_TREE_INDEX_H_
#define XSM_LABEL_TREE_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "schema/schema_forest.h"
#include "schema/schema_tree.h"
#include "util/wire.h"

namespace xsm::label {

/// Distance/ancestor oracle over one SchemaTree.
class TreeIndex {
 public:
  TreeIndex() = default;

  /// Builds the index; `tree` must outlive only this call (the index copies
  /// what it needs).
  static TreeIndex Build(const schema::SchemaTree& tree);

  size_t num_nodes() const { return depth_.size(); }

  /// Lowest common ancestor of u and v.
  schema::NodeId Lca(schema::NodeId u, schema::NodeId v) const;

  /// Path length (number of edges) between u and v — the paper's tree
  /// distance used both in Δpath and as the clustering distance measure.
  int Distance(schema::NodeId u, schema::NodeId v) const;

  /// True if `anc` is `desc` or an ancestor of `desc` (interval labeling).
  bool IsAncestorOrSelf(schema::NodeId anc, schema::NodeId desc) const;

  int depth(schema::NodeId n) const {
    return depth_[static_cast<size_t>(n)];
  }

  /// Length of the longest simple path in the tree. Used to derive the
  /// paper's K normalization constant ("determined using other constraints
  /// in the system, e.g., the maximum length of a path").
  int diameter() const { return diameter_; }

  /// Maximum node depth (tree height in edges).
  int height() const { return height_; }

  /// Binary serialization hook for the snapshot store: the traversal
  /// products (Euler tour, rank arrays, depth aggregates) verbatim, so a
  /// load never walks the tree again. The RMQ sparse table — a pure
  /// function of the tour — is rebuilt on load rather than stored:
  /// recomputing it is cheaper than decoding and validating it, and it is
  /// then consistent by construction.
  void SerializeTo(wire::Writer* out) const;

  /// Inverse of SerializeTo. `expected_nodes` is the size of the tree this
  /// index must label; any dimensional or range inconsistency (which would
  /// otherwise be out-of-bounds reads in Lca/Distance) fails with
  /// Corruption.
  static Result<TreeIndex> DeserializeBinary(wire::Reader* in,
                                             size_t expected_nodes);

 private:
  // Euler tour arrays.
  std::vector<int32_t> euler_;        // node at each tour position
  std::vector<int32_t> first_pos_;    // first tour position of node
  std::vector<int32_t> euler_depth_;  // depth at each tour position
  // Sparse table over euler_depth_: sparse_[k][i] = position of the minimum
  // depth in tour window [i, i + 2^k).
  std::vector<std::vector<int32_t>> sparse_;
  std::vector<int32_t> log2_;  // floor(log2(i)) lookup

  std::vector<int32_t> depth_;
  std::vector<int32_t> pre_;   // pre-order rank
  std::vector<int32_t> post_;  // post-order rank
  int diameter_ = 0;
  int height_ = 0;
};

/// Per-tree indexes for a whole forest, plus forest-level aggregates.
/// Distances across trees are "infinite": the clustering and the generator
/// never combine nodes of different trees.
///
/// Tree indexes are held as shared_ptr<const TreeIndex>, so an index built
/// incrementally for a successor forest shares the untouched trees' labeling
/// structures with its predecessor instead of rebuilding them.
class ForestIndex {
 public:
  /// How much of an incremental build was actually reused.
  struct IncrementalStats {
    size_t trees_reused = 0;   ///< TreeIndex shared from the previous index
    size_t trees_rebuilt = 0;  ///< TreeIndex::Build actually ran
  };

  ForestIndex() = default;

  static ForestIndex Build(const schema::SchemaForest& forest);

  /// Builds the index for `forest` reusing `previous` where possible:
  /// `reuse_map[t]` names the tree of the previous forest that new tree `t`
  /// is (the identical frozen payload), or -1 when `t` is new or changed
  /// and must be labeled from scratch. The result is equivalent to
  /// Build(forest); only the work differs. `stats` (may be null) reports
  /// the reuse split.
  static ForestIndex BuildIncremental(
      const schema::SchemaForest& forest, const ForestIndex& previous,
      const std::vector<schema::TreeId>& reuse_map,
      IncrementalStats* stats = nullptr);

  /// Assembles a forest index from already-built per-tree indexes (in
  /// TreeId order) without labeling anything. The sharded backend uses this
  /// to federate K shard indexes into one global-view index: the per-tree
  /// structures are shared, so the assembly is O(num_trees) pointer copies
  /// and the result is equivalent to Build over the concatenated forest.
  static ForestIndex FromParts(
      std::vector<std::shared_ptr<const TreeIndex>> parts);

  const TreeIndex& tree(schema::TreeId id) const {
    return *indexes_[static_cast<size_t>(id)];
  }
  /// Shared handle of one tree's index (identity across generations is
  /// observable through pointer equality).
  const std::shared_ptr<const TreeIndex>& tree_ptr(schema::TreeId id) const {
    return indexes_[static_cast<size_t>(id)];
  }
  size_t num_trees() const { return indexes_.size(); }

  /// Sentinel distance for nodes in different trees.
  static constexpr int kInfiniteDistance = 1 << 28;

  /// Tree distance if `a` and `b` are in the same tree, kInfiniteDistance
  /// otherwise.
  int Distance(schema::NodeRef a, schema::NodeRef b) const {
    if (a.tree != b.tree) return kInfiniteDistance;
    return tree(a.tree).Distance(a.node, b.node);
  }

  /// Largest diameter over all member trees.
  int max_diameter() const { return max_diameter_; }

  /// Binary serialization hooks for the snapshot store (per-tree
  /// TreeIndex::SerializeTo in TreeId order). Deserialization validates
  /// each index against the corresponding tree of `forest`.
  void SerializeTo(wire::Writer* out) const;
  static Result<ForestIndex> DeserializeBinary(
      wire::Reader* in, const schema::SchemaForest& forest);

 private:
  std::vector<std::shared_ptr<const TreeIndex>> indexes_;
  int max_diameter_ = 0;
};

}  // namespace xsm::label

#endif  // XSM_LABEL_TREE_INDEX_H_
