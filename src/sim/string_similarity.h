// String similarity kernels for element matching.
//
// Bellflower's single element matcher is CompareStringFuzzy from the
// proprietary FuzzySearch library: "a normalized string similarity based on
// character substitution, insertion, exclusion, and transposition". Those
// are exactly the Damerau–Levenshtein edit operations, so the reproduction
// uses normalized Damerau–Levenshtein (optimal string alignment variant) as
// the drop-in substitute. Additional kernels (Jaro–Winkler, n-gram Dice,
// token Jaccard) support the multi-matcher architecture of Fig. 2.
//
// The matching engine scores every (personal node, distinct repository
// name) pair, so the hot kernels come in threshold-aware, scratch-reusing
// variants: length bounds and a banded DP with early abandon skip the bulk
// of the O(|a|·|b|) work for pairs that cannot reach the matcher threshold
// (the standard pruning toolkit of the approximate-string-join literature).
#ifndef XSM_SIM_STRING_SIMILARITY_H_
#define XSM_SIM_STRING_SIMILARITY_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace xsm::sim {

/// Reusable DP rows for the edit-distance kernels. Callers scoring many
/// pairs keep one scratch per thread so each call is allocation-free after
/// warm-up; the buffers grow to the longest string seen and stay there.
struct EditDistanceScratch {
  std::vector<int> prev2;
  std::vector<int> prev;
  std::vector<int> cur;
};

/// Compact character-class histogram of a (lowercased) name: 26 letter
/// buckets, one digit bucket, one other bucket, saturating at 255. The bag
/// distance between two signatures — the insertions/deletions needed to
/// equalize the multisets — lower-bounds the edit distance (every edit op
/// moves at most one character in or out of the bag; transpositions move
/// none), so signatures cached per dictionary entry reject most candidate
/// pairs without running any DP. Signatures over case-folded strings also
/// bound the case-sensitive distance: folding never increases it.
struct NameSignature {
  static constexpr size_t kBuckets = 28;
  uint8_t counts[kBuckets] = {};

  static NameSignature Of(std::string_view lower);

  /// max(surplus, deficit) across buckets; a lower bound on
  /// DamerauLevenshteinDistance of the underlying strings (saturated
  /// buckets only ever weaken the bound, never overstate it).
  int BagDistance(const NameSignature& other) const;
};

/// Damerau–Levenshtein distance (optimal string alignment: substitution,
/// insertion, deletion/"exclusion", adjacent transposition; a substring is
/// never edited twice). O(|a|·|b|) time, O(min) memory.
int DamerauLevenshteinDistance(std::string_view a, std::string_view b);

/// Scratch-reusing overload; `scratch` may be null (per-call buffers).
int DamerauLevenshteinDistance(std::string_view a, std::string_view b,
                               EditDistanceScratch* scratch);

/// Plain Levenshtein distance (no transpositions), for comparison/ablation.
int LevenshteinDistance(std::string_view a, std::string_view b);

/// Bounded Damerau–Levenshtein: returns the exact distance when it is
/// <= max_dist, and max_dist + 1 otherwise. Runs the DP banded to the
/// diagonal strip |i - j| <= max_dist and abandons early once two
/// consecutive row minima exceed the bound, so far-apart strings cost
/// O(max_dist · min(|a|,|b|)) instead of O(|a|·|b|). `max_dist` must be
/// >= 0; `scratch` may be null.
int BoundedDamerauLevenshteinDistance(std::string_view a, std::string_view b,
                                      int max_dist,
                                      EditDistanceScratch* scratch = nullptr);

/// Normalized similarity in [0,1]: 1 - dist / max(|a|,|b|); 1.0 for two
/// empty strings. This is the CompareStringFuzzy stand-in.
double FuzzyStringSimilarity(std::string_view a, std::string_view b);

/// Case-insensitive variant of FuzzyStringSimilarity (names on the web mix
/// conventions: "AuthorName" vs "authorname").
double FuzzyStringSimilarityIgnoreCase(std::string_view a,
                                       std::string_view b);

/// Threshold-aware FuzzyStringSimilarity: returns the exact similarity
/// whenever it is >= threshold, and some value < threshold (currently 0.0)
/// otherwise. The admissible edit distance implied by the threshold drives
/// a length-difference pre-filter and the banded bounded DP above, and is
/// derived with the same floating-point expressions the full computation
/// uses, so `result >= threshold` holds for exactly the same pairs as with
/// FuzzyStringSimilarity — this is what keeps the pruned matching engine
/// bit-identical to the exhaustive one. `threshold` must be in [0,1].
double FuzzyStringSimilarityWithThreshold(std::string_view a,
                                          std::string_view b,
                                          double threshold,
                                          EditDistanceScratch* scratch =
                                              nullptr);

/// Signature-assisted variant: `sig_a` / `sig_b` (either may be null) are
/// NameSignatures of case-folds of `a` / `b`; pairs whose bag distance
/// already exceeds the admissible edit distance are rejected before the
/// DP. Same exactness contract as the overload above.
double FuzzyStringSimilarityWithThreshold(std::string_view a,
                                          std::string_view b,
                                          double threshold,
                                          EditDistanceScratch* scratch,
                                          const NameSignature* sig_a,
                                          const NameSignature* sig_b);

/// Jaro similarity in [0,1].
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro–Winkler similarity with standard prefix scaling (p=0.1, max prefix
/// 4).
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Dice coefficient over character n-grams (default trigrams) of the
/// lowercased inputs, with one-character boundary padding.
double NgramDiceSimilarity(std::string_view a, std::string_view b, int n = 3);

/// NgramDiceSimilarity for inputs that are already lowercase (e.g. the name
/// dictionary's cached forms): skips the per-call ToLower copies. Grams of
/// up to 8 characters are packed into integer codes held in small sorted
/// vectors, so no per-gram heap allocation happens either.
double NgramDiceSimilarityPrelowered(std::string_view a, std::string_view b,
                                     int n = 3);

}  // namespace xsm::sim

#endif  // XSM_SIM_STRING_SIMILARITY_H_
