// String similarity kernels for element matching.
//
// Bellflower's single element matcher is CompareStringFuzzy from the
// proprietary FuzzySearch library: "a normalized string similarity based on
// character substitution, insertion, exclusion, and transposition". Those
// are exactly the Damerau–Levenshtein edit operations, so the reproduction
// uses normalized Damerau–Levenshtein (optimal string alignment variant) as
// the drop-in substitute. Additional kernels (Jaro–Winkler, n-gram Dice,
// token Jaccard) support the multi-matcher architecture of Fig. 2.
#ifndef XSM_SIM_STRING_SIMILARITY_H_
#define XSM_SIM_STRING_SIMILARITY_H_

#include <string_view>

namespace xsm::sim {

/// Damerau–Levenshtein distance (optimal string alignment: substitution,
/// insertion, deletion/"exclusion", adjacent transposition; a substring is
/// never edited twice). O(|a|·|b|) time, O(min) memory.
int DamerauLevenshteinDistance(std::string_view a, std::string_view b);

/// Plain Levenshtein distance (no transpositions), for comparison/ablation.
int LevenshteinDistance(std::string_view a, std::string_view b);

/// Normalized similarity in [0,1]: 1 - dist / max(|a|,|b|); 1.0 for two
/// empty strings. This is the CompareStringFuzzy stand-in.
double FuzzyStringSimilarity(std::string_view a, std::string_view b);

/// Case-insensitive variant of FuzzyStringSimilarity (names on the web mix
/// conventions: "AuthorName" vs "authorname").
double FuzzyStringSimilarityIgnoreCase(std::string_view a,
                                       std::string_view b);

/// Jaro similarity in [0,1].
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro–Winkler similarity with standard prefix scaling (p=0.1, max prefix
/// 4).
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Dice coefficient over character n-grams (default trigrams) of the
/// lowercased inputs, with one-character boundary padding.
double NgramDiceSimilarity(std::string_view a, std::string_view b, int n = 3);

}  // namespace xsm::sim

#endif  // XSM_SIM_STRING_SIMILARITY_H_
