#include "sim/synonym_dictionary.h"

#include <algorithm>

#include "util/string_util.h"

namespace xsm::sim {

SynonymDictionary::SynonymDictionary(
    const std::vector<std::vector<std::string>>& groups) {
  for (const auto& g : groups) AddGroup(g);
}

void SynonymDictionary::AddGroup(const std::vector<std::string>& group) {
  int id = static_cast<int>(num_groups_++);
  for (const std::string& term : group) {
    term_groups_[ToLower(term)].push_back(id);
  }
}

bool SynonymDictionary::AreSynonyms(std::string_view a,
                                    std::string_view b) const {
  auto ia = term_groups_.find(ToLower(a));
  if (ia == term_groups_.end()) return false;
  auto ib = term_groups_.find(ToLower(b));
  if (ib == term_groups_.end()) return false;
  for (int ga : ia->second) {
    if (std::find(ib->second.begin(), ib->second.end(), ga) !=
        ib->second.end()) {
      return true;
    }
  }
  return false;
}

double SynonymDictionary::Score(std::string_view a, std::string_view b,
                                double synonym_score) const {
  if (ToLower(a) == ToLower(b)) return 1.0;
  return AreSynonyms(a, b) ? synonym_score : 0.0;
}

const SynonymDictionary& SynonymDictionary::Default() {
  static const SynonymDictionary* kDefault = [] {
    auto* d = new SynonymDictionary();
    d->AddGroup({"name", "title", "label", "caption"});
    d->AddGroup({"name", "fullname", "personname"});
    d->AddGroup({"address", "addr", "location", "residence"});
    d->AddGroup({"email", "mail", "emailaddress", "e-mail"});
    d->AddGroup({"phone", "telephone", "tel", "phonenumber"});
    d->AddGroup({"author", "writer", "creator", "contributor"});
    d->AddGroup({"book", "publication", "volume"});
    d->AddGroup({"price", "cost", "amount", "charge"});
    d->AddGroup({"company", "organization", "organisation", "firm"});
    d->AddGroup({"person", "individual", "contact"});
    d->AddGroup({"city", "town", "municipality"});
    d->AddGroup({"country", "nation", "state"});
    d->AddGroup({"zip", "zipcode", "postcode", "postalcode"});
    d->AddGroup({"id", "identifier", "key", "code"});
    d->AddGroup({"date", "day", "timestamp"});
    d->AddGroup({"description", "desc", "summary", "abstract"});
    d->AddGroup({"quantity", "qty", "count", "number"});
    d->AddGroup({"order", "purchase", "transaction"});
    d->AddGroup({"customer", "client", "buyer"});
    d->AddGroup({"item", "product", "article", "goods"});
    return d;
  }();
  return *kDefault;
}

}  // namespace xsm::sim
