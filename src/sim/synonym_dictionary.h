// Synonym dictionary: an "external data source" hint in the sense of the
// paper's §1 (dictionaries of synonyms). Used by the optional synonym
// element matcher and by the synthetic repository generator's vocabulary.
#ifndef XSM_SIM_SYNONYM_DICTIONARY_H_
#define XSM_SIM_SYNONYM_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace xsm::sim {

/// Groups of interchangeable lowercase terms. Lookup is by exact lowercase
/// match; two terms are synonymous iff they share a group.
class SynonymDictionary {
 public:
  SynonymDictionary() = default;

  /// Builds from explicit groups; terms are lowercased. A term may appear in
  /// multiple groups.
  explicit SynonymDictionary(
      const std::vector<std::vector<std::string>>& groups);

  /// A dictionary preloaded with common XML-schema vocabulary (person,
  /// address, publication, commerce domains).
  static const SynonymDictionary& Default();

  /// Adds one synonym group.
  void AddGroup(const std::vector<std::string>& group);

  /// True if `a` and `b` share at least one group (case-insensitive).
  bool AreSynonyms(std::string_view a, std::string_view b) const;

  /// 1.0 for equal (case-insensitive) terms, `synonym_score` for synonyms,
  /// 0.0 otherwise.
  double Score(std::string_view a, std::string_view b,
               double synonym_score = 0.9) const;

  size_t num_groups() const { return num_groups_; }

 private:
  std::unordered_map<std::string, std::vector<int>> term_groups_;
  size_t num_groups_ = 0;
};

}  // namespace xsm::sim

#endif  // XSM_SIM_SYNONYM_DICTIONARY_H_
