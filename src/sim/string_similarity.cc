#include "sim/string_similarity.h"

#include <algorithm>
#include <cctype>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/string_util.h"

namespace xsm::sim {

namespace {

// Shared scratch row buffers would make the functions non-reentrant; sizes
// here are short identifier names, so per-call vectors are fine.

int EditDistanceImpl(std::string_view a, std::string_view b,
                     bool transpositions) {
  const size_t la = a.size();
  const size_t lb = b.size();
  if (la == 0) return static_cast<int>(lb);
  if (lb == 0) return static_cast<int>(la);

  // Three rolling rows: i-2, i-1, i (the i-2 row is needed only for the
  // transposition case).
  std::vector<int> prev2(lb + 1);
  std::vector<int> prev(lb + 1);
  std::vector<int> cur(lb + 1);
  for (size_t j = 0; j <= lb; ++j) prev[j] = static_cast<int>(j);

  for (size_t i = 1; i <= la; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= lb; ++j) {
      int cost = a[i - 1] == b[j - 1] ? 0 : 1;
      int best = std::min({prev[j] + 1,        // deletion (exclusion)
                           cur[j - 1] + 1,     // insertion
                           prev[j - 1] + cost  // substitution / match
      });
      if (transpositions && i > 1 && j > 1 && a[i - 1] == b[j - 2] &&
          a[i - 2] == b[j - 1]) {
        best = std::min(best, prev2[j - 2] + 1);  // transposition
      }
      cur[j] = best;
    }
    std::swap(prev2, prev);
    std::swap(prev, cur);
  }
  return prev[lb];
}

}  // namespace

int DamerauLevenshteinDistance(std::string_view a, std::string_view b) {
  return EditDistanceImpl(a, b, /*transpositions=*/true);
}

int LevenshteinDistance(std::string_view a, std::string_view b) {
  return EditDistanceImpl(a, b, /*transpositions=*/false);
}

double FuzzyStringSimilarity(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  int d = DamerauLevenshteinDistance(a, b);
  return 1.0 - static_cast<double>(d) / static_cast<double>(longest);
}

double FuzzyStringSimilarityIgnoreCase(std::string_view a,
                                       std::string_view b) {
  std::string la = ToLower(a);
  std::string lb = ToLower(b);
  return FuzzyStringSimilarity(la, lb);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  const size_t la = a.size();
  const size_t lb = b.size();
  if (la == 0 && lb == 0) return 1.0;
  if (la == 0 || lb == 0) return 0.0;

  const size_t window =
      std::max<size_t>(1, std::max(la, lb) / 2) - 1;
  std::vector<bool> a_matched(la, false);
  std::vector<bool> b_matched(lb, false);

  size_t matches = 0;
  for (size_t i = 0; i < la; ++i) {
    size_t lo = i > window ? i - window : 0;
    size_t hi = std::min(lb, i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = true;
      b_matched[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;

  // Count transpositions among matched characters.
  size_t t = 0;
  size_t j = 0;
  for (size_t i = 0; i < la; ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++t;
    ++j;
  }
  double m = static_cast<double>(matches);
  return (m / static_cast<double>(la) + m / static_cast<double>(lb) +
          (m - static_cast<double>(t) / 2.0) / m) /
         3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  size_t limit = std::min({a.size(), b.size(), size_t{4}});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * 0.1 * (1.0 - jaro);
}

double NgramDiceSimilarity(std::string_view a, std::string_view b, int n) {
  if (n < 1) n = 1;
  std::string la = ToLower(a);
  std::string lb = ToLower(b);
  if (la == lb) return 1.0;
  // Pad with one boundary marker on each side so short names still produce
  // grams.
  std::string pa = "^" + la + "$";
  std::string pb = "^" + lb + "$";
  if (pa.size() < static_cast<size_t>(n) ||
      pb.size() < static_cast<size_t>(n)) {
    return 0.0;
  }

  std::unordered_map<std::string, int> grams;
  size_t count_a = pa.size() - static_cast<size_t>(n) + 1;
  for (size_t i = 0; i < count_a; ++i) {
    ++grams[pa.substr(i, static_cast<size_t>(n))];
  }
  size_t count_b = pb.size() - static_cast<size_t>(n) + 1;
  size_t shared = 0;
  for (size_t i = 0; i < count_b; ++i) {
    auto it = grams.find(pb.substr(i, static_cast<size_t>(n)));
    if (it != grams.end() && it->second > 0) {
      --it->second;
      ++shared;
    }
  }
  return 2.0 * static_cast<double>(shared) /
         static_cast<double>(count_a + count_b);
}

}  // namespace xsm::sim
