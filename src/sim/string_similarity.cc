#include "sim/string_similarity.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/string_util.h"

namespace xsm::sim {

namespace {

// Larger than any reachable cell value, small enough that +1 never wraps.
constexpr int kInfDistance = 1 << 29;

int EditDistanceImpl(std::string_view a, std::string_view b,
                     bool transpositions, EditDistanceScratch* scratch) {
  const size_t la = a.size();
  const size_t lb = b.size();
  if (la == 0) return static_cast<int>(lb);
  if (lb == 0) return static_cast<int>(la);

  // Three rolling rows: i-2, i-1, i (the i-2 row is needed only for the
  // transposition case).
  EditDistanceScratch local;
  EditDistanceScratch& s = scratch != nullptr ? *scratch : local;
  if (s.prev2.size() < lb + 1) {
    s.prev2.resize(lb + 1);
    s.prev.resize(lb + 1);
    s.cur.resize(lb + 1);
  }
  std::vector<int>& prev2 = s.prev2;
  std::vector<int>& prev = s.prev;
  std::vector<int>& cur = s.cur;
  for (size_t j = 0; j <= lb; ++j) prev[j] = static_cast<int>(j);

  for (size_t i = 1; i <= la; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= lb; ++j) {
      int cost = a[i - 1] == b[j - 1] ? 0 : 1;
      int best = std::min({prev[j] + 1,        // deletion (exclusion)
                           cur[j - 1] + 1,     // insertion
                           prev[j - 1] + cost  // substitution / match
      });
      if (transpositions && i > 1 && j > 1 && a[i - 1] == b[j - 2] &&
          a[i - 2] == b[j - 1]) {
        best = std::min(best, prev2[j - 2] + 1);  // transposition
      }
      cur[j] = best;
    }
    std::swap(prev2, prev);
    std::swap(prev, cur);
  }
  return prev[lb];
}

}  // namespace

int DamerauLevenshteinDistance(std::string_view a, std::string_view b) {
  return EditDistanceImpl(a, b, /*transpositions=*/true, nullptr);
}

int DamerauLevenshteinDistance(std::string_view a, std::string_view b,
                               EditDistanceScratch* scratch) {
  return EditDistanceImpl(a, b, /*transpositions=*/true, scratch);
}

int LevenshteinDistance(std::string_view a, std::string_view b) {
  return EditDistanceImpl(a, b, /*transpositions=*/false, nullptr);
}

int BoundedDamerauLevenshteinDistance(std::string_view a, std::string_view b,
                                      int max_dist,
                                      EditDistanceScratch* scratch) {
  const int la = static_cast<int>(a.size());
  const int lb = static_cast<int>(b.size());
  // Every edit changes the length difference by at most 1, so the distance
  // is at least |la - lb|.
  const int diff = la > lb ? la - lb : lb - la;
  if (diff > max_dist) return max_dist + 1;
  if (la == 0 || lb == 0) {
    const int d = la + lb;  // one side is empty
    return d <= max_dist ? d : max_dist + 1;
  }
  if (max_dist == 0) return a == b ? 0 : 1;

  EditDistanceScratch local;
  EditDistanceScratch& s = scratch != nullptr ? *scratch : local;
  const size_t width = static_cast<size_t>(lb) + 1;
  if (s.prev2.size() < width) {
    s.prev2.resize(width);
    s.prev.resize(width);
    s.cur.resize(width);
  }
  std::vector<int>& prev2 = s.prev2;
  std::vector<int>& prev = s.prev;
  std::vector<int>& cur = s.cur;

  // Row 0, banded: cells with j > max_dist are unreachable within budget.
  const int init_hi = std::min(lb, max_dist);
  for (int j = 0; j <= init_hi; ++j) prev[j] = j;
  if (init_hi < lb) prev[init_hi + 1] = kInfDistance;

  int prev_row_min = 0;
  for (int i = 1; i <= la; ++i) {
    const int lo = std::max(1, i - max_dist);
    const int hi = std::min(lb, i + max_dist);
    cur[0] = i <= max_dist ? i : kInfDistance;
    if (lo > 1) cur[lo - 1] = kInfDistance;
    int row_min = kInfDistance;
    for (int j = lo; j <= hi; ++j) {
      int cost = a[i - 1] == b[j - 1] ? 0 : 1;
      int best = std::min({prev[j] + 1,        // deletion (exclusion)
                           cur[j - 1] + 1,     // insertion
                           prev[j - 1] + cost  // substitution / match
      });
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        best = std::min(best, prev2[j - 2] + 1);  // transposition
      }
      cur[j] = best;
      row_min = std::min(row_min, best);
    }
    if (hi < lb) cur[hi + 1] = kInfDistance;
    // Early abandon: every cell of row i derives (with non-negative cost)
    // from rows i-1 and i-2, so once two consecutive row minima exceed the
    // budget no later cell can come back under it.
    if (row_min > max_dist && prev_row_min > max_dist) return max_dist + 1;
    prev_row_min = row_min;
    std::swap(prev2, prev);
    std::swap(prev, cur);
  }
  const int d = prev[lb];
  return d <= max_dist ? d : max_dist + 1;
}

double FuzzyStringSimilarity(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  int d = DamerauLevenshteinDistance(a, b);
  return 1.0 - static_cast<double>(d) / static_cast<double>(longest);
}

double FuzzyStringSimilarityIgnoreCase(std::string_view a,
                                       std::string_view b) {
  std::string la = ToLower(a);
  std::string lb = ToLower(b);
  return FuzzyStringSimilarity(la, lb);
}

NameSignature NameSignature::Of(std::string_view lower) {
  NameSignature sig;
  for (char c : lower) {
    size_t bucket;
    if (c >= 'a' && c <= 'z') {
      bucket = static_cast<size_t>(c - 'a');
    } else if (c >= '0' && c <= '9') {
      bucket = 26;
    } else {
      bucket = 27;
    }
    if (sig.counts[bucket] != 255) ++sig.counts[bucket];
  }
  return sig;
}

int NameSignature::BagDistance(const NameSignature& other) const {
  int surplus = 0;
  int deficit = 0;
  for (size_t k = 0; k < kBuckets; ++k) {
    const int d = static_cast<int>(counts[k]) -
                  static_cast<int>(other.counts[k]);
    if (d > 0) {
      surplus += d;
    } else {
      deficit -= d;
    }
  }
  return surplus > deficit ? surplus : deficit;
}

double FuzzyStringSimilarityWithThreshold(std::string_view a,
                                          std::string_view b,
                                          double threshold,
                                          EditDistanceScratch* scratch) {
  return FuzzyStringSimilarityWithThreshold(a, b, threshold, scratch,
                                            nullptr, nullptr);
}

double FuzzyStringSimilarityWithThreshold(std::string_view a,
                                          std::string_view b,
                                          double threshold,
                                          EditDistanceScratch* scratch,
                                          const NameSignature* sig_a,
                                          const NameSignature* sig_b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  if (a == b) return 1.0;  // distance 0: 1 - 0/norm is exactly 1.0
  const double norm = static_cast<double>(longest);

  // Length pre-filter: the distance is at least the length difference, and
  // x/norm is monotone in x, so this upper bound is sound in floating point
  // too. Most non-matching pairs exit here, before the admissible-distance
  // derivation below.
  const size_t diff = longest - std::min(a.size(), b.size());
  if (1.0 - static_cast<double>(diff) / norm < threshold) return 0.0;

  // Largest admissible distance: the biggest d with 1 - d/norm >= threshold.
  // Found with the exact floating-point expression of the final similarity
  // (not algebra on the inequality), so the pruned path qualifies precisely
  // the pairs the full computation would.
  int max_d = static_cast<int>((1.0 - threshold) * norm);
  max_d = std::clamp(max_d, 0, static_cast<int>(longest));
  while (max_d > 0 &&
         1.0 - static_cast<double>(max_d) / norm < threshold) {
    --max_d;
  }
  while (max_d < static_cast<int>(longest) &&
         1.0 - static_cast<double>(max_d + 1) / norm >= threshold) {
    ++max_d;
  }

  // Bag filter: the multiset lower bound kills most of the pairs that
  // survive the length filter, for the price of one 28-bucket compare.
  if (sig_a != nullptr && sig_b != nullptr &&
      sig_a->BagDistance(*sig_b) > max_d) {
    return 0.0;
  }

  const int d = BoundedDamerauLevenshteinDistance(a, b, max_d, scratch);
  if (d > max_d) return 0.0;  // true similarity is < threshold
  return 1.0 - static_cast<double>(d) / norm;
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  const size_t la = a.size();
  const size_t lb = b.size();
  if (la == 0 && lb == 0) return 1.0;
  if (la == 0 || lb == 0) return 0.0;

  const size_t window =
      std::max<size_t>(1, std::max(la, lb) / 2) - 1;
  std::vector<bool> a_matched(la, false);
  std::vector<bool> b_matched(lb, false);

  size_t matches = 0;
  for (size_t i = 0; i < la; ++i) {
    size_t lo = i > window ? i - window : 0;
    size_t hi = std::min(lb, i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = true;
      b_matched[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;

  // Count transpositions among matched characters.
  size_t t = 0;
  size_t j = 0;
  for (size_t i = 0; i < la; ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++t;
    ++j;
  }
  double m = static_cast<double>(matches);
  return (m / static_cast<double>(la) + m / static_cast<double>(lb) +
          (m - static_cast<double>(t) / 2.0) / m) /
         3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  size_t limit = std::min({a.size(), b.size(), size_t{4}});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * 0.1 * (1.0 - jaro);
}

namespace {

// The j-th character of `s` padded with one '^' in front and one '$' behind.
inline char PaddedChar(std::string_view s, size_t j) {
  if (j == 0) return '^';
  if (j <= s.size()) return s[j - 1];
  return '$';
}

// Packs the n-grams of the padded form of `s` into integer codes (one byte
// per character) and sorts them; multiset gram counting then becomes a
// linear merge over two small vectors instead of a hash map of substring
// copies.
template <typename Code>
void PackSortedGrams(std::string_view s, int n, std::vector<Code>* out) {
  const size_t padded = s.size() + 2;
  const size_t count = padded - static_cast<size_t>(n) + 1;
  out->clear();
  out->reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Code code = 0;
    for (int k = 0; k < n; ++k) {
      code = static_cast<Code>(code << 8) |
             static_cast<unsigned char>(PaddedChar(s, i + static_cast<size_t>(k)));
    }
    out->push_back(code);
  }
  std::sort(out->begin(), out->end());
}

// Size of the multiset intersection of two sorted code vectors.
template <typename Code>
size_t SortedSharedCount(const std::vector<Code>& a,
                         const std::vector<Code>& b) {
  size_t shared = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++shared;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return shared;
}

template <typename Code>
double NgramDicePacked(std::string_view a, std::string_view b, int n) {
  std::vector<Code> grams_a;
  std::vector<Code> grams_b;
  PackSortedGrams(a, n, &grams_a);
  PackSortedGrams(b, n, &grams_b);
  size_t shared = SortedSharedCount(grams_a, grams_b);
  return 2.0 * static_cast<double>(shared) /
         static_cast<double>(grams_a.size() + grams_b.size());
}

}  // namespace

double NgramDiceSimilarityPrelowered(std::string_view a, std::string_view b,
                                     int n) {
  if (n < 1) n = 1;
  if (a == b) return 1.0;
  // One boundary marker pads each side so short names still produce grams.
  if (a.size() + 2 < static_cast<size_t>(n) ||
      b.size() + 2 < static_cast<size_t>(n)) {
    return 0.0;
  }
  if (n <= 4) return NgramDicePacked<uint32_t>(a, b, n);
  if (n <= 8) return NgramDicePacked<uint64_t>(a, b, n);

  // Grams wider than 8 bytes don't pack into a machine word; count them the
  // slow way (unused by the built-in matchers).
  std::string pa;
  pa.reserve(a.size() + 2);
  pa.push_back('^');
  pa.append(a);
  pa.push_back('$');
  std::string pb;
  pb.reserve(b.size() + 2);
  pb.push_back('^');
  pb.append(b);
  pb.push_back('$');
  std::unordered_map<std::string, int> grams;
  size_t count_a = pa.size() - static_cast<size_t>(n) + 1;
  for (size_t i = 0; i < count_a; ++i) {
    ++grams[pa.substr(i, static_cast<size_t>(n))];
  }
  size_t count_b = pb.size() - static_cast<size_t>(n) + 1;
  size_t shared = 0;
  for (size_t i = 0; i < count_b; ++i) {
    auto it = grams.find(pb.substr(i, static_cast<size_t>(n)));
    if (it != grams.end() && it->second > 0) {
      --it->second;
      ++shared;
    }
  }
  return 2.0 * static_cast<double>(shared) /
         static_cast<double>(count_a + count_b);
}

double NgramDiceSimilarity(std::string_view a, std::string_view b, int n) {
  std::string la = ToLower(a);
  std::string lb = ToLower(b);
  return NgramDiceSimilarityPrelowered(la, lb, n);
}

}  // namespace xsm::sim
