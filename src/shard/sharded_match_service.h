// ShardedMatchService: the scatter-gather Matcher backend. The repository
// forest is partitioned into K self-contained shards (each its own
// RepositorySnapshot chain: forest + structural index + name dictionary +
// generation/WAL machinery), and every query fans out across them — yet the
// results are *exact*: byte-identical mappings, ranks and scores to the
// single-snapshot MatchService on the same content.
//
// Why exactness holds:
//   - The shard plan is a contiguous cut of the TreeId space (shard/
//     shard_plan.h), so concatenating per-shard element-matching results in
//     shard order — with each shard's tree ids offset by its first global
//     tree — reproduces the global NodeRef-sorted mapping-element sets
//     bit-for-bit (element matching is per-(personal node, repository node)
//     and clusters never span trees).
//   - Clustering runs ONCE, globally, over the merged element-matching
//     result (core::Bellflower::ClusterFromMatching against a federated
//     global-view forest + index), because k-means has irreducible global
//     couplings (MEmin seeding, the convergence predicate, the RNG). The
//     global view shares every tree payload and TreeIndex with the shards,
//     so materializing it costs O(num_trees) pointer copies per publish.
//   - Mapping generation scatters per owning shard through MatchWithState's
//     cluster_subset parameter against the *shared* global state: disjoint
//     subsets emit exactly the mappings of one unrestricted run, and the
//     final sort(MappingOrder) + top-N truncation is the same deterministic
//     reduction the unsharded engine performs.
//
// Streaming runs (observer != nullptr) and configurations whose per-run
// adaptive state couples clusters across shards (adaptive top-N together
// with partial-mapping enumeration, or the pre-clustering structural
// baseline) execute generation unscattered on the global view — still
// exact, just not fanned out.
//
// Persistence: SaveSnapshot writes one manifest at `path` plus K per-shard
// snapshot files at `path + ".shard<i>"`; AttachWal journals per shard
// under `wal_path + ".shard<i>"`. WarmStart / Recover reverse both; the
// recomputed global fingerprint must match the manifest. ApplyDelta routes
// ops to owning shards (adds go to the last shard) and rebalances the plan
// when node imbalance exceeds ShardedOptions::rebalance_threshold.
#ifndef XSM_SHARD_SHARDED_MATCH_SERVICE_H_
#define XSM_SHARD_SHARDED_MATCH_SERVICE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/bellflower.h"
#include "core/execution_control.h"
#include "core/match_observer.h"
#include "live/repository_delta.h"
#include "live/repository_manager.h"
#include "obs/metrics.h"
#include "schema/schema_forest.h"
#include "service/cluster_index_cache.h"
#include "service/matcher.h"
#include "service/repository_snapshot.h"
#include "shard/shard_plan.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace xsm::shard {

struct ShardedOptions {
  /// Number of shards K (fixed for the service's life; rebalancing moves
  /// trees between shards, never changes K). Must be >= 1.
  size_t num_shards = 2;
  /// ApplyDelta rebalances when the node imbalance (max shard nodes over
  /// the per-shard mean) exceeds this factor and a better balanced plan
  /// exists. <= 0 disables rebalancing.
  double rebalance_threshold = 1.5;
};

/// Thread-safe scatter-gather Matcher backend over K repository shards.
class ShardedMatchService : public service::Matcher {
 public:
  /// Partitions `repository` into shard_options.num_shards node-balanced
  /// shards (snapshots built in parallel) and serves it.
  static Result<std::unique_ptr<ShardedMatchService>> Create(
      schema::SchemaForest repository,
      const service::MatchServiceOptions& options =
          service::MatchServiceOptions(),
      const ShardedOptions& shard_options = ShardedOptions());

  /// Boots from a manifest + per-shard snapshots written by SaveSnapshot.
  /// The shard count comes from the manifest; `shard_options` supplies the
  /// runtime knobs (rebalance threshold). The recomputed global fingerprint
  /// must match the manifest's or the load fails with Corruption.
  static Result<std::unique_ptr<ShardedMatchService>> WarmStart(
      const std::string& path,
      const service::MatchServiceOptions& options =
          service::MatchServiceOptions(),
      const ShardedOptions& shard_options = ShardedOptions(),
      util::io::Env* env = nullptr);

  /// Crash-safe boot: per-shard snapshot load + WAL suffix replay (see
  /// live::RepositoryManager::Recover), journaling continuing into the same
  /// per-shard WALs. `report` (may be null) receives the aggregated replay
  /// accounting; the recovered global generation is the manifest generation
  /// plus the deepest per-shard replay (a delta touches >= 1 shard, so this
  /// is a lower bound on the pre-crash counter — content and fingerprints
  /// are exact regardless).
  static Result<std::unique_ptr<ShardedMatchService>> Recover(
      util::io::Env* env, const std::string& snapshot_path,
      const std::string& wal_path,
      const service::MatchServiceOptions& options =
          service::MatchServiceOptions(),
      const ShardedOptions& shard_options = ShardedOptions(),
      live::RecoveryReport* report = nullptr);

  ShardedMatchService(const ShardedMatchService&) = delete;
  ShardedMatchService& operator=(const ShardedMatchService&) = delete;

  ~ShardedMatchService() override;

  // --- Matcher surface. ---------------------------------------------------

  service::RepositoryPinPtr Pin() const override;
  uint64_t CurrentGeneration() const override;

  Result<core::MatchResult> RunOn(
      const service::RepositoryPinPtr& pin,
      const service::MatchRequest& request,
      const core::ExecutionControl& control,
      core::MatchObserver* observer = nullptr) override;

  service::MatchHandle Submit(
      service::RepositoryPinPtr pin, service::MatchRequest request,
      core::ExecutionControl control = core::ExecutionControl(),
      core::MatchObserver* observer = nullptr) override;

  service::BatchMatchResult RunBatch(
      std::vector<service::MatchRequest> requests) override;

  Result<service::ClusterStatePtr> ClusterStateFor(
      const service::RepositoryPinPtr& pin,
      const service::MatchRequest& request) override;

  Result<live::ApplyReport> ApplyDelta(
      const live::RepositoryDelta& delta,
      obs::TraceContext* trace = nullptr) override;

  Result<store::SnapshotFileInfo> SaveSnapshot(
      const std::string& path,
      obs::TraceContext* trace = nullptr) const override;

  Status AttachWal(util::io::Env* env, const std::string& wal_path) override;
  bool wal_attached() const override;

  std::vector<service::ShardDescriptor> Shards() const override;

  const service::MatchServiceOptions& options() const override {
    return options_;
  }
  ThreadPool& pool() override { return pool_; }
  service::ServiceStats stats() const override;
  obs::MetricsRegistry& metrics() const override { return *metrics_; }

  core::MatchOptions EffectiveOptions(
      const service::MatchRequest& request) const override;
  std::string ClusterStateKey(
      const service::MatchRequest& request) const override;

  // --- Sharded extras. ----------------------------------------------------

  const ShardedOptions& shard_options() const { return shard_options_; }

  /// Drops every cached cluster state (global and per-shard namespaces).
  void ClearCache();

  /// Per-shard snapshot file written by SaveSnapshot / read by WarmStart:
  /// `prefix + ".shard" + i`. Exposed for tools and tests.
  static std::string ShardFilePath(const std::string& prefix, size_t shard);

  /// The federated RepositoryPin (defined in the .cc; opaque to callers,
  /// but nameable so pins can round-trip through RepositoryPinPtr).
  class ShardedPin;

 private:

  /// Global + per-shard cluster-state caches share MatchService's
  /// fingerprint-namespaced retention scheme.
  struct CacheNamespace {
    uint64_t fingerprint = 0;
    std::shared_ptr<service::ClusterIndexCache> cache;
  };
  struct CacheSet {
    std::vector<CacheNamespace> namespaces;
    service::ClusterIndexCache::Stats retired;
  };

  ShardedMatchService(
      std::vector<std::unique_ptr<live::RepositoryManager>> managers,
      std::shared_ptr<const ShardedPin> pin,
      const service::MatchServiceOptions& options,
      const ShardedOptions& shard_options);

  std::shared_ptr<const ShardedPin> CurrentPin() const;

  core::ExecutionControl ResolveControl(core::ExecutionControl control) const;
  void CountTerminal(core::ExecutionStatus status);

  core::MatchOptions EffectiveOptionsImpl(
      const service::MatchRequest& request) const;

  /// The whole query path against one pinned sharded view.
  Result<core::MatchResult> MatchOnPin(
      const std::shared_ptr<const ShardedPin>& pin,
      const service::MatchRequest& request,
      const core::ExecutionControl& control, core::MatchObserver* observer);

  /// The cached global cluster state for (personal, options) against `pin`:
  /// scatters element matching per shard (per-shard fingerprint-namespaced
  /// caches), merges into global tree-id space, clusters once globally.
  Result<service::ClusterStatePtr> ShardedClusterState(
      const std::shared_ptr<const ShardedPin>& pin,
      const schema::SchemaTree& personal,
      const core::ClusterStateOptions& state_options,
      obs::TraceContext* trace);

  /// Cache namespace lookup; `set` 0 is the global merged-state cache,
  /// 1 + s is shard s's element-matching cache.
  std::shared_ptr<service::ClusterIndexCache> CacheFor(
      size_t set, uint64_t fingerprint, bool enforce_retention = false);

  /// Rebalances shards whose ranges changed under the freshly balanced
  /// plan (copy-on-write successors; WAL re-attach; re-checkpoint when a
  /// snapshot prefix is known). Called under apply_mu_ with the post-apply
  /// shard snapshots; updates `shards` in place.
  Status MaybeRebalance(
      std::vector<std::shared_ptr<const service::RepositorySnapshot>>* shards,
      obs::TraceContext* trace);

  /// Saves every shard + the manifest; caller holds apply_mu_.
  Result<store::SnapshotFileInfo> SaveLocked(const std::string& path,
                                             obs::TraceContext* trace) const;

  service::MatchServiceOptions options_;
  ShardedOptions shard_options_;

  /// Serializes ApplyDelta / SaveSnapshot / AttachWal end to end so a save
  /// can never interleave shard states from two generations. Mutable:
  /// SaveSnapshot is logically const.
  mutable std::mutex apply_mu_;
  std::vector<std::unique_ptr<live::RepositoryManager>> managers_;
  /// Global publication counter: +1 per successful ApplyDelta, whatever
  /// subset of shards the delta touched.
  uint64_t generation_ = 0;

  mutable std::mutex pin_mu_;
  std::shared_ptr<const ShardedPin> pin_;

  ThreadPool pool_;
  /// Scatter pool: per-query fan-out tasks run here, never on pool_, so a
  /// query executing on pool_ (Submit / RunBatch) can't deadlock waiting
  /// for its own shard tasks.
  std::unique_ptr<ThreadPool> fanout_pool_;
  /// Element-matching shard pool; null when matching_threads == 0.
  std::unique_ptr<ThreadPool> matching_pool_;

  mutable std::mutex caches_mu_;
  /// [0] = global merged-state caches, [1 + s] = shard s's caches.
  std::vector<CacheSet> cache_sets_;

  /// WAL / checkpoint bookkeeping for the rebalance path.
  util::io::Env* wal_env_ = nullptr;
  std::string wal_prefix_;
  mutable std::string snap_prefix_;

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* queries_ = nullptr;
  obs::Counter* batches_ = nullptr;
  obs::Counter* cancelled_ = nullptr;
  obs::Counter* deadline_exceeded_ = nullptr;
  obs::Counter* early_stopped_ = nullptr;
  obs::Counter* deltas_applied_ = nullptr;
  obs::Counter* slow_queries_ = nullptr;
  obs::Counter* fanouts_ = nullptr;
  obs::Counter* rebalances_ = nullptr;
  obs::Histogram* query_latency_ms_ = nullptr;
  live::ManagerMetrics manager_metrics_;
  uint64_t scrape_hook_id_ = 0;
};

}  // namespace xsm::shard

#endif  // XSM_SHARD_SHARDED_MATCH_SERVICE_H_
