#include "shard/sharded_match_service.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <unordered_map>
#include <utility>

#include "label/tree_index.h"
#include "match/element_matching.h"
#include "obs/trace.h"
#include "store/snapshot_store.h"
#include "util/io.h"
#include "util/timer.h"

namespace xsm::shard {

namespace {

constexpr const char* kManifestMagic = "xsm-shard-manifest";
constexpr int kManifestVersion = 1;

struct Manifest {
  size_t shards = 0;
  uint64_t generation = 0;
  uint64_t fingerprint = 0;
};

std::string EncodeManifest(const Manifest& m) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s %d\nshards %zu\ngeneration %" PRIu64
                "\nfingerprint %016" PRIx64 "\n",
                kManifestMagic, kManifestVersion, m.shards, m.generation,
                m.fingerprint);
  return buf;
}

Result<Manifest> ParseManifest(const std::string& text) {
  Manifest m;
  int version = 0;
  char magic[32] = {0};
  if (std::sscanf(text.c_str(),
                  "%31s %d\nshards %zu\ngeneration %" SCNu64
                  "\nfingerprint %" SCNx64,
                  magic, &version, &m.shards, &m.generation,
                  &m.fingerprint) != 5 ||
      std::string(magic) != kManifestMagic) {
    return Status::Corruption("not a shard manifest");
  }
  if (version != kManifestVersion) {
    return Status::Corruption("unsupported shard manifest version");
  }
  if (m.shards == 0) {
    return Status::Corruption("shard manifest names zero shards");
  }
  return m;
}

/// Terminal-status merge priority: the "most interrupted" shard wins, so
/// a scattered run reports cancellation over a co-occurring deadline, and
/// any interruption over completion.
int StatusRank(core::ExecutionStatus status) {
  switch (status) {
    case core::ExecutionStatus::kCancelled:
      return 3;
    case core::ExecutionStatus::kDeadlineExceeded:
      return 2;
    case core::ExecutionStatus::kEarlyStopped:
      return 1;
    case core::ExecutionStatus::kCompleted:
      return 0;
  }
  return 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// ShardedPin: the federated RepositoryPin. Materializes a global-view
// forest + index over the K shard snapshots by sharing every tree payload
// and TreeIndex (O(num_trees) pointer copies), so the global Bellflower —
// which clustering and generation run through — sees exactly the forest
// the unsharded backend would, and the global fingerprint composes the
// same per-tree fingerprints the same way.
// ---------------------------------------------------------------------------

class ShardedMatchService::ShardedPin : public service::RepositoryPin {
 public:
  static std::shared_ptr<const ShardedPin> Build(
      std::vector<std::shared_ptr<const service::RepositorySnapshot>> shards,
      uint64_t generation) {
    auto pin = std::shared_ptr<ShardedPin>(new ShardedPin());
    pin->shards_ = std::move(shards);
    pin->generation_ = generation;
    std::vector<size_t> counts;
    counts.reserve(pin->shards_.size());
    size_t total_trees = 0;
    for (const auto& shard : pin->shards_) {
      counts.push_back(shard->num_trees());
      total_trees += shard->num_trees();
    }
    pin->plan_ = ShardPlan::FromShardTreeCounts(counts);
    std::vector<std::shared_ptr<const label::TreeIndex>> parts;
    parts.reserve(total_trees);
    pin->tree_fps_.reserve(total_trees);
    for (const auto& shard : pin->shards_) {
      const schema::SchemaForest& forest = shard->forest();
      for (schema::TreeId t = 0;
           t < static_cast<schema::TreeId>(forest.num_trees()); ++t) {
        pin->forest_.AddTree(forest.tree_ptr(t), forest.source(t));
        parts.push_back(shard->index().tree_ptr(t));
        pin->tree_fps_.push_back(shard->tree_fingerprint(t));
      }
    }
    pin->fingerprint_ = service::CombineForestFingerprint(
        pin->forest_.num_trees(), pin->forest_.total_nodes(), pin->tree_fps_);
    // The forest lives at its final heap address now; the matcher's
    // internal pointer stays valid for the pin's whole life.
    pin->matcher_ = std::make_unique<core::Bellflower>(
        &pin->forest_, label::ForestIndex::FromParts(std::move(parts)));
    return pin;
  }

  const schema::SchemaForest& forest() const override { return forest_; }
  uint64_t generation() const override { return generation_; }
  uint64_t fingerprint() const override { return fingerprint_; }
  uint64_t tree_fingerprint(schema::TreeId id) const override {
    return tree_fps_[static_cast<size_t>(id)];
  }

  const ShardPlan& plan() const { return plan_; }
  size_t num_shards() const { return shards_.size(); }
  const std::shared_ptr<const service::RepositorySnapshot>& shard(
      size_t s) const {
    return shards_[s];
  }
  const core::Bellflower& matcher() const { return *matcher_; }

 private:
  ShardedPin() = default;

  schema::SchemaForest forest_;
  std::unique_ptr<core::Bellflower> matcher_;
  ShardPlan plan_;
  std::vector<std::shared_ptr<const service::RepositorySnapshot>> shards_;
  std::vector<uint64_t> tree_fps_;
  uint64_t generation_ = 0;
  uint64_t fingerprint_ = 0;
};

namespace {

using ShardedPinPtr =
    std::shared_ptr<const ShardedMatchService::ShardedPin>;

}  // namespace

// ---------------------------------------------------------------------------
// Factories.
// ---------------------------------------------------------------------------

std::string ShardedMatchService::ShardFilePath(const std::string& prefix,
                                               size_t shard) {
  return prefix + ".shard" + std::to_string(shard);
}

Result<std::unique_ptr<ShardedMatchService>> ShardedMatchService::Create(
    schema::SchemaForest repository,
    const service::MatchServiceOptions& options,
    const ShardedOptions& shard_options) {
  if (shard_options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  XSM_RETURN_NOT_OK(repository.Validate());
  const size_t k = shard_options.num_shards;
  std::vector<size_t> nodes;
  nodes.reserve(repository.num_trees());
  for (schema::TreeId t = 0;
       t < static_cast<schema::TreeId>(repository.num_trees()); ++t) {
    nodes.push_back(repository.tree(t).size());
  }
  ShardPlan plan = ShardPlan::Balanced(nodes, k);

  // Per-shard snapshot builds (indexing + dictionary folding, the expensive
  // part of publish) run in parallel — this is where sharded publish beats
  // the single monolithic build.
  ThreadPool build_pool(std::min(k, ThreadPool::DefaultThreadCount()));
  std::vector<
      std::future<Result<std::shared_ptr<const service::RepositorySnapshot>>>>
      futures;
  futures.reserve(k);
  for (size_t s = 0; s < k; ++s) {
    futures.push_back(build_pool.Submit(
        [&repository, &plan,
         s]() -> Result<std::shared_ptr<const service::RepositorySnapshot>> {
          schema::SchemaForest sub;
          const schema::TreeId first = plan.first_tree(s);
          for (schema::TreeId local = 0;
               local < static_cast<schema::TreeId>(plan.shard_trees(s));
               ++local) {
            sub.AddTree(repository.tree_ptr(first + local),
                        repository.source(first + local));
          }
          return service::RepositorySnapshot::Create(std::move(sub));
        }));
  }
  std::vector<std::shared_ptr<const service::RepositorySnapshot>> shards;
  shards.reserve(k);
  Status first_error = Status::OK();
  for (auto& future : futures) {
    auto result = future.get();
    if (!result.ok()) {
      if (first_error.ok()) first_error = result.status();
      continue;
    }
    shards.push_back(std::move(result.value()));
  }
  XSM_RETURN_NOT_OK(first_error);

  std::vector<std::unique_ptr<live::RepositoryManager>> managers;
  managers.reserve(k);
  for (auto& shard : shards) {
    managers.push_back(std::make_unique<live::RepositoryManager>(shard));
  }
  auto pin = ShardedPin::Build(std::move(shards), /*generation=*/0);
  return std::unique_ptr<ShardedMatchService>(new ShardedMatchService(
      std::move(managers), std::move(pin), options, shard_options));
}

Result<std::unique_ptr<ShardedMatchService>> ShardedMatchService::WarmStart(
    const std::string& path, const service::MatchServiceOptions& options,
    const ShardedOptions& shard_options, util::io::Env* env) {
  if (env == nullptr) env = util::io::Env::Default();
  XSM_ASSIGN_OR_RETURN(std::string text, env->ReadFileToString(path));
  XSM_ASSIGN_OR_RETURN(Manifest manifest, ParseManifest(text));

  std::vector<std::shared_ptr<const service::RepositorySnapshot>> shards;
  std::vector<std::unique_ptr<live::RepositoryManager>> managers;
  shards.reserve(manifest.shards);
  managers.reserve(manifest.shards);
  for (size_t s = 0; s < manifest.shards; ++s) {
    XSM_ASSIGN_OR_RETURN(
        std::shared_ptr<const service::RepositorySnapshot> shard,
        store::LoadSnapshotFromFile(ShardFilePath(path, s), env));
    managers.push_back(std::make_unique<live::RepositoryManager>(shard));
    shards.push_back(std::move(shard));
  }
  auto pin = ShardedPin::Build(std::move(shards), manifest.generation);
  // Every shard file verified its own content; this check proves the set
  // of shard files is the set the manifest was written for.
  if (pin->fingerprint() != manifest.fingerprint) {
    return Status::Corruption(
        "shard contents do not match the manifest fingerprint");
  }
  ShardedOptions effective_shards = shard_options;
  effective_shards.num_shards = manifest.shards;
  auto service = std::unique_ptr<ShardedMatchService>(new ShardedMatchService(
      std::move(managers), std::move(pin), options, effective_shards));
  service->snap_prefix_ = path;
  return service;
}

Result<std::unique_ptr<ShardedMatchService>> ShardedMatchService::Recover(
    util::io::Env* env, const std::string& snapshot_path,
    const std::string& wal_path, const service::MatchServiceOptions& options,
    const ShardedOptions& shard_options, live::RecoveryReport* report) {
  if (env == nullptr) env = util::io::Env::Default();
  XSM_ASSIGN_OR_RETURN(std::string text, env->ReadFileToString(snapshot_path));
  XSM_ASSIGN_OR_RETURN(Manifest manifest, ParseManifest(text));

  std::vector<std::unique_ptr<live::RepositoryManager>> managers;
  std::vector<std::shared_ptr<const service::RepositorySnapshot>> shards;
  managers.reserve(manifest.shards);
  shards.reserve(manifest.shards);
  uint64_t max_replay_depth = 0;
  live::RecoveryReport aggregate;
  for (size_t s = 0; s < manifest.shards; ++s) {
    live::RecoveryReport shard_report;
    XSM_ASSIGN_OR_RETURN(
        std::unique_ptr<live::RepositoryManager> manager,
        live::RepositoryManager::Recover(env, ShardFilePath(snapshot_path, s),
                                         ShardFilePath(wal_path, s),
                                         &shard_report));
    max_replay_depth = std::max(
        max_replay_depth, shard_report.recovered_generation -
                              shard_report.snapshot_generation);
    aggregate.records_replayed += shard_report.records_replayed;
    aggregate.records_skipped += shard_report.records_skipped;
    aggregate.torn_tail = aggregate.torn_tail || shard_report.torn_tail;
    aggregate.dropped_bytes += shard_report.dropped_bytes;
    shards.push_back(manager->Current());
    managers.push_back(std::move(manager));
  }
  aggregate.snapshot_generation = manifest.generation;
  aggregate.recovered_generation = manifest.generation + max_replay_depth;
  if (report != nullptr) *report = aggregate;

  auto pin =
      ShardedPin::Build(std::move(shards), aggregate.recovered_generation);
  // Fingerprints are only comparable when no journal records moved the
  // content past the checkpoint.
  if (max_replay_depth == 0 && pin->fingerprint() != manifest.fingerprint) {
    return Status::Corruption(
        "shard contents do not match the manifest fingerprint");
  }
  ShardedOptions effective_shards = shard_options;
  effective_shards.num_shards = manifest.shards;
  auto service = std::unique_ptr<ShardedMatchService>(new ShardedMatchService(
      std::move(managers), std::move(pin), options, effective_shards));
  service->generation_ = aggregate.recovered_generation;
  service->wal_env_ = env;
  service->wal_prefix_ = wal_path;
  service->snap_prefix_ = snapshot_path;
  return service;
}

// ---------------------------------------------------------------------------
// Construction / metrics.
// ---------------------------------------------------------------------------

ShardedMatchService::ShardedMatchService(
    std::vector<std::unique_ptr<live::RepositoryManager>> managers,
    std::shared_ptr<const ShardedPin> pin,
    const service::MatchServiceOptions& options,
    const ShardedOptions& shard_options)
    : options_(options),
      shard_options_(shard_options),
      managers_(std::move(managers)),
      generation_(pin->generation()),
      pin_(std::move(pin)),
      pool_(options.num_threads == 0 ? ThreadPool::DefaultThreadCount()
                                     : options.num_threads) {
  const size_t k = managers_.size();
  fanout_pool_ = std::make_unique<ThreadPool>(
      std::min(k, ThreadPool::DefaultThreadCount()));
  if (options_.matching_threads > 0) {
    matching_pool_ = std::make_unique<ThreadPool>(options_.matching_threads);
  }
  cache_sets_.resize(1 + k);

  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  obs::LabelSet labels;
  if (!options_.metrics_tenant.empty()) {
    labels.push_back({"tenant", options_.metrics_tenant});
  }
  // Identical family names to MatchService: the serving layers' dashboards
  // and stats surfaces are backend-agnostic. Batch members are counted
  // exactly once, in MatchOnPin — RunBatch only bumps the batch counter.
  queries_ = metrics_->RegisterCounter(
      "xsm_queries_total", "Match() calls (batch members included)", labels);
  batches_ = metrics_->RegisterCounter("xsm_batches_total",
                                       "MatchBatch() calls", labels);
  cancelled_ = metrics_->RegisterCounter(
      "xsm_queries_cancelled_total", "queries stopped by cancellation",
      labels);
  deadline_exceeded_ = metrics_->RegisterCounter(
      "xsm_queries_deadline_exceeded_total",
      "queries stopped by their wall-clock deadline", labels);
  early_stopped_ = metrics_->RegisterCounter(
      "xsm_queries_early_stopped_total",
      "queries stopped by their mapping budget", labels);
  deltas_applied_ = metrics_->RegisterCounter(
      "xsm_deltas_applied_total", "successful ApplyDelta publications",
      labels);
  slow_queries_ = metrics_->RegisterCounter(
      "xsm_slow_queries_total",
      "queries slower than the configured slow-query threshold", labels);
  fanouts_ = metrics_->RegisterCounter(
      "xsm_shard_fanouts_total",
      "queries whose generation phase scattered across >1 shard", labels);
  rebalances_ = metrics_->RegisterCounter(
      "xsm_shard_rebalances_total", "shard plan rebalances after deltas",
      labels);
  query_latency_ms_ = metrics_->RegisterHistogram(
      "xsm_query_duration_ms", "wall-clock query latency in milliseconds",
      obs::DefaultLatencyBoundsMs(), labels);

  obs::Counter* cache_hits = metrics_->RegisterCounter(
      "xsm_cluster_cache_hits_total", "cluster-state cache hits", labels);
  obs::Counter* cache_shared = metrics_->RegisterCounter(
      "xsm_cluster_cache_shared_total",
      "cluster-state builds shared with a concurrent query", labels);
  obs::Counter* cache_misses = metrics_->RegisterCounter(
      "xsm_cluster_cache_misses_total", "cluster-state cache misses",
      labels);
  obs::Counter* cache_evictions = metrics_->RegisterCounter(
      "xsm_cluster_cache_evictions_total",
      "cluster states dropped by the LRU policy", labels);
  obs::Gauge* cache_entries = metrics_->RegisterGauge(
      "xsm_cluster_cache_entries", "resident cluster states", labels);
  obs::Gauge* cache_namespaces = metrics_->RegisterGauge(
      "xsm_cluster_cache_namespaces",
      "retained per-fingerprint cache namespaces", labels);
  obs::Gauge* generation_gauge = metrics_->RegisterGauge(
      "xsm_repository_generation", "current repository generation", labels);

  manager_metrics_.wal_appends = metrics_->RegisterCounter(
      "xsm_wal_appends_total", "deltas journaled and fsynced before publish",
      labels);
  manager_metrics_.wal_compactions = metrics_->RegisterCounter(
      "xsm_wal_compactions_total",
      "journal compactions after a durable checkpoint", labels);
  manager_metrics_.snapshot_saves = metrics_->RegisterCounter(
      "xsm_snapshot_saves_total", "snapshots persisted to disk", labels);
  for (auto& manager : managers_) {
    manager->SetMetrics(manager_metrics_);
  }

  // Per-shard layout gauges, labeled by shard index.
  std::vector<obs::Gauge*> shard_trees, shard_nodes, shard_generations;
  for (size_t s = 0; s < k; ++s) {
    obs::LabelSet shard_labels = labels;
    shard_labels.push_back({"shard", std::to_string(s)});
    shard_trees.push_back(metrics_->RegisterGauge(
        "xsm_shard_trees", "trees owned by the shard", shard_labels));
    shard_nodes.push_back(metrics_->RegisterGauge(
        "xsm_shard_nodes", "total nodes owned by the shard", shard_labels));
    shard_generations.push_back(metrics_->RegisterGauge(
        "xsm_shard_generation", "the shard's own chain generation",
        shard_labels));
  }

  scrape_hook_id_ = metrics_->AddScrapeHook(
      [this, cache_hits, cache_shared, cache_misses, cache_evictions,
       cache_entries, cache_namespaces, generation_gauge, shard_trees,
       shard_nodes, shard_generations]() {
        service::ServiceStats s = stats();
        cache_hits->Set(s.cache.hits);
        cache_shared->Set(s.cache.shared);
        cache_misses->Set(s.cache.misses);
        cache_evictions->Set(s.cache.evictions);
        cache_entries->Set(static_cast<double>(s.cache.entries));
        cache_namespaces->Set(static_cast<double>(s.cache_namespaces));
        generation_gauge->Set(static_cast<double>(s.generation));
        std::shared_ptr<const ShardedPin> pin = CurrentPin();
        for (size_t i = 0; i < pin->num_shards(); ++i) {
          shard_trees[i]->Set(static_cast<double>(pin->shard(i)->num_trees()));
          shard_nodes[i]->Set(
              static_cast<double>(pin->shard(i)->total_nodes()));
          shard_generations[i]->Set(
              static_cast<double>(pin->shard(i)->generation()));
        }
      });

  // Materialize the initial cache namespaces.
  CacheFor(0, pin_->fingerprint(), /*enforce_retention=*/true);
  for (size_t s = 0; s < k; ++s) {
    CacheFor(1 + s, pin_->shard(s)->fingerprint(),
             /*enforce_retention=*/true);
  }
}

ShardedMatchService::~ShardedMatchService() {
  metrics_->RemoveScrapeHook(scrape_hook_id_);
}

// ---------------------------------------------------------------------------
// Pin plumbing.
// ---------------------------------------------------------------------------

std::shared_ptr<const ShardedMatchService::ShardedPin>
ShardedMatchService::CurrentPin() const {
  std::lock_guard<std::mutex> lock(pin_mu_);
  return pin_;
}

service::RepositoryPinPtr ShardedMatchService::Pin() const {
  return CurrentPin();
}

uint64_t ShardedMatchService::CurrentGeneration() const {
  return CurrentPin()->generation();
}

namespace {

Result<ShardedPinPtr> AsShardedPin(const service::RepositoryPinPtr& pin) {
  auto sharded =
      std::dynamic_pointer_cast<const ShardedMatchService::ShardedPin>(pin);
  if (sharded == nullptr) {
    return Status::InvalidArgument(
        "pin does not come from this backend's chain");
  }
  return sharded;
}

}  // namespace

std::vector<service::ShardDescriptor> ShardedMatchService::Shards() const {
  std::shared_ptr<const ShardedPin> pin = CurrentPin();
  std::vector<service::ShardDescriptor> out;
  out.reserve(pin->num_shards());
  for (size_t s = 0; s < pin->num_shards(); ++s) {
    service::ShardDescriptor d;
    d.shard = s;
    d.generation = pin->shard(s)->generation();
    d.fingerprint = pin->shard(s)->fingerprint();
    d.trees = pin->shard(s)->num_trees();
    d.nodes = pin->shard(s)->total_nodes();
    d.first_tree = pin->plan().first_tree(s);
    out.push_back(d);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Effective options / keys.
// ---------------------------------------------------------------------------

core::MatchOptions ShardedMatchService::EffectiveOptionsImpl(
    const service::MatchRequest& request) const {
  core::MatchOptions effective = service::EffectiveRequestOptions(
      request, {options_.base_seed, options_.derive_seeds});
  // No global dictionary exists (each shard owns one; the scatter injects
  // them per shard), so the only plumbing layered on is the matching pool.
  if (effective.element.pool == nullptr && matching_pool_ != nullptr) {
    effective.element.pool = matching_pool_.get();
  }
  return effective;
}

core::MatchOptions ShardedMatchService::EffectiveOptions(
    const service::MatchRequest& request) const {
  return EffectiveOptionsImpl(request);
}

std::string ShardedMatchService::ClusterStateKey(
    const service::MatchRequest& request) const {
  return service::BuildClusterStateKey(
      request.personal,
      core::ClusterStateOptions::From(EffectiveOptionsImpl(request)));
}

core::ExecutionControl ShardedMatchService::ResolveControl(
    core::ExecutionControl control) const {
  if (!control.deadline.has_value() && options_.default_deadline_seconds > 0) {
    control.deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(options_.default_deadline_seconds));
  }
  return control;
}

void ShardedMatchService::CountTerminal(core::ExecutionStatus status) {
  switch (status) {
    case core::ExecutionStatus::kCompleted:
      break;
    case core::ExecutionStatus::kCancelled:
      cancelled_->Increment();
      break;
    case core::ExecutionStatus::kDeadlineExceeded:
      deadline_exceeded_->Increment();
      break;
    case core::ExecutionStatus::kEarlyStopped:
      early_stopped_->Increment();
      break;
  }
}

// ---------------------------------------------------------------------------
// Cluster-state scatter.
// ---------------------------------------------------------------------------

Result<service::ClusterStatePtr> ShardedMatchService::ShardedClusterState(
    const std::shared_ptr<const ShardedPin>& pin,
    const schema::SchemaTree& personal,
    const core::ClusterStateOptions& state_options,
    obs::TraceContext* trace) {
  std::shared_ptr<service::ClusterIndexCache> cache =
      CacheFor(0, pin->fingerprint());
  const std::string key =
      service::BuildClusterStateKey(personal, state_options);

  obs::ScopedSpan cache_span(trace, "cluster_cache");
  service::ClusterIndexCache::Fetch fetch =
      service::ClusterIndexCache::Fetch::kMiss;
  auto result = cache->GetOrCompute(
      key,
      [&]() -> Result<core::ClusterState> {
        // Scatter element matching per shard. Each shard matches against
        // its own forest with its own dictionary; per-shard results are
        // cached in the shard's fingerprint-namespaced cache (matching-only
        // ClusterStates), so a delta touching one shard recomputes one
        // shard.
        obs::ScopedSpan fan_span(trace, "shard_fanout");
        std::vector<size_t> shard_ids;
        std::vector<std::future<Result<service::ClusterStatePtr>>> futures;
        for (size_t s = 0; s < pin->num_shards(); ++s) {
          if (pin->shard(s)->num_trees() == 0) continue;
          shard_ids.push_back(s);
          futures.push_back(fanout_pool_->Submit(
              [this, pin, &personal, &state_options, key,
               s]() -> Result<service::ClusterStatePtr> {
                const auto& snap = pin->shard(s);
                std::shared_ptr<service::ClusterIndexCache> shard_cache =
                    CacheFor(1 + s, snap->fingerprint());
                return shard_cache->GetOrCompute(
                    key, [&]() -> Result<core::ClusterState> {
                      match::ElementMatchingOptions mo = state_options.element;
                      mo.dictionary = &snap->name_dictionary();
                      if (mo.pool == nullptr && matching_pool_ != nullptr) {
                        mo.pool = matching_pool_.get();
                      }
                      // Like the unsharded cache: a build that starts
                      // always completes, so a cached shard result can
                      // never be partial.
                      mo.control = nullptr;
                      Timer timer;
                      XSM_ASSIGN_OR_RETURN(
                          match::ElementMatchingResult matched,
                          match::MatchElements(personal, snap->forest(), mo));
                      core::ClusterState partial;
                      partial.matching = std::move(matched);
                      partial.time_matching_seconds = timer.ElapsedSeconds();
                      return partial;
                    });
              }));
        }
        std::vector<service::ClusterStatePtr> parts;
        parts.reserve(futures.size());
        Status first_error = Status::OK();
        for (auto& future : futures) {
          auto part = future.get();
          if (!part.ok()) {
            if (first_error.ok()) first_error = part.status();
            continue;
          }
          parts.push_back(std::move(part.value()));
        }
        XSM_RETURN_NOT_OK(first_error);
        if (trace != nullptr) {
          fan_span.set_note(std::to_string(parts.size()) + " shards");
        }

        // Gather: concatenate in shard order with each shard's tree ids
        // offset by its first global tree. Per-shard element lists are
        // NodeRef-sorted and shard tree ranges are increasing, so plain
        // concatenation reproduces the global sorted order bit-for-bit.
        match::ElementMatchingResult merged;
        merged.sets.resize(personal.size());
        for (schema::NodeId n = 0;
             n < static_cast<schema::NodeId>(personal.size()); ++n) {
          merged.sets[static_cast<size_t>(n)].personal_node = n;
        }
        double matching_seconds = 0;
        for (size_t i = 0; i < parts.size(); ++i) {
          const schema::TreeId offset = pin->plan().first_tree(shard_ids[i]);
          const match::ElementMatchingResult& part = parts[i]->matching;
          matching_seconds += parts[i]->time_matching_seconds;
          for (size_t n = 0; n < part.sets.size(); ++n) {
            auto& out = merged.sets[n].elements;
            for (const match::MappingElement& element : part.sets[n].elements) {
              out.push_back({{element.node.tree + offset, element.node.node},
                             element.score});
            }
          }
          for (size_t d = 0; d < part.distinct_nodes.size(); ++d) {
            merged.distinct_nodes.push_back(
                {part.distinct_nodes[d].tree + offset,
                 part.distinct_nodes[d].node});
            merged.masks.push_back(part.masks[d]);
          }
        }

        // Cluster once, globally: k-means' global couplings (MEmin seeding,
        // convergence, the RNG) see exactly what the unsharded pipeline
        // would have seen.
        core::ExecutionControl build_control;
        build_control.trace = trace;
        return pin->matcher().ClusterFromMatching(
            personal, std::move(merged), matching_seconds, state_options,
            &build_control);
      },
      &fetch);
  if (trace != nullptr) {
    switch (fetch) {
      case service::ClusterIndexCache::Fetch::kHit:
        cache_span.set_note("hit");
        break;
      case service::ClusterIndexCache::Fetch::kShared:
        cache_span.set_note("shared");
        break;
      case service::ClusterIndexCache::Fetch::kMiss:
        cache_span.set_note("miss");
        break;
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Query path.
// ---------------------------------------------------------------------------

Result<core::MatchResult> ShardedMatchService::RunOn(
    const service::RepositoryPinPtr& pin, const service::MatchRequest& request,
    const core::ExecutionControl& control, core::MatchObserver* observer) {
  XSM_ASSIGN_OR_RETURN(ShardedPinPtr sharded, AsShardedPin(pin));
  return MatchOnPin(sharded, request, control, observer);
}

Result<core::MatchResult> ShardedMatchService::MatchOnPin(
    const std::shared_ptr<const ShardedPin>& pin,
    const service::MatchRequest& request,
    const core::ExecutionControl& control, core::MatchObserver* observer) {
  queries_->Increment();
  const bool instrument = options_.enable_metrics;
  Timer latency_timer;
  auto record_latency = [&]() {
    if (!instrument) return;
    const double elapsed_ms = latency_timer.ElapsedSeconds() * 1e3;
    query_latency_ms_->Observe(elapsed_ms);
    if (options_.slow_query_ms > 0 && elapsed_ms >= options_.slow_query_ms) {
      slow_queries_->Increment();
    }
  };
  core::MatchOptions effective = EffectiveOptionsImpl(request);
  XSM_RETURN_NOT_OK(effective.objective.Validate());
  if (effective.delta < 0.0 || effective.delta > 1.0) {
    return Status::InvalidArgument("delta must be in [0,1]");
  }
  core::ExecutionControl resolved = ResolveControl(control);

  core::ExecutionMonitor pre(resolved);
  if (pre.ShouldStop()) {
    core::MatchResult result;
    result.stats.repository_nodes = pin->forest().total_nodes();
    result.stats.repository_trees = pin->forest().num_trees();
    result.execution = pre.status();
    CountTerminal(result.execution);
    if (observer != nullptr) observer->OnFinish(result);
    record_latency();
    return result;
  }

  core::ClusterStateOptions state_options =
      core::ClusterStateOptions::From(effective);
  service::ClusterStatePtr state;
  XSM_ASSIGN_OR_RETURN(state, ShardedClusterState(pin, request.personal,
                                                  state_options,
                                                  resolved.trace));

  const core::Bellflower& matcher = pin->matcher();
  // Partition the global cluster list by owning shard (clusters never span
  // trees, so every cluster has exactly one owner).
  const size_t k = pin->num_shards();
  std::vector<std::vector<size_t>> subsets(k);
  size_t active = 0;
  for (size_t ci = 0; ci < state->clustering.clusters.size(); ++ci) {
    const size_t s =
        pin->plan().shard_of(state->clustering.clusters[ci].tree);
    if (subsets[s].empty()) ++active;
    subsets[s].push_back(ci);
  }

  // Configurations whose per-run adaptive state couples clusters across
  // shards fall back to one unscattered (still exact) global run: the
  // adaptive-δ ratchet reclassifies cluster usefulness when partials are
  // also enumerated, and the pre-clustering structural baseline re-scores
  // every element per run.
  const bool coupled =
      (effective.include_partial_mappings && effective.adaptive_top_n &&
       effective.top_n > 0) ||
      (effective.structural_matcher != nullptr &&
       !effective.structural_within_clusters_only);
  if (observer != nullptr || active <= 1 || coupled) {
    Result<core::MatchResult> run = matcher.MatchWithState(
        request.personal, *state, effective, resolved, observer);
    if (run.ok()) CountTerminal(run->execution);
    record_latency();
    return run;
  }

  // Scatter generation: one restricted MatchWithState per owning shard
  // against the shared global state. Exactness: disjoint subsets emit
  // exactly the mappings of one unrestricted run, and any mapping a
  // shard's adaptive ratchet (or the shared δ floor below) prunes is
  // provably outside the global top N.
  fanouts_->Increment();
  Timer generation_timer;
  std::vector<Result<core::MatchResult>> shard_results;
  {
    obs::ScopedSpan fan_span(resolved.trace, "shard_fanout");
    if (resolved.trace != nullptr) {
      fan_span.set_note(std::to_string(active) + "/" + std::to_string(k) +
                        " shards");
    }
    // Shared adaptive-δ floor: once the merged results hold top_n mappings,
    // shard tasks starting later raise their δ to the global N-th best —
    // pure work savings, the top N is unchanged.
    const bool share_floor = effective.adaptive_top_n &&
                             effective.top_n > 0 &&
                             !effective.include_partial_mappings;
    std::mutex floor_mu;
    double floor = effective.delta;
    std::vector<double> top_deltas;
    auto read_floor = [&]() {
      if (!share_floor) return effective.delta;
      std::lock_guard<std::mutex> lock(floor_mu);
      return floor;
    };
    auto publish_deltas = [&](const std::vector<generate::SchemaMapping>& ms) {
      if (!share_floor) return;
      std::lock_guard<std::mutex> lock(floor_mu);
      for (const generate::SchemaMapping& m : ms) {
        top_deltas.insert(std::upper_bound(top_deltas.begin(),
                                           top_deltas.end(), m.delta,
                                           std::greater<double>()),
                          m.delta);
        if (top_deltas.size() > effective.top_n) top_deltas.pop_back();
      }
      if (top_deltas.size() == effective.top_n) {
        floor = std::max(floor, top_deltas.back());
      }
    };

    std::vector<std::future<Result<core::MatchResult>>> futures;
    futures.reserve(active);
    for (size_t s = 0; s < k; ++s) {
      if (subsets[s].empty()) continue;
      futures.push_back(fanout_pool_->Submit(
          [&, s]() -> Result<core::MatchResult> {
            core::MatchOptions task_options = effective;
            task_options.delta = std::max(task_options.delta, read_floor());
            core::ExecutionControl task_control = resolved;
            // Spans stay on the scattering thread; TraceContext is not
            // shared across concurrent writers.
            task_control.trace = nullptr;
            Result<core::MatchResult> run = matcher.MatchWithState(
                request.personal, *state, task_options, task_control,
                /*observer=*/nullptr, &subsets[s]);
            if (run.ok()) publish_deltas(run->mappings);
            return run;
          }));
    }
    shard_results.reserve(futures.size());
    for (auto& future : futures) {
      shard_results.push_back(future.get());
    }
  }
  for (const auto& run : shard_results) {
    XSM_RETURN_NOT_OK(run.status());
  }

  // Gather: the same deterministic reduction the unsharded engine performs
  // as its stage ⑤ (sort by MappingOrder, truncate to top N).
  obs::ScopedSpan merge_span(resolved.trace, "shard_merge");
  core::MatchResult merged;
  // State-wide stats fields are identical in every restricted run; start
  // from the first and re-accumulate the per-run ones.
  merged.stats = shard_results[0].value().stats;
  merged.stats.num_clusters = state->clustering.clusters.size();
  merged.stats.num_useful_clusters = 0;
  merged.stats.search_space = 0;
  merged.stats.generator = {};
  merged.stats.partial_generator = {};
  merged.stats.structural_evaluations = 0;
  merged.stats.time_structural_seconds = 0;
  merged.stats.partials_until_first_mapping = 0;
  merged.stats.clusters_until_first_mapping = 0;
  merged.stats.num_mappings = 0;
  merged.stats.cluster_summaries.clear();
  double useful_pairs = 0;
  for (auto& run : shard_results) {
    core::MatchResult& r = run.value();
    if (StatusRank(r.execution) > StatusRank(merged.execution)) {
      merged.execution = r.execution;
    }
    std::move(r.mappings.begin(), r.mappings.end(),
              std::back_inserter(merged.mappings));
    std::move(r.partial_mappings.begin(), r.partial_mappings.end(),
              std::back_inserter(merged.partial_mappings));
    merged.stats.num_useful_clusters += r.stats.num_useful_clusters;
    merged.stats.search_space += r.stats.search_space;
    // num_mappings counts what generation materialized before the final
    // top-N cut, so sum the per-run pre-truncation counts rather than
    // sizing the merged (per-shard already truncated) list. Without
    // adaptive pruning the sum equals the unsharded count exactly
    // (disjoint subsets); with adaptive top-N it may exceed it slightly —
    // each shard's δ ratchet sees only its own clusters — which is pure
    // work accounting: the merged top N is unchanged.
    merged.stats.num_mappings += r.stats.num_mappings;
    useful_pairs += r.stats.avg_elements_per_useful_cluster *
                    static_cast<double>(r.stats.num_useful_clusters);
    merged.stats.generator += r.stats.generator;
    merged.stats.partial_generator += r.stats.partial_generator;
    merged.stats.structural_evaluations += r.stats.structural_evaluations;
    merged.stats.time_structural_seconds += r.stats.time_structural_seconds;
    merged.stats.partials_until_first_mapping +=
        r.stats.partials_until_first_mapping;
    merged.stats.clusters_until_first_mapping +=
        r.stats.clusters_until_first_mapping;
    std::move(r.stats.cluster_summaries.begin(),
              r.stats.cluster_summaries.end(),
              std::back_inserter(merged.stats.cluster_summaries));
  }
  merged.stats.avg_elements_per_useful_cluster =
      merged.stats.num_useful_clusters == 0
          ? 0.0
          : useful_pairs /
                static_cast<double>(merged.stats.num_useful_clusters);
  std::sort(merged.mappings.begin(), merged.mappings.end(),
            generate::MappingOrder());
  if (effective.top_n > 0 && merged.mappings.size() > effective.top_n) {
    merged.mappings.resize(effective.top_n);
  }
  std::sort(merged.partial_mappings.begin(), merged.partial_mappings.end(),
            generate::PartialMappingOrder());
  merged.stats.num_partial_mappings = merged.partial_mappings.size();
  merged.stats.time_generation_seconds = generation_timer.ElapsedSeconds();

  CountTerminal(merged.execution);
  record_latency();
  return merged;
}

service::MatchHandle ShardedMatchService::Submit(
    service::RepositoryPinPtr pin, service::MatchRequest request,
    core::ExecutionControl control, core::MatchObserver* observer) {
  Result<ShardedPinPtr> sharded = AsShardedPin(pin);
  if (!sharded.ok()) {
    std::promise<Result<core::MatchResult>> failed;
    failed.set_value(sharded.status());
    return service::MatchHandle(core::CancelToken(), failed.get_future());
  }
  control = ResolveControl(std::move(control));
  core::CancelToken token = control.cancel;
  const double submitted_ms =
      control.trace != nullptr ? control.trace->NowMs() : 0;
  std::future<Result<core::MatchResult>> future =
      pool_.Submit([this, pinned = std::move(sharded.value()),
                    request = std::move(request),
                    control = std::move(control), submitted_ms, observer]() {
        if (control.trace != nullptr) {
          control.trace->AddSpan("queue_wait", "", submitted_ms,
                                 control.trace->NowMs() - submitted_ms);
        }
        return MatchOnPin(pinned, request, control, observer);
      });
  return service::MatchHandle(std::move(token), std::move(future));
}

service::BatchMatchResult ShardedMatchService::RunBatch(
    std::vector<service::MatchRequest> requests) {
  batches_->Increment();
  std::shared_ptr<const ShardedPin> pin = CurrentPin();
  service::BatchMatchResult batch;
  batch.generation = pin->generation();
  batch.fingerprint = pin->fingerprint();
  std::vector<std::future<Result<core::MatchResult>>> futures;
  futures.reserve(requests.size());
  for (service::MatchRequest& request : requests) {
    futures.push_back(
        pool_.Submit([this, pin, request = std::move(request)]() {
          return MatchOnPin(pin, request, core::ExecutionControl(), nullptr);
        }));
  }
  batch.results.reserve(futures.size());
  for (auto& future : futures) {
    batch.results.push_back(future.get());
  }
  return batch;
}

Result<service::ClusterStatePtr> ShardedMatchService::ClusterStateFor(
    const service::RepositoryPinPtr& pin,
    const service::MatchRequest& request) {
  XSM_ASSIGN_OR_RETURN(ShardedPinPtr sharded, AsShardedPin(pin));
  return ShardedClusterState(
      sharded, request.personal,
      core::ClusterStateOptions::From(EffectiveOptionsImpl(request)),
      /*trace=*/nullptr);
}

// ---------------------------------------------------------------------------
// Deltas / rebalancing.
// ---------------------------------------------------------------------------

Result<live::ApplyReport> ShardedMatchService::ApplyDelta(
    const live::RepositoryDelta& delta, obs::TraceContext* trace) {
  std::lock_guard<std::mutex> lock(apply_mu_);
  std::shared_ptr<const ShardedPin> pin;
  {
    std::lock_guard<std::mutex> pin_lock(pin_mu_);
    pin = pin_;
  }
  const ShardPlan& plan = pin->plan();
  const size_t k = managers_.size();
  const auto num_global = static_cast<schema::TreeId>(plan.num_trees());

  // Route every op to its owning shard (adds go to the last shard; the
  // rebalance pass below restores balance when they pile up), validating
  // all targets before anything is applied.
  std::vector<live::DeltaBuilder> builders(k);
  std::vector<bool> has_ops(k, false);
  for (const live::DeltaOp& op : delta.ops()) {
    switch (op.kind) {
      case live::DeltaOpKind::kAdd: {
        builders[k - 1].AddTree(op.tree, op.source);
        has_ops[k - 1] = true;
        break;
      }
      case live::DeltaOpKind::kReplace: {
        if (op.target < 0 || op.target >= num_global) {
          return Status::InvalidArgument("replace targets a nonexistent tree");
        }
        const size_t s = plan.shard_of(op.target);
        builders[s].ReplaceTree(plan.to_local(op.target), op.tree, op.source);
        has_ops[s] = true;
        break;
      }
      case live::DeltaOpKind::kRemove: {
        if (op.target < 0 || op.target >= num_global) {
          return Status::InvalidArgument("remove targets a nonexistent tree");
        }
        const size_t s = plan.shard_of(op.target);
        builders[s].RemoveTree(plan.to_local(op.target));
        has_ops[s] = true;
        break;
      }
    }
  }
  // Build (and thereby validate) every shard delta before applying any, so
  // a malformed delta leaves all shards untouched.
  std::vector<std::pair<size_t, live::RepositoryDelta>> shard_deltas;
  for (size_t s = 0; s < k; ++s) {
    if (!has_ops[s]) continue;
    XSM_ASSIGN_OR_RETURN(live::RepositoryDelta shard_delta,
                         builders[s].Build());
    shard_deltas.emplace_back(s, std::move(shard_delta));
  }

  // Apply shard by shard. Per-shard removals close gaps within the shard,
  // so the concatenated global ordering matches what the unsharded manager
  // would publish. A WAL failure mid-sequence leaves the same state a
  // crash between per-shard journal appends would — Recover heals it.
  live::ApplyReport merged;
  for (auto& [s, shard_delta] : shard_deltas) {
    XSM_ASSIGN_OR_RETURN(live::ApplyReport report,
                         managers_[s]->Apply(shard_delta, trace));
    merged.trees_reused += report.trees_reused;
    merged.trees_rebuilt += report.trees_rebuilt;
    merged.name_entries_copied += report.name_entries_copied;
    merged.name_entries_computed += report.name_entries_computed;
    merged.build_seconds += report.build_seconds;
  }
  ++generation_;
  deltas_applied_->Increment();

  std::vector<std::shared_ptr<const service::RepositorySnapshot>> shards;
  shards.reserve(k);
  for (auto& manager : managers_) {
    shards.push_back(manager->Current());
  }
  XSM_RETURN_NOT_OK(MaybeRebalance(&shards, trace));

  auto new_pin = ShardedPin::Build(std::move(shards), generation_);
  {
    std::lock_guard<std::mutex> pin_lock(pin_mu_);
    pin_ = new_pin;
  }
  CacheFor(0, new_pin->fingerprint(), /*enforce_retention=*/true);
  for (size_t s = 0; s < k; ++s) {
    CacheFor(1 + s, new_pin->shard(s)->fingerprint(),
             /*enforce_retention=*/true);
  }
  merged.generation = generation_;
  merged.fingerprint = new_pin->fingerprint();
  merged.trees_total = new_pin->forest().num_trees();
  // merged.snapshot stays null: there is no single snapshot object for the
  // federated view; callers read the scalar fields.
  return merged;
}

Status ShardedMatchService::MaybeRebalance(
    std::vector<std::shared_ptr<const service::RepositorySnapshot>>* shards,
    obs::TraceContext* trace) {
  if (shard_options_.rebalance_threshold <= 0) return Status::OK();
  const size_t k = shards->size();
  std::vector<size_t> counts;
  std::vector<size_t> nodes;
  std::vector<std::shared_ptr<const schema::SchemaTree>> payloads;
  std::vector<std::string> sources;
  counts.reserve(k);
  for (const auto& shard : *shards) {
    const schema::SchemaForest& forest = shard->forest();
    counts.push_back(forest.num_trees());
    for (schema::TreeId t = 0;
         t < static_cast<schema::TreeId>(forest.num_trees()); ++t) {
      nodes.push_back(forest.tree(t).size());
      payloads.push_back(forest.tree_ptr(t));
      sources.push_back(forest.source(t));
    }
  }
  ShardPlan current = ShardPlan::FromShardTreeCounts(counts);
  if (current.Imbalance(nodes) <= shard_options_.rebalance_threshold) {
    return Status::OK();
  }
  ShardPlan target = ShardPlan::Balanced(nodes, k);
  if (target == current) return Status::OK();

  obs::ScopedSpan rebalance_span(trace, "shard_rebalance");
  for (size_t s = 0; s < k; ++s) {
    if (target.first_tree(s) == current.first_tree(s) &&
        target.shard_trees(s) == current.shard_trees(s)) {
      continue;  // range unchanged: keep the manager (and its WAL) as is
    }
    // Copy-on-write successor for the shard's new range: trees that stay
    // in the shard reuse its index/dictionary state (payload pointer
    // equality is the certificate); trees migrating in are rebuilt.
    const std::shared_ptr<const service::RepositorySnapshot>& previous =
        (*shards)[s];
    std::unordered_map<const schema::SchemaTree*, schema::TreeId> prev_ids;
    for (schema::TreeId t = 0;
         t < static_cast<schema::TreeId>(previous->num_trees()); ++t) {
      prev_ids[previous->forest().tree_ptr(t).get()] = t;
    }
    schema::SchemaForest sub;
    std::vector<schema::TreeId> reuse;
    reuse.reserve(target.shard_trees(s));
    for (size_t g = static_cast<size_t>(target.first_tree(s));
         g < static_cast<size_t>(target.first_tree(s)) + target.shard_trees(s);
         ++g) {
      sub.AddTree(payloads[g], sources[g]);
      auto it = prev_ids.find(payloads[g].get());
      reuse.push_back(it == prev_ids.end() ? -1 : it->second);
    }
    XSM_ASSIGN_OR_RETURN(
        std::shared_ptr<const service::RepositorySnapshot> successor,
        service::RepositorySnapshot::CreateSuccessor(previous, std::move(sub),
                                                     reuse));
    auto manager = std::make_unique<live::RepositoryManager>(successor);
    manager->SetMetrics(manager_metrics_);
    if (wal_env_ != nullptr) {
      // The shard's journal base moved with its chain; a fresh journal at
      // the successor generation replaces it (the re-checkpoint below
      // makes recovery consistent again).
      XSM_RETURN_NOT_OK(
          manager->AttachWal(wal_env_, ShardFilePath(wal_prefix_, s)));
    }
    managers_[s] = std::move(manager);
    (*shards)[s] = std::move(successor);
  }
  rebalances_->Increment();
  // Re-checkpoint so on-disk shard snapshots describe the new plan (the
  // rebalanced shards' journals restarted above).
  if (!snap_prefix_.empty()) {
    XSM_ASSIGN_OR_RETURN(store::SnapshotFileInfo info,
                         SaveLocked(snap_prefix_, trace));
    (void)info;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Persistence.
// ---------------------------------------------------------------------------

Result<store::SnapshotFileInfo> ShardedMatchService::SaveLocked(
    const std::string& path, obs::TraceContext* trace) const {
  store::SnapshotFileInfo aggregate;
  std::vector<uint64_t> tree_fps;
  size_t num_trees = 0;
  size_t total_nodes = 0;
  for (size_t s = 0; s < managers_.size(); ++s) {
    XSM_ASSIGN_OR_RETURN(
        store::SnapshotFileInfo info,
        managers_[s]->SaveSnapshot(ShardFilePath(path, s), trace));
    aggregate.format_version = info.format_version;
    aggregate.trees += info.trees;
    aggregate.total_nodes += info.total_nodes;
    aggregate.total_bytes += info.total_bytes;
    std::shared_ptr<const service::RepositorySnapshot> snap =
        managers_[s]->Current();
    num_trees += snap->num_trees();
    total_nodes += snap->total_nodes();
    for (schema::TreeId t = 0;
         t < static_cast<schema::TreeId>(snap->num_trees()); ++t) {
      tree_fps.push_back(snap->tree_fingerprint(t));
    }
  }
  Manifest manifest;
  manifest.shards = managers_.size();
  manifest.generation = generation_;
  manifest.fingerprint =
      service::CombineForestFingerprint(num_trees, total_nodes, tree_fps);
  // Shard files first, manifest last: the manifest is the commit point of
  // the whole multi-file save.
  XSM_RETURN_NOT_OK(util::io::AtomicFileWriter::WriteFileAtomic(
      util::io::Env::Default(), path, EncodeManifest(manifest)));
  aggregate.generation = manifest.generation;
  aggregate.fingerprint = manifest.fingerprint;
  return aggregate;
}

Result<store::SnapshotFileInfo> ShardedMatchService::SaveSnapshot(
    const std::string& path, obs::TraceContext* trace) const {
  std::lock_guard<std::mutex> lock(apply_mu_);
  XSM_ASSIGN_OR_RETURN(store::SnapshotFileInfo info,
                       SaveLocked(path, trace));
  snap_prefix_ = path;
  return info;
}

Status ShardedMatchService::AttachWal(util::io::Env* env,
                                      const std::string& wal_path) {
  std::lock_guard<std::mutex> lock(apply_mu_);
  for (size_t s = 0; s < managers_.size(); ++s) {
    XSM_RETURN_NOT_OK(
        managers_[s]->AttachWal(env, ShardFilePath(wal_path, s)));
  }
  wal_env_ = env;
  wal_prefix_ = wal_path;
  return Status::OK();
}

bool ShardedMatchService::wal_attached() const {
  std::lock_guard<std::mutex> lock(apply_mu_);
  for (const auto& manager : managers_) {
    if (!manager->wal_attached()) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Caches / stats.
// ---------------------------------------------------------------------------

std::shared_ptr<service::ClusterIndexCache> ShardedMatchService::CacheFor(
    size_t set, uint64_t fingerprint, bool enforce_retention) {
  std::lock_guard<std::mutex> lock(caches_mu_);
  CacheSet& cs = cache_sets_[set];
  std::shared_ptr<service::ClusterIndexCache> cache;
  for (size_t i = 0; i < cs.namespaces.size(); ++i) {
    if (cs.namespaces[i].fingerprint != fingerprint) continue;
    cache = cs.namespaces[i].cache;
    if (enforce_retention && i + 1 != cs.namespaces.size()) {
      CacheNamespace ns = std::move(cs.namespaces[i]);
      cs.namespaces.erase(cs.namespaces.begin() +
                          static_cast<ptrdiff_t>(i));
      cs.namespaces.push_back(std::move(ns));
    }
    break;
  }
  if (cache == nullptr) {
    CacheNamespace ns;
    ns.fingerprint = fingerprint;
    ns.cache = std::make_shared<service::ClusterIndexCache>(
        options_.cluster_cache_capacity);
    cache = ns.cache;
    if (enforce_retention) {
      cs.namespaces.push_back(std::move(ns));
    } else {
      cs.namespaces.insert(cs.namespaces.begin(), std::move(ns));
    }
  }
  if (enforce_retention) {
    const size_t limit = 1 + options_.cache_retained_generations;
    while (cs.namespaces.size() > limit) {
      service::ClusterIndexCache::Stats dropped =
          cs.namespaces.front().cache->stats();
      cs.retired.hits += dropped.hits;
      cs.retired.shared += dropped.shared;
      cs.retired.misses += dropped.misses;
      cs.retired.evictions += dropped.evictions + dropped.entries;
      cs.namespaces.erase(cs.namespaces.begin());
    }
  }
  return cache;
}

void ShardedMatchService::ClearCache() {
  std::lock_guard<std::mutex> lock(caches_mu_);
  for (CacheSet& cs : cache_sets_) {
    for (CacheNamespace& ns : cs.namespaces) {
      ns.cache->Clear();
    }
  }
}

service::ServiceStats ShardedMatchService::stats() const {
  service::ServiceStats s;
  s.queries = queries_->value();
  s.batches = batches_->value();
  s.cancelled = cancelled_->value();
  s.deadline_exceeded = deadline_exceeded_->value();
  s.early_stopped = early_stopped_->value();
  s.generation = CurrentPin()->generation();
  s.deltas_applied = deltas_applied_->value();
  s.slow_queries = slow_queries_->value();
  std::lock_guard<std::mutex> lock(caches_mu_);
  for (const CacheSet& cs : cache_sets_) {
    s.cache_namespaces += cs.namespaces.size();
    s.cache.hits += cs.retired.hits;
    s.cache.shared += cs.retired.shared;
    s.cache.misses += cs.retired.misses;
    s.cache.evictions += cs.retired.evictions;
    for (const CacheNamespace& ns : cs.namespaces) {
      service::ClusterIndexCache::Stats live = ns.cache->stats();
      s.cache.hits += live.hits;
      s.cache.shared += live.shared;
      s.cache.misses += live.misses;
      s.cache.evictions += live.evictions;
      s.cache.entries += live.entries;
    }
  }
  return s;
}

}  // namespace xsm::shard
