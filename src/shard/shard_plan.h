// ShardPlan: the contiguous partition of a repository forest's TreeId space
// into K shards. Contiguity is what makes sharded matching exact and cheap
// to reason about: shard s owns global trees [starts[s], starts[s+1]), so
// concatenating per-shard results in shard order reproduces global TreeId
// order without any permutation bookkeeping — a NodeRef-sorted list per
// shard concatenates into a NodeRef-sorted global list.
#ifndef XSM_SHARD_SHARD_PLAN_H_
#define XSM_SHARD_SHARD_PLAN_H_

#include <cstddef>
#include <vector>

#include "schema/schema_forest.h"

namespace xsm::shard {

class ShardPlan {
 public:
  /// Empty plan: zero shards, zero trees.
  ShardPlan() = default;

  /// Node-balanced contiguous partition: greedily cuts the tree sequence so
  /// each shard's node total approaches the remaining mean, while leaving
  /// at least one tree for every shard still to come (so shards are only
  /// empty when there are more shards than trees — those empty shards sit
  /// at the tail). Deterministic: a pure function of (tree_nodes, k).
  static ShardPlan Balanced(const std::vector<size_t>& tree_nodes, size_t k);

  /// Reassembles the plan implied by per-shard tree counts in shard order
  /// (the warm-start path: shard snapshot sizes are the plan).
  static ShardPlan FromShardTreeCounts(const std::vector<size_t>& counts);

  size_t num_shards() const {
    return starts_.empty() ? 0 : starts_.size() - 1;
  }
  size_t num_trees() const { return starts_.empty() ? 0 : starts_.back(); }

  /// The shard owning global tree `global` (which must be in range). With
  /// empty shards, ownership goes to the shard whose half-open range
  /// actually contains the tree.
  size_t shard_of(schema::TreeId global) const;

  /// Global tree id → the owning shard's local id.
  schema::TreeId to_local(schema::TreeId global) const {
    return global - first_tree(shard_of(global));
  }
  /// Shard-local tree id → global id.
  schema::TreeId to_global(size_t shard, schema::TreeId local) const {
    return first_tree(shard) + local;
  }

  schema::TreeId first_tree(size_t shard) const {
    return static_cast<schema::TreeId>(starts_[shard]);
  }
  size_t shard_trees(size_t shard) const {
    return starts_[shard + 1] - starts_[shard];
  }

  /// Max shard node total over the mean (total / num_shards) under this
  /// plan; 1.0 is perfect balance. Returns 1.0 for empty inputs. This is
  /// the rebalance trigger metric.
  double Imbalance(const std::vector<size_t>& tree_nodes) const;

  friend bool operator==(const ShardPlan& a, const ShardPlan& b) {
    return a.starts_ == b.starts_;
  }
  friend bool operator!=(const ShardPlan& a, const ShardPlan& b) {
    return !(a == b);
  }

 private:
  /// K+1 cut points: shard s owns [starts_[s], starts_[s+1]). Monotone
  /// non-decreasing; starts_[0] == 0; starts_[K] == num_trees.
  std::vector<size_t> starts_;
};

}  // namespace xsm::shard

#endif  // XSM_SHARD_SHARD_PLAN_H_
