#include "shard/shard_plan.h"

#include <algorithm>

namespace xsm::shard {

ShardPlan ShardPlan::Balanced(const std::vector<size_t>& tree_nodes,
                              size_t k) {
  ShardPlan plan;
  if (k == 0) return plan;
  const size_t n = tree_nodes.size();
  plan.starts_.reserve(k + 1);
  plan.starts_.push_back(0);

  size_t remaining_nodes = 0;
  for (size_t nodes : tree_nodes) remaining_nodes += nodes;

  size_t t = 0;
  for (size_t s = 0; s < k; ++s) {
    const size_t remaining_shards = k - s;
    if (remaining_shards == 1) {
      // Last shard takes everything left.
      t = n;
      plan.starts_.push_back(t);
      break;
    }
    const double target = static_cast<double>(remaining_nodes) /
                          static_cast<double>(remaining_shards);
    size_t acc = 0;
    while (t < n) {
      // Leave at least one tree for each shard still to come.
      if (n - t <= remaining_shards - 1 && acc > 0) break;
      if (acc > 0) {
        // Take the next tree only if that lands closer to the target than
        // stopping here (deterministic nearest-cut greedy).
        const double with = static_cast<double>(acc + tree_nodes[t]);
        if (with - target > target - static_cast<double>(acc)) break;
      }
      acc += tree_nodes[t];
      ++t;
    }
    remaining_nodes -= acc;
    plan.starts_.push_back(t);
  }
  return plan;
}

ShardPlan ShardPlan::FromShardTreeCounts(const std::vector<size_t>& counts) {
  ShardPlan plan;
  plan.starts_.reserve(counts.size() + 1);
  plan.starts_.push_back(0);
  for (size_t count : counts) {
    plan.starts_.push_back(plan.starts_.back() + count);
  }
  return plan;
}

size_t ShardPlan::shard_of(schema::TreeId global) const {
  // First cut point strictly greater than `global` bounds the owning
  // shard's range; empty shards (equal consecutive cut points) are skipped
  // by upper_bound naturally.
  auto it = std::upper_bound(starts_.begin(), starts_.end(),
                             static_cast<size_t>(global));
  return static_cast<size_t>(it - starts_.begin()) - 1;
}

double ShardPlan::Imbalance(const std::vector<size_t>& tree_nodes) const {
  const size_t k = num_shards();
  if (k == 0) return 1.0;
  size_t total = 0;
  size_t max_shard = 0;
  for (size_t s = 0; s < k; ++s) {
    size_t acc = 0;
    for (size_t t = starts_[s]; t < starts_[s + 1]; ++t) {
      acc += tree_nodes[t];
    }
    total += acc;
    max_shard = std::max(max_shard, acc);
  }
  if (total == 0) return 1.0;
  const double mean = static_cast<double>(total) / static_cast<double>(k);
  return static_cast<double>(max_shard) / mean;
}

}  // namespace xsm::shard
