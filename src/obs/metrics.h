// Process-wide metrics registry with Prometheus text exposition.
//
// Design contract, tuned for the serving hot path:
//   - Handles are pre-registered once (service/server construction) and
//     then incremented lock-free: Counter::Increment is a single relaxed
//     fetch_add, Histogram::Observe touches only atomics plus one short
//     mutex-guarded QuantileAccumulator append — and both run once per
//     query/request, never per element.
//   - Registration is idempotent: the same (name, labels) returns the
//     same stable handle, so independently-constructed components share
//     series instead of fighting over them. A name re-registered with a
//     different type or help string is a programming error and aborts.
//   - Components that keep their own internal counters (cache, service
//     aggregates) register a *scrape hook*: a callback run under the
//     registry lock at render time that mirrors those values into
//     registry series via Counter::Set / Gauge::Set. That makes the
//     registry the single source of truth every surface reads —
//     `!stats`, `/v1/stats`, and `/metrics` can never disagree.
//   - RenderPrometheusText is deterministic: families sorted by name,
//     series sorted by label signature, fixed number formatting.
#ifndef XSM_OBS_METRICS_H_
#define XSM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/histogram.h"

namespace xsm::obs {

/// Label key/value pairs identifying one series within a family.
/// Order-insensitive: the registry canonicalizes by sorting on key.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter. Increment is allocation-free and wait-free.
/// Set exists for scrape hooks that mirror an external tally; it must
/// only be called with monotonically non-decreasing values.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time value (inflight requests, cache entries, tenants).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Latency histogram: fixed explicit upper bounds (cumulative `le`
/// buckets in the exposition) plus a QuantileAccumulator backing that
/// keeps *exact* nearest-rank P50/P95/P99 — the same accumulator
/// semantics HttpServerStats has always reported, so migrating onto the
/// registry loses no fidelity. Observe is called once per completed
/// query/request; the short mutex section is off the per-element path.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count of observations ≤ bounds()[i] (non-cumulative slot counts;
  /// the renderer accumulates). Index bounds().size() is the overflow
  /// (+Inf) slot.
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;

  /// Exact nearest-rank quantile over every observation so far.
  double Quantile(double q) const;

 private:
  std::vector<double> bounds_;  ///< strictly increasing upper bounds
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  ///< bounds+1 slots
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
  mutable std::mutex quantile_mu_;
  mutable xsm::QuantileAccumulator exact_;
};

/// Default bucket bounds for millisecond latencies (0.25ms .. 10s).
std::vector<double> DefaultLatencyBoundsMs();

/// The registry: families of named, labeled series.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Idempotent: same (name, labels) returns the same handle. The
  /// returned pointer is stable for the registry's lifetime.
  Counter* RegisterCounter(const std::string& name, const std::string& help,
                           LabelSet labels = {});
  Gauge* RegisterGauge(const std::string& name, const std::string& help,
                       LabelSet labels = {});
  Histogram* RegisterHistogram(const std::string& name,
                               const std::string& help,
                               std::vector<double> bounds,
                               LabelSet labels = {});

  /// Scrape hooks run (under the registry lock) at the start of every
  /// RenderPrometheusText, letting components mirror internal tallies
  /// into their registered series. Returns an id for RemoveScrapeHook;
  /// any component whose hook captures `this` must remove it before
  /// destruction.
  uint64_t AddScrapeHook(std::function<void()> hook);
  void RemoveScrapeHook(uint64_t id);

  /// Runs the scrape hooks, then renders the Prometheus text-format
  /// exposition (version 0.0.4): families sorted by name, series sorted
  /// by label signature, histograms as cumulative le-buckets + _sum +
  /// _count. Deterministic modulo the metric values themselves.
  std::string RenderPrometheusText();

  /// Value lookup for surfaces (stats JSON) that read single series.
  /// Returns 0 if the series does not exist.
  uint64_t CounterValue(const std::string& name,
                        const LabelSet& labels = {}) const;

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Series {
    std::string label_signature;  ///< canonical `{k="v",...}` or ""
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    Type type = Type::kCounter;
    std::string help;
    /// Keyed by label signature — deterministic render order for free.
    std::map<std::string, Series> series;
  };

  Series* FindOrCreateSeries(const std::string& name,
                             const std::string& help, Type type,
                             const LabelSet& labels)
      /* requires mu_ held */;

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
  std::map<uint64_t, std::function<void()>> hooks_;
  uint64_t next_hook_id_ = 1;
};

}  // namespace xsm::obs

#endif  // XSM_OBS_METRICS_H_
