// Per-query trace spans — the "where did the time go" layer.
//
// A TraceContext is an append-only list of named spans, carried through
// the stack as a raw pointer on ExecutionControl (nullptr = tracing off,
// and every instrumentation site is null-safe, so the untraced hot path
// pays one pointer test). Spans record wall-clock offsets against the
// context's own steady-clock epoch, so a serialized trace is
// self-consistent even when spans were produced on worker threads.
//
// Deliberately std-only: core/execution_control.h forward-declares
// TraceContext, and the core layer keeps its no-project-deps contract.
#ifndef XSM_OBS_TRACE_H_
#define XSM_OBS_TRACE_H_

#include <chrono>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace xsm::obs {

/// One completed, named interval inside a query.
struct TraceSpan {
  std::string name;     ///< stage name, e.g. "cluster_cache"
  std::string note;     ///< optional detail, e.g. "hit" / "miss"
  double start_ms = 0;  ///< offset from the context epoch
  double duration_ms = 0;
};

/// Thread-safe span collector for one query (or one command). Cheap to
/// create; spans are appended in completion order, which is
/// deterministic for the single-coordinator stages we instrument.
class TraceContext {
 public:
  TraceContext() : epoch_(std::chrono::steady_clock::now()) {}

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  /// Milliseconds elapsed since this context was created.
  double NowMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  void AddSpan(std::string name, std::string note, double start_ms,
               double duration_ms) {
    std::lock_guard<std::mutex> lock(mu_);
    spans_.push_back(TraceSpan{std::move(name), std::move(note), start_ms,
                               duration_ms});
  }

  /// Snapshot of the spans recorded so far, in append order.
  std::vector<TraceSpan> spans() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spans_;
  }

  size_t span_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spans_.size();
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
};

/// RAII span: records [construction, destruction) into `context`, or
/// does nothing at all when `context` is nullptr — instrumentation
/// sites never need their own null checks.
class ScopedSpan {
 public:
  ScopedSpan(TraceContext* context, const char* name)
      : context_(context), name_(name) {
    if (context_ != nullptr) start_ms_ = context_->NowMs();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a detail string (e.g. cache outcome) to the span.
  void set_note(std::string note) { note_ = std::move(note); }

  ~ScopedSpan() {
    if (context_ == nullptr) return;
    const double end_ms = context_->NowMs();
    context_->AddSpan(name_, std::move(note_), start_ms_,
                      end_ms - start_ms_);
  }

 private:
  TraceContext* context_;
  const char* name_;
  std::string note_;
  double start_ms_ = 0;
};

}  // namespace xsm::obs

#endif  // XSM_OBS_TRACE_H_
