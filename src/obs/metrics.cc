#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace xsm::obs {

namespace {

/// Prometheus label-value escaping: backslash, double-quote, newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Canonical `{k="v",k2="v2"}` signature (keys sorted), "" when empty.
std::string LabelSignature(LabelSet labels) {
  if (labels.empty()) return "";
  std::sort(labels.begin(), labels.end());
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first;
    out += "=\"";
    out += EscapeLabelValue(labels[i].second);
    out += "\"";
  }
  out += "}";
  return out;
}

/// Deterministic number formatting: integers (the overwhelmingly common
/// case for counters and bucket bounds) render without a decimal point
/// or exponent; everything else uses shortest-ish %g.
std::string FormatValue(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%g", v);
  }
  return buf;
}

/// Splices a suffix (_bucket/_sum/_count) and a `le` label into a
/// rendered histogram sample line.
void AppendSample(std::string* out, const std::string& name,
                  const std::string& suffix, const std::string& signature,
                  const std::string& extra_label, double value) {
  *out += name;
  *out += suffix;
  if (signature.empty()) {
    if (!extra_label.empty()) {
      *out += "{" + extra_label + "}";
    }
  } else {
    if (extra_label.empty()) {
      *out += signature;
    } else {
      // signature is `{...}`; splice the extra label before the brace.
      *out += signature.substr(0, signature.size() - 1);
      *out += ",";
      *out += extra_label;
      *out += "}";
    }
  }
  *out += " ";
  *out += FormatValue(value);
  *out += "\n";
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  // First bound >= value: Prometheus `le` buckets are upper-inclusive.
  const size_t slot =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  buckets_[slot].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
  std::lock_guard<std::mutex> lock(quantile_mu_);
  exact_.Add(value);
}

double Histogram::sum() const {
  return sum_.load(std::memory_order_relaxed);
}

double Histogram::Quantile(double q) const {
  std::lock_guard<std::mutex> lock(quantile_mu_);
  return exact_.Quantile(q);
}

std::vector<double> DefaultLatencyBoundsMs() {
  return {0.25, 0.5, 1, 2.5, 5,  10,  25,   50,   100,
          250,  500, 1000, 2500, 5000, 10000};
}

MetricsRegistry::Series* MetricsRegistry::FindOrCreateSeries(
    const std::string& name, const std::string& help, Type type,
    const LabelSet& labels) {
  Family& family = families_[name];
  if (family.series.empty()) {
    family.type = type;
    family.help = help;
  } else if (family.type != type) {
    std::fprintf(stderr,
                 "MetricsRegistry: metric '%s' re-registered with a "
                 "different type\n",
                 name.c_str());
    std::abort();
  }
  const std::string signature = LabelSignature(labels);
  Series& series = family.series[signature];
  series.label_signature = signature;
  return &series;
}

Counter* MetricsRegistry::RegisterCounter(const std::string& name,
                                          const std::string& help,
                                          LabelSet labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series* series =
      FindOrCreateSeries(name, help, Type::kCounter, labels);
  if (series->counter == nullptr) series->counter.reset(new Counter());
  return series->counter.get();
}

Gauge* MetricsRegistry::RegisterGauge(const std::string& name,
                                      const std::string& help,
                                      LabelSet labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series* series = FindOrCreateSeries(name, help, Type::kGauge, labels);
  if (series->gauge == nullptr) series->gauge.reset(new Gauge());
  return series->gauge.get();
}

Histogram* MetricsRegistry::RegisterHistogram(const std::string& name,
                                              const std::string& help,
                                              std::vector<double> bounds,
                                              LabelSet labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series* series =
      FindOrCreateSeries(name, help, Type::kHistogram, labels);
  if (series->histogram == nullptr) {
    series->histogram.reset(new Histogram(std::move(bounds)));
  }
  return series->histogram.get();
}

uint64_t MetricsRegistry::AddScrapeHook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_hook_id_++;
  hooks_[id] = std::move(hook);
  return id;
}

void MetricsRegistry::RemoveScrapeHook(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  hooks_.erase(id);
}

uint64_t MetricsRegistry::CounterValue(const std::string& name,
                                       const LabelSet& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto family = families_.find(name);
  if (family == families_.end()) return 0;
  auto series = family->second.series.find(LabelSignature(labels));
  if (series == family->second.series.end() ||
      series->second.counter == nullptr) {
    return 0;
  }
  return series->second.counter->value();
}

std::string MetricsRegistry::RenderPrometheusText() {
  std::lock_guard<std::mutex> lock(mu_);
  // Mirror component-internal tallies into their registered series.
  // Hooks only call Set on handles (no registration, no re-render), so
  // running them under mu_ is re-entrancy-safe by contract.
  for (const auto& [id, hook] : hooks_) {
    (void)id;
    hook();
  }

  std::string out;
  for (const auto& [name, family] : families_) {
    out += "# HELP " + name + " " + family.help + "\n";
    out += "# TYPE " + name + " ";
    switch (family.type) {
      case Type::kCounter:
        out += "counter\n";
        break;
      case Type::kGauge:
        out += "gauge\n";
        break;
      case Type::kHistogram:
        out += "histogram\n";
        break;
    }
    for (const auto& [signature, series] : family.series) {
      if (series.counter != nullptr) {
        out += name + signature + " " +
               FormatValue(static_cast<double>(series.counter->value())) +
               "\n";
      } else if (series.gauge != nullptr) {
        out += name + signature + " " + FormatValue(series.gauge->value()) +
               "\n";
      } else if (series.histogram != nullptr) {
        const Histogram& h = *series.histogram;
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.bucket_count(i);
          AppendSample(&out, name, "_bucket", signature,
                       "le=\"" + FormatValue(h.bounds()[i]) + "\"",
                       static_cast<double>(cumulative));
        }
        cumulative += h.bucket_count(h.bounds().size());
        AppendSample(&out, name, "_bucket", signature, "le=\"+Inf\"",
                     static_cast<double>(cumulative));
        AppendSample(&out, name, "_sum", signature, "", h.sum());
        AppendSample(&out, name, "_count", signature, "",
                     static_cast<double>(h.count()));
      }
    }
  }
  return out;
}

}  // namespace xsm::obs
