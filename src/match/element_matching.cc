#include "match/element_matching.h"

#include <limits>
#include <string>
#include <unordered_map>

namespace xsm::match {

size_t ElementMatchingResult::total_mapping_elements() const {
  size_t total = 0;
  for (const MappingElementSet& s : sets) total += s.size();
  return total;
}

schema::NodeId ElementMatchingResult::SmallestSetNode() const {
  schema::NodeId best = schema::kInvalidNode;
  size_t best_size = std::numeric_limits<size_t>::max();
  for (const MappingElementSet& s : sets) {
    if (s.size() == 0) continue;
    if (s.size() < best_size) {
      best_size = s.size();
      best = s.personal_node;
    }
  }
  return best;
}

Result<ElementMatchingResult> MatchElements(
    const schema::SchemaTree& personal, const schema::SchemaForest& repo,
    const ElementMatchingOptions& options) {
  if (personal.empty()) {
    return Status::InvalidArgument("personal schema is empty");
  }
  if (personal.size() > kMaxPersonalNodes) {
    return Status::InvalidArgument(
        "personal schema exceeds " + std::to_string(kMaxPersonalNodes) +
        " nodes (" + std::to_string(personal.size()) + ")");
  }
  if (options.threshold < 0.0 || options.threshold > 1.0) {
    return Status::InvalidArgument("threshold must be in [0,1]");
  }
  const ElementMatcher& matcher =
      options.matcher ? *options.matcher : FuzzyNameMatcher::Default();

  const size_t m = personal.size();
  ElementMatchingResult result;
  result.sets.resize(m);
  for (size_t i = 0; i < m; ++i) {
    result.sets[i].personal_node = static_cast<schema::NodeId>(i);
  }

  // Memoization: repository corpora repeat names heavily (a few thousand
  // distinct names across ~10^5 nodes), so name-only matchers score each
  // distinct (personal node, repo name) pair once.
  const bool memoize = matcher.name_only();
  std::vector<std::unordered_map<std::string, double>> cache(memoize ? m : 0);

  repo.ForEachNode([&](schema::NodeRef ref) {
    const schema::NodeProperties& props = repo.props(ref);
    if (!options.match_attributes &&
        props.kind == schema::NodeKind::kAttribute) {
      return;
    }
    uint32_t mask = 0;
    for (size_t i = 0; i < m; ++i) {
      double score;
      if (memoize) {
        auto [it, inserted] = cache[i].try_emplace(props.name, 0.0);
        if (inserted) {
          it->second =
              matcher.Score(personal.props(static_cast<schema::NodeId>(i)),
                            props);
        }
        score = it->second;
      } else {
        score = matcher.Score(personal.props(static_cast<schema::NodeId>(i)),
                              props);
      }
      if (score >= options.threshold && score > 0.0) {
        result.sets[i].elements.push_back({ref, score});
        mask |= uint32_t{1} << i;
      }
    }
    if (mask != 0) {
      // ForEachNode iterates in NodeRef order, so these stay sorted.
      result.distinct_nodes.push_back(ref);
      result.masks.push_back(mask);
    }
  });

  return result;
}

}  // namespace xsm::match
