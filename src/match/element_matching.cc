#include "match/element_matching.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <future>
#include <limits>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "match/name_dictionary.h"
#include "obs/trace.h"
#include "sim/string_similarity.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace xsm::match {

size_t ElementMatchingResult::total_mapping_elements() const {
  size_t total = 0;
  for (const MappingElementSet& s : sets) total += s.size();
  return total;
}

schema::NodeId ElementMatchingResult::SmallestSetNode() const {
  schema::NodeId best = schema::kInvalidNode;
  size_t best_size = std::numeric_limits<size_t>::max();
  for (const MappingElementSet& s : sets) {
    if (s.size() == 0) continue;
    if (s.size() < best_size) {
      best_size = s.size();
      best = s.personal_node;
    }
  }
  return best;
}

namespace {

Status ValidateInputs(const schema::SchemaTree& personal,
                      const ElementMatchingOptions& options) {
  if (personal.empty()) {
    return Status::InvalidArgument("personal schema is empty");
  }
  if (personal.size() > kMaxPersonalNodes) {
    return Status::InvalidArgument(
        "personal schema exceeds " + std::to_string(kMaxPersonalNodes) +
        " nodes (" + std::to_string(personal.size()) + ")");
  }
  if (options.threshold < 0.0 || options.threshold > 1.0) {
    return Status::InvalidArgument("threshold must be in [0,1]");
  }
  return Status::OK();
}

Status StatusFromExecution(core::ExecutionStatus status) {
  switch (status) {
    case core::ExecutionStatus::kDeadlineExceeded:
      return Status::DeadlineExceeded("element matching deadline exceeded");
    default:
      return Status::Cancelled("element matching cancelled");
  }
}

}  // namespace

Result<ElementMatchingResult> MatchElementsReference(
    const schema::SchemaTree& personal, const schema::SchemaForest& repo,
    const ElementMatchingOptions& options) {
  XSM_RETURN_NOT_OK(ValidateInputs(personal, options));
  const ElementMatcher& matcher =
      options.matcher ? *options.matcher : FuzzyNameMatcher::Default();

  const size_t m = personal.size();
  ElementMatchingResult result;
  result.sets.resize(m);
  for (size_t i = 0; i < m; ++i) {
    result.sets[i].personal_node = static_cast<schema::NodeId>(i);
  }

  // Memoization: repository corpora repeat names heavily (a few thousand
  // distinct names across ~10^5 nodes), so name-only matchers score each
  // distinct (personal node, repo name) pair once.
  const bool memoize = matcher.name_only();
  std::vector<std::unordered_map<std::string, double>> cache(memoize ? m : 0);

  repo.ForEachNode([&](schema::NodeRef ref) {
    const schema::NodeProperties& props = repo.props(ref);
    if (!options.match_attributes &&
        props.kind == schema::NodeKind::kAttribute) {
      return;
    }
    uint32_t mask = 0;
    for (size_t i = 0; i < m; ++i) {
      double score;
      if (memoize) {
        auto [it, inserted] = cache[i].try_emplace(props.name, 0.0);
        if (inserted) {
          it->second =
              matcher.Score(personal.props(static_cast<schema::NodeId>(i)),
                            props);
        }
        score = it->second;
      } else {
        score = matcher.Score(personal.props(static_cast<schema::NodeId>(i)),
                              props);
      }
      if (score >= options.threshold && score > 0.0) {
        result.sets[i].elements.push_back({ref, score});
        mask |= uint32_t{1} << i;
      }
    }
    if (mask != 0) {
      // ForEachNode iterates in NodeRef order, so these stay sorted.
      result.distinct_nodes.push_back(ref);
      result.masks.push_back(mask);
    }
  });

  return result;
}

Result<ElementMatchingResult> MatchElements(
    const schema::SchemaTree& personal, const schema::SchemaForest& repo,
    const ElementMatchingOptions& options) {
  XSM_RETURN_NOT_OK(ValidateInputs(personal, options));
  const ElementMatcher& matcher =
      options.matcher ? *options.matcher : FuzzyNameMatcher::Default();
  if (!matcher.name_only()) {
    return MatchElementsReference(personal, repo, options);
  }

  const NameDictionary* dict = options.dictionary;
  NameDictionary transient;
  if (dict == nullptr) {
    transient = NameDictionary::Build(repo);
    dict = &transient;
  } else if (dict->forest() != &repo) {
    return Status::InvalidArgument(
        "name dictionary was built over a different forest");
  }

  const size_t m = personal.size();
  const size_t num_entries = dict->size();
  ElementMatchingResult result;
  result.sets.resize(m);
  for (size_t i = 0; i < m; ++i) {
    result.sets[i].personal_node = static_cast<schema::NodeId>(i);
  }
  if (num_entries == 0) return result;

  // Personal-side name forms, folded and fingerprinted once per query.
  std::vector<std::string> personal_lower(m);
  std::vector<sim::NameSignature> personal_sigs(m);
  std::vector<NameView> personal_views(m);
  for (size_t i = 0; i < m; ++i) {
    const std::string& name =
        personal.props(static_cast<schema::NodeId>(i)).name;
    personal_lower[i] = ToLower(name);
    personal_sigs[i] = sim::NameSignature::Of(personal_lower[i]);
    personal_views[i] = {name, personal_lower[i], &personal_sigs[i]};
  }

  // --- Stage 1: score the m × D (personal node, distinct name) matrix. ----
  // Shards write disjoint ranges of these, so no synchronization is needed
  // beyond joining the futures.
  obs::TraceContext* trace =
      options.control != nullptr ? options.control->trace : nullptr;
  std::optional<obs::ScopedSpan> score_span;
  score_span.emplace(trace, "dict_score");
  const bool fast = matcher.has_name_fast_path();
  std::vector<double> scores(num_entries * m, 0.0);
  std::vector<uint32_t> entry_masks(num_entries, 0);
  // First stop verdict of any shard (0 = none); other shards bail promptly.
  std::atomic<int> stop_code{0};

  auto score_range = [&](size_t begin, size_t end) {
    core::ExecutionMonitor monitor;
    if (options.control != nullptr) {
      monitor = core::ExecutionMonitor(*options.control);
    }
    sim::EditDistanceScratch scratch;
    for (size_t d = begin; d < end; ++d) {
      if (options.control != nullptr) {
        if (stop_code.load(std::memory_order_relaxed) != 0) return;
        if (monitor.ShouldStop()) {
          stop_code.store(static_cast<int>(monitor.status()),
                          std::memory_order_relaxed);
          return;
        }
      }
      const NameDictionary::Entry& entry = dict->entry(d);
      // A name carried only by attributes can never reach the output when
      // attributes are excluded; skip its scores entirely.
      if (!options.match_attributes && entry.element_nodes.empty()) continue;
      const NameView repo_view{entry.name, entry.lower, &entry.signature};
      const schema::NodeProperties* rep_props =
          fast ? nullptr : &repo.props(entry.representative);
      uint32_t mask = 0;
      for (size_t i = 0; i < m; ++i) {
        const double score =
            fast ? matcher.ScoreName(personal_views[i], repo_view,
                                     options.threshold, &scratch)
                 : matcher.Score(
                       personal.props(static_cast<schema::NodeId>(i)),
                       *rep_props);
        if (score >= options.threshold && score > 0.0) {
          scores[d * m + i] = score;
          mask |= uint32_t{1} << i;
        }
      }
      entry_masks[d] = mask;
    }
  };

  if (options.pool != nullptr && options.pool->num_threads() > 1 &&
      num_entries > 1) {
    size_t shards = options.num_shards != 0 ? options.num_shards
                                            : options.pool->num_threads() * 4;
    shards = std::min(std::max<size_t>(shards, 1), num_entries);
    const size_t chunk = (num_entries + shards - 1) / shards;
    std::vector<std::future<void>> futures;
    futures.reserve(shards);
    for (size_t s = 0; s < shards; ++s) {
      const size_t begin = s * chunk;
      const size_t end = std::min(num_entries, begin + chunk);
      if (begin >= end) break;
      futures.push_back(
          options.pool->Submit([&score_range, begin, end]() {
            score_range(begin, end);
          }));
    }
    for (std::future<void>& f : futures) f.get();
  } else {
    score_range(0, num_entries);
  }
  if (const int code = stop_code.load(std::memory_order_relaxed); code != 0) {
    return StatusFromExecution(static_cast<core::ExecutionStatus>(code));
  }

  // --- Stage 2: broadcast qualifying scores via the posting lists. --------
  // Exact output sizes first, so every vector is built with one allocation.
  score_span.reset();
  obs::ScopedSpan broadcast_span(trace, "dict_broadcast");
  size_t total_nodes = 0;
  std::vector<size_t> per_set(m, 0);
  for (size_t d = 0; d < num_entries; ++d) {
    const uint32_t mask = entry_masks[d];
    if (mask == 0) continue;
    const NameDictionary::Entry& entry = dict->entry(d);
    const size_t nodes =
        entry.element_nodes.size() +
        (options.match_attributes ? entry.attribute_nodes.size() : 0);
    total_nodes += nodes;
    uint32_t bits = mask;
    while (bits != 0) {
      per_set[static_cast<size_t>(std::countr_zero(bits))] += nodes;
      bits &= bits - 1;
    }
  }
  std::vector<std::pair<schema::NodeRef, uint32_t>> matched;
  matched.reserve(total_nodes);
  for (size_t d = 0; d < num_entries; ++d) {
    if (entry_masks[d] == 0) continue;
    const NameDictionary::Entry& entry = dict->entry(d);
    const uint32_t idx = static_cast<uint32_t>(d);
    for (schema::NodeRef ref : entry.element_nodes) {
      matched.emplace_back(ref, idx);
    }
    if (options.match_attributes) {
      for (schema::NodeRef ref : entry.attribute_nodes) {
        matched.emplace_back(ref, idx);
      }
    }
  }
  // NodeRefs are unique across entries, so this recovers exactly the
  // repository iteration order of the reference sweep.
  std::sort(matched.begin(), matched.end());

  result.distinct_nodes.reserve(matched.size());
  result.masks.reserve(matched.size());
  for (size_t i = 0; i < m; ++i) result.sets[i].elements.reserve(per_set[i]);
  for (const auto& [ref, d] : matched) {
    const uint32_t mask = entry_masks[d];
    result.distinct_nodes.push_back(ref);
    result.masks.push_back(mask);
    uint32_t bits = mask;
    while (bits != 0) {
      const size_t i = static_cast<size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      result.sets[i].elements.push_back({ref, scores[d * m + i]});
    }
  }
  return result;
}

}  // namespace xsm::match
