// Structure element matchers (Fig. 2 ②, the second matcher family):
// similarity indexes computed from the structural context of a node —
// its ancestors, children, and descendant leaves — in the spirit of
// Cupid's TreeMatch "similarity of structural contexts".
//
// These power the paper's §2.3 *non-generic* clustered matching technique:
// localized matchers run before clustering to produce preliminary mapping
// elements; structural matchers then run only within clusters, "and
// consequently [have] an improved efficiency".
#ifndef XSM_MATCH_STRUCTURAL_MATCHER_H_
#define XSM_MATCH_STRUCTURAL_MATCHER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "schema/schema_tree.h"

namespace xsm::match {

/// Interface: similarity of two nodes judged by their tree context.
class StructuralMatcher {
 public:
  virtual ~StructuralMatcher() = default;

  /// Similarity in [0,1] of `personal_node` (in `personal`) and
  /// `repo_node` (in `repo`).
  virtual double Score(const schema::SchemaTree& personal,
                       schema::NodeId personal_node,
                       const schema::SchemaTree& repo,
                       schema::NodeId repo_node) const = 0;

  virtual std::string_view name() const = 0;
};

/// Soft token-set similarity of the *ancestor paths*: the names on the
/// path from the root to (excluding) the node, tokenized. "data/title"
/// under "lib/book" scores high against "title" under "bookstore/book".
class PathContextMatcher final : public StructuralMatcher {
 public:
  double Score(const schema::SchemaTree& personal,
               schema::NodeId personal_node, const schema::SchemaTree& repo,
               schema::NodeId repo_node) const override;
  std::string_view name() const override { return "path-context"; }
};

/// Soft similarity of the immediate child-name sets (leaf nodes score 1.0
/// against other leaves, 0 against inner nodes).
class ChildrenContextMatcher final : public StructuralMatcher {
 public:
  double Score(const schema::SchemaTree& personal,
               schema::NodeId personal_node, const schema::SchemaTree& repo,
               schema::NodeId repo_node) const override;
  std::string_view name() const override { return "children-context"; }
};

/// Soft similarity of the descendant-leaf name sets (Cupid's leaf-level
/// context). Leaf collection is capped to bound cost on huge subtrees.
class LeafContextMatcher final : public StructuralMatcher {
 public:
  explicit LeafContextMatcher(size_t max_leaves = 32)
      : max_leaves_(max_leaves) {}
  double Score(const schema::SchemaTree& personal,
               schema::NodeId personal_node, const schema::SchemaTree& repo,
               schema::NodeId repo_node) const override;
  std::string_view name() const override { return "leaf-context"; }

 private:
  size_t max_leaves_;
};

/// Weighted average of structural matchers.
class CompositeStructuralMatcher final : public StructuralMatcher {
 public:
  CompositeStructuralMatcher() = default;
  void Add(std::shared_ptr<const StructuralMatcher> matcher, double weight);

  double Score(const schema::SchemaTree& personal,
               schema::NodeId personal_node, const schema::SchemaTree& repo,
               schema::NodeId repo_node) const override;
  std::string_view name() const override { return "composite-structural"; }
  size_t num_components() const { return components_.size(); }

  /// Path + children + leaf contexts at equal weight — a reasonable
  /// default second-phase matcher.
  static const CompositeStructuralMatcher& Default();

 private:
  struct Component {
    std::shared_ptr<const StructuralMatcher> matcher;
    double weight;
  };
  std::vector<Component> components_;
  double total_weight_ = 0;
};

/// Soft token-set similarity used by the context matchers (exposed for
/// tests): mean over the larger set of the best fuzzy match in the other
/// set; 1.0 for two empty sets, 0.0 if exactly one side is empty.
double SoftTokenSetSimilarity(const std::vector<std::string>& a,
                              const std::vector<std::string>& b);

}  // namespace xsm::match

#endif  // XSM_MATCH_STRUCTURAL_MATCHER_H_
