#include "match/element_matcher.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "sim/string_similarity.h"
#include "util/string_util.h"

namespace xsm::match {

double ElementMatcher::ScoreName(const NameView& personal,
                                 const NameView& repo, double threshold,
                                 sim::EditDistanceScratch* scratch) const {
  (void)threshold;
  (void)scratch;
  schema::NodeProperties a;
  a.name = std::string(personal.raw);
  schema::NodeProperties b;
  b.name = std::string(repo.raw);
  return Score(a, b);
}

double FuzzyNameMatcher::Score(const schema::NodeProperties& personal,
                               const schema::NodeProperties& repo) const {
  return ignore_case_
             ? sim::FuzzyStringSimilarityIgnoreCase(personal.name, repo.name)
             : sim::FuzzyStringSimilarity(personal.name, repo.name);
}

double FuzzyNameMatcher::ScoreName(const NameView& personal,
                                   const NameView& repo, double threshold,
                                   sim::EditDistanceScratch* scratch) const {
  // The signatures are over the case-folds, but folding never increases the
  // edit distance, so the bag bound stays sound for the case-sensitive
  // variant too.
  return ignore_case_
             ? sim::FuzzyStringSimilarityWithThreshold(
                   personal.lower, repo.lower, threshold, scratch,
                   personal.signature, repo.signature)
             : sim::FuzzyStringSimilarityWithThreshold(
                   personal.raw, repo.raw, threshold, scratch,
                   personal.signature, repo.signature);
}

const FuzzyNameMatcher& FuzzyNameMatcher::Default() {
  static const FuzzyNameMatcher kInstance(/*ignore_case=*/true);
  return kInstance;
}

double JaroWinklerNameMatcher::Score(
    const schema::NodeProperties& personal,
    const schema::NodeProperties& repo) const {
  return sim::JaroWinklerSimilarity(ToLower(personal.name),
                                    ToLower(repo.name));
}

double JaroWinklerNameMatcher::ScoreName(
    const NameView& personal, const NameView& repo, double threshold,
    sim::EditDistanceScratch* scratch) const {
  (void)threshold;
  (void)scratch;
  return sim::JaroWinklerSimilarity(personal.lower, repo.lower);
}

double NgramNameMatcher::Score(const schema::NodeProperties& personal,
                               const schema::NodeProperties& repo) const {
  return sim::NgramDiceSimilarity(personal.name, repo.name, n_);
}

double NgramNameMatcher::ScoreName(const NameView& personal,
                                   const NameView& repo, double threshold,
                                   sim::EditDistanceScratch* scratch) const {
  (void)threshold;
  (void)scratch;
  return sim::NgramDiceSimilarityPrelowered(personal.lower, repo.lower, n_);
}

double TokenNameMatcher::Score(const schema::NodeProperties& personal,
                               const schema::NodeProperties& repo) const {
  std::vector<std::string> a = TokenizeIdentifier(personal.name);
  std::vector<std::string> b = TokenizeIdentifier(repo.name);
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());
  size_t inter = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double SynonymNameMatcher::Score(const schema::NodeProperties& personal,
                                 const schema::NodeProperties& repo) const {
  return dictionary_->Score(personal.name, repo.name, synonym_score_);
}

namespace {

// Coarse datatype families for compatibility scoring.
enum class TypeFamily { kUnknown, kString, kNumeric, kTemporal, kBoolean };

TypeFamily FamilyOf(std::string_view datatype) {
  if (datatype.empty()) return TypeFamily::kUnknown;
  std::string t = ToLower(datatype);
  // Strip common prefixes: "xs:", "xsd:".
  if (StartsWith(t, "xs:")) t = t.substr(3);
  if (StartsWith(t, "xsd:")) t = t.substr(4);
  if (t == "string" || t == "cdata" || t == "token" || t == "id" ||
      t == "idref" || t == "nmtoken" || t == "anyuri" ||
      t == "normalizedstring" || t == "pcdata") {
    return TypeFamily::kString;
  }
  if (t == "int" || t == "integer" || t == "long" || t == "short" ||
      t == "decimal" || t == "float" || t == "double" ||
      t == "nonnegativeinteger" || t == "positiveinteger" || t == "byte" ||
      t == "unsignedint" || t == "unsignedlong") {
    return TypeFamily::kNumeric;
  }
  if (t == "date" || t == "datetime" || t == "time" || t == "duration" ||
      t == "gyear" || t == "gmonth" || t == "gday") {
    return TypeFamily::kTemporal;
  }
  if (t == "boolean" || t == "bool") return TypeFamily::kBoolean;
  return TypeFamily::kUnknown;
}

}  // namespace

double DatatypeMatcher::Score(const schema::NodeProperties& personal,
                              const schema::NodeProperties& repo) const {
  TypeFamily a = FamilyOf(personal.datatype);
  TypeFamily b = FamilyOf(repo.datatype);
  if (a == TypeFamily::kUnknown || b == TypeFamily::kUnknown) return 0.5;
  if (ToLower(personal.datatype) == ToLower(repo.datatype)) return 1.0;
  if (a == b) return 0.8;
  // Numbers serialize as strings in XML, so string<->numeric keeps partial
  // credit; other cross-family pairs do not.
  if ((a == TypeFamily::kString && b == TypeFamily::kNumeric) ||
      (a == TypeFamily::kNumeric && b == TypeFamily::kString)) {
    return 0.4;
  }
  return 0.0;
}

void CompositeMatcher::Add(std::shared_ptr<const ElementMatcher> matcher,
                           double weight) {
  assert(matcher != nullptr);
  assert(weight >= 0);
  total_weight_ += weight;
  components_.push_back({std::move(matcher), weight});
}

double CompositeMatcher::Score(const schema::NodeProperties& personal,
                               const schema::NodeProperties& repo) const {
  if (components_.empty() || total_weight_ <= 0) return 0.0;
  double acc = 0;
  for (const Component& c : components_) {
    acc += c.weight * c.matcher->Score(personal, repo);
  }
  return acc / total_weight_;
}

bool CompositeMatcher::name_only() const {
  for (const Component& c : components_) {
    if (!c.matcher->name_only()) return false;
  }
  return true;
}

}  // namespace xsm::match
