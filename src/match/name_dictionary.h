// NameDictionary: the deduplicated name table of one repository forest.
//
// Repository corpora repeat names heavily (a few thousand distinct names
// across ~10^5 nodes), so the element-matching engine scores personal nodes
// against *distinct names* and broadcasts the qualifying scores back to
// nodes through per-name posting lists. The dictionary is that precomputed
// index: one entry per distinct spelling, carrying the cached ASCII
// case-fold (so case-insensitive matchers never re-lowercase a repository
// name) and the nodes holding the name, sorted by NodeRef and split by node
// kind (so attribute filtering never re-reads node properties).
//
// Immutable after Build, never mutated by the engine: one dictionary is
// built per service::RepositorySnapshot and shared by every query against
// it, from any number of threads.
#ifndef XSM_MATCH_NAME_DICTIONARY_H_
#define XSM_MATCH_NAME_DICTIONARY_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "schema/schema_forest.h"
#include "sim/string_similarity.h"
#include "util/wire.h"

namespace xsm::service {
class RepositorySnapshot;
}

namespace xsm::match {

class NameDictionary {
 public:
  struct Entry {
    std::string name;   ///< raw spelling, exactly as in the forest
    std::string lower;  ///< cached ASCII case-fold of `name`
    /// Character histogram of `lower`, for bag-distance candidate pruning.
    sim::NameSignature signature;
    /// Posting lists: nodes carrying the name, sorted by NodeRef, split by
    /// kind so ElementMatchingOptions::match_attributes is a list choice.
    std::vector<schema::NodeRef> element_nodes;
    std::vector<schema::NodeRef> attribute_nodes;
    /// First node carrying the name (in NodeRef order); its properties
    /// stand in for the whole group when a name-only matcher without a
    /// dedicated name fast path scores this entry.
    schema::NodeRef representative;

    size_t num_nodes() const {
      return element_nodes.size() + attribute_nodes.size();
    }
  };

  static constexpr size_t kNotFound = static_cast<size_t>(-1);

  /// How much of an incremental build reused the previous dictionary's
  /// per-name state (the case-folds and signatures — the compute-heavy
  /// part) instead of recomputing it.
  struct IncrementalStats {
    size_t trees_reused = 0;    ///< trees taken through the no-hash path
    size_t trees_rebuilt = 0;   ///< trees indexed from scratch
    size_t entries_copied = 0;  ///< entry metadata copied from `previous`
    size_t entries_computed = 0;  ///< ToLower + signature actually ran
  };

  NameDictionary() = default;

  /// One pass over the forest; entries are created in first-appearance
  /// order, posting lists come out sorted because ForEachNode iterates in
  /// NodeRef order.
  static NameDictionary Build(const schema::SchemaForest& forest);

  /// Builds the dictionary for `forest` reusing `previous` where possible:
  /// `reuse_map[t]` names the previous forest's tree that new tree `t` is
  /// (the identical frozen payload), or -1 for a new/changed tree. Reused
  /// trees never hash or re-fold a name — their nodes resolve through the
  /// previous dictionary's per-node entry table — and entry metadata
  /// (case-fold, signature) is copied, not recomputed, for every name
  /// already known. The result is equal to Build(forest) member for member;
  /// only the work differs. `stats` (may be null) reports the reuse split.
  static NameDictionary BuildIncremental(
      const schema::SchemaForest& forest, const NameDictionary& previous,
      const std::vector<schema::TreeId>& reuse_map,
      IncrementalStats* stats = nullptr);

  /// The forest this dictionary was built over (identity, by address). The
  /// engine rejects a dictionary whose forest is not the one being matched.
  const schema::SchemaForest* forest() const { return forest_; }

  /// Number of distinct names.
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const Entry& entry(size_t i) const { return entries_[i]; }
  const std::vector<Entry>& entries() const { return entries_; }

  /// Total nodes indexed (= forest.total_nodes() at build time).
  size_t total_nodes() const { return total_nodes_; }

  /// Entry index of `name`, or kNotFound.
  size_t Find(std::string_view name) const;

  /// Binary serialization hook for the snapshot store: every entry with its
  /// cached fold, bag signature and posting lists, so a load never re-folds
  /// or re-hashes a repository name. The per-node entry table is derived
  /// from the posting lists on load, not stored twice.
  void SerializeTo(wire::Writer* out) const;

  /// Inverse of SerializeTo, bound to `forest` (which must be the very
  /// forest the dictionary was built over — the caller re-binds via the
  /// snapshot-assembly hook once the forest reaches its final address).
  /// Rebuilds the name hash and per-node table, validating that posting
  /// lists are sorted, in-range, kind-consistent and cover every forest
  /// node exactly once; anything else fails with Corruption.
  static Result<NameDictionary> DeserializeBinary(
      wire::Reader* in, const schema::SchemaForest& forest);

  /// Entry index of the name carried by `ref` (O(1) array read; `ref` must
  /// be a valid node of the dictionary's forest). This is the per-node
  /// table that lets an incremental successor build skip hashing for
  /// unchanged trees.
  size_t EntryOf(schema::NodeRef ref) const {
    return entry_of_node_[static_cast<size_t>(ref.tree)]
                         [static_cast<size_t>(ref.node)];
  }

 private:
  /// Snapshot assembly moves the forest into its final location after the
  /// dictionary is deserialized, then re-points it here.
  friend class xsm::service::RepositorySnapshot;
  void BindForest(const schema::SchemaForest* forest) { forest_ = forest; }

  struct TransparentHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  /// Indexes ref.node's entry for one tree; appended by both build paths.
  void IndexNode(schema::NodeRef ref, size_t entry_index,
                 schema::NodeKind kind);

  const schema::SchemaForest* forest_ = nullptr;
  std::vector<Entry> entries_;
  std::unordered_map<std::string, size_t, TransparentHash, std::equal_to<>>
      index_;
  /// entry_of_node_[tree][node] = entry index of that node's name.
  std::vector<std::vector<uint32_t>> entry_of_node_;
  size_t total_nodes_ = 0;
};

}  // namespace xsm::match

#endif  // XSM_MATCH_NAME_DICTIONARY_H_
