// NameDictionary: the deduplicated name table of one repository forest.
//
// Repository corpora repeat names heavily (a few thousand distinct names
// across ~10^5 nodes), so the element-matching engine scores personal nodes
// against *distinct names* and broadcasts the qualifying scores back to
// nodes through per-name posting lists. The dictionary is that precomputed
// index: one entry per distinct spelling, carrying the cached ASCII
// case-fold (so case-insensitive matchers never re-lowercase a repository
// name) and the nodes holding the name, sorted by NodeRef and split by node
// kind (so attribute filtering never re-reads node properties).
//
// Immutable after Build, never mutated by the engine: one dictionary is
// built per service::RepositorySnapshot and shared by every query against
// it, from any number of threads.
#ifndef XSM_MATCH_NAME_DICTIONARY_H_
#define XSM_MATCH_NAME_DICTIONARY_H_

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "schema/schema_forest.h"
#include "sim/string_similarity.h"

namespace xsm::match {

class NameDictionary {
 public:
  struct Entry {
    std::string name;   ///< raw spelling, exactly as in the forest
    std::string lower;  ///< cached ASCII case-fold of `name`
    /// Character histogram of `lower`, for bag-distance candidate pruning.
    sim::NameSignature signature;
    /// Posting lists: nodes carrying the name, sorted by NodeRef, split by
    /// kind so ElementMatchingOptions::match_attributes is a list choice.
    std::vector<schema::NodeRef> element_nodes;
    std::vector<schema::NodeRef> attribute_nodes;
    /// First node carrying the name (in NodeRef order); its properties
    /// stand in for the whole group when a name-only matcher without a
    /// dedicated name fast path scores this entry.
    schema::NodeRef representative;

    size_t num_nodes() const {
      return element_nodes.size() + attribute_nodes.size();
    }
  };

  static constexpr size_t kNotFound = static_cast<size_t>(-1);

  NameDictionary() = default;

  /// One pass over the forest; entries are created in first-appearance
  /// order, posting lists come out sorted because ForEachNode iterates in
  /// NodeRef order.
  static NameDictionary Build(const schema::SchemaForest& forest);

  /// The forest this dictionary was built over (identity, by address). The
  /// engine rejects a dictionary whose forest is not the one being matched.
  const schema::SchemaForest* forest() const { return forest_; }

  /// Number of distinct names.
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const Entry& entry(size_t i) const { return entries_[i]; }
  const std::vector<Entry>& entries() const { return entries_; }

  /// Total nodes indexed (= forest.total_nodes() at build time).
  size_t total_nodes() const { return total_nodes_; }

  /// Entry index of `name`, or kNotFound.
  size_t Find(std::string_view name) const;

 private:
  struct TransparentHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  const schema::SchemaForest* forest_ = nullptr;
  std::vector<Entry> entries_;
  std::unordered_map<std::string, size_t, TransparentHash, std::equal_to<>>
      index_;
  size_t total_nodes_ = 0;
};

}  // namespace xsm::match

#endif  // XSM_MATCH_NAME_DICTIONARY_H_
