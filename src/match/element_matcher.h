// Element matchers (Fig. 2 ②): each matcher computes a similarity index for
// a (personal node, repository node) pair from localized properties.
//
// Bellflower itself uses a single fuzzy name matcher; the remaining matchers
// implement the "more hints" architecture the paper surveys (synonyms,
// datatypes, token overlap) and are combined with a weighted average exactly
// as described for COMA/LSD.
#ifndef XSM_MATCH_ELEMENT_MATCHER_H_
#define XSM_MATCH_ELEMENT_MATCHER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "schema/schema_tree.h"
#include "sim/synonym_dictionary.h"

namespace xsm::sim {
struct EditDistanceScratch;  // sim/string_similarity.h
struct NameSignature;
}  // namespace xsm::sim

namespace xsm::match {

/// One name in the two spellings the matching engine caches: the raw form
/// and its ASCII case-fold, plus (optionally) the case-fold's character
/// histogram. Repository-side views come from the NameDictionary,
/// personal-side views are folded once per query, so case-insensitive
/// matchers never lowercase inside the scoring loop.
struct NameView {
  std::string_view raw;
  std::string_view lower;
  /// Signature of `lower`, for bag-distance pruning; may be null.
  const sim::NameSignature* signature = nullptr;
};

/// Interface of a localized element matcher: similarity of two nodes from
/// their local properties only (name, kind, datatype).
class ElementMatcher {
 public:
  virtual ~ElementMatcher() = default;

  /// Similarity index in [0,1].
  virtual double Score(const schema::NodeProperties& personal,
                       const schema::NodeProperties& repo) const = 0;

  /// Identifier for diagnostics.
  virtual std::string_view name() const = 0;

  /// True if Score depends only on the two node names. Name-only matchers
  /// let the matching stage memoize scores per distinct repository name
  /// (the "approximate string joins almost for free" optimization the paper
  /// cites for efficient matcher implementations).
  virtual bool name_only() const { return true; }

  /// True if ScoreName is a real implementation. The matching engine then
  /// scores (personal node, distinct name) pairs through it — with cached
  /// case-folds, reusable scratch buffers, and threshold pruning — instead
  /// of the property-based Score.
  virtual bool has_name_fast_path() const { return false; }

  /// Threshold-aware name scorer. Contract: whenever the true Score of two
  /// nodes carrying these names is >= threshold, the returned value must be
  /// bit-identical to that Score; when it is below, any value < threshold
  /// may be returned (the caller drops the pair either way — this is what
  /// makes pruning invisible in the results). `scratch` may be null and may
  /// be reused across calls on one thread. The default forwards to Score on
  /// name-only property sets; overrides should do better.
  virtual double ScoreName(const NameView& personal, const NameView& repo,
                           double threshold,
                           sim::EditDistanceScratch* scratch) const;
};

/// Bellflower's matcher: normalized Damerau–Levenshtein similarity of the
/// (case-folded) node names — the CompareStringFuzzy stand-in.
class FuzzyNameMatcher final : public ElementMatcher {
 public:
  explicit FuzzyNameMatcher(bool ignore_case = true)
      : ignore_case_(ignore_case) {}
  double Score(const schema::NodeProperties& personal,
               const schema::NodeProperties& repo) const override;
  std::string_view name() const override { return "fuzzy-name"; }
  bool has_name_fast_path() const override { return true; }
  /// Banded, early-abandoning edit distance over the cached case-folds
  /// (raw forms when case-sensitive); pairs whose length difference alone
  /// caps the similarity below the threshold never run the DP.
  double ScoreName(const NameView& personal, const NameView& repo,
                   double threshold,
                   sim::EditDistanceScratch* scratch) const override;

  /// Process-wide default instance (case-insensitive).
  static const FuzzyNameMatcher& Default();

 private:
  bool ignore_case_;
};

/// Jaro–Winkler over names; favors shared prefixes, common for schema tags.
class JaroWinklerNameMatcher final : public ElementMatcher {
 public:
  double Score(const schema::NodeProperties& personal,
               const schema::NodeProperties& repo) const override;
  std::string_view name() const override { return "jaro-winkler"; }
  bool has_name_fast_path() const override { return true; }
  /// Runs on the cached case-folds, skipping the two ToLower copies Score
  /// pays per pair.
  double ScoreName(const NameView& personal, const NameView& repo,
                   double threshold,
                   sim::EditDistanceScratch* scratch) const override;
};

/// Character n-gram Dice coefficient over names.
class NgramNameMatcher final : public ElementMatcher {
 public:
  explicit NgramNameMatcher(int n = 3) : n_(n) {}
  double Score(const schema::NodeProperties& personal,
               const schema::NodeProperties& repo) const override;
  std::string_view name() const override { return "ngram"; }
  bool has_name_fast_path() const override { return true; }
  double ScoreName(const NameView& personal, const NameView& repo,
                   double threshold,
                   sim::EditDistanceScratch* scratch) const override;

 private:
  int n_;
};

/// Jaccard similarity of identifier word tokens ("authorName" vs
/// "name_of_author" share {author, name}).
class TokenNameMatcher final : public ElementMatcher {
 public:
  double Score(const schema::NodeProperties& personal,
               const schema::NodeProperties& repo) const override;
  std::string_view name() const override { return "token"; }
};

/// Dictionary matcher: 1 for equal names, `synonym_score` for dictionary
/// synonyms, 0 otherwise.
class SynonymNameMatcher final : public ElementMatcher {
 public:
  explicit SynonymNameMatcher(
      const sim::SynonymDictionary* dictionary = nullptr,
      double synonym_score = 0.9)
      : dictionary_(dictionary ? dictionary
                               : &sim::SynonymDictionary::Default()),
        synonym_score_(synonym_score) {}
  double Score(const schema::NodeProperties& personal,
               const schema::NodeProperties& repo) const override;
  std::string_view name() const override { return "synonym"; }

 private:
  const sim::SynonymDictionary* dictionary_;
  double synonym_score_;
};

/// Datatype compatibility: 1 for identical types, partial credit for
/// compatible families (string-like, numeric, temporal), neutral 0.5 when
/// either side is undeclared.
class DatatypeMatcher final : public ElementMatcher {
 public:
  double Score(const schema::NodeProperties& personal,
               const schema::NodeProperties& repo) const override;
  std::string_view name() const override { return "datatype"; }
  bool name_only() const override { return false; }
};

/// Weighted average of component matchers — the paper's "combined into a
/// single similarity index by means of weighted average".
class CompositeMatcher final : public ElementMatcher {
 public:
  CompositeMatcher() = default;

  /// Adds a component with the given non-negative weight.
  void Add(std::shared_ptr<const ElementMatcher> matcher, double weight);

  double Score(const schema::NodeProperties& personal,
               const schema::NodeProperties& repo) const override;
  std::string_view name() const override { return "composite"; }
  bool name_only() const override;

  size_t num_components() const { return components_.size(); }

 private:
  struct Component {
    std::shared_ptr<const ElementMatcher> matcher;
    double weight;
  };
  std::vector<Component> components_;
  double total_weight_ = 0;
};

}  // namespace xsm::match

#endif  // XSM_MATCH_ELEMENT_MATCHER_H_
