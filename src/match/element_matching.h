// The element matching stage (Fig. 2 ①→③): compares every personal-schema
// node with every repository node and produces the mapping-element sets
// ME_n. Pairs scoring at or above the matcher threshold become mapping
// elements.
#ifndef XSM_MATCH_ELEMENT_MATCHING_H_
#define XSM_MATCH_ELEMENT_MATCHING_H_

#include <cstdint>
#include <vector>

#include "match/element_matcher.h"
#include "schema/schema_forest.h"
#include "schema/schema_tree.h"
#include "util/status.h"

namespace xsm::match {

/// One mapping element n ↦ n′: a repository node with its similarity to the
/// personal node owning the set.
struct MappingElement {
  schema::NodeRef node;
  double score = 0;
};

/// ME_n for one personal node: all repository nodes it may map to, sorted
/// by NodeRef (tree-major) so per-cluster intersection is a linear merge.
struct MappingElementSet {
  schema::NodeId personal_node = schema::kInvalidNode;
  std::vector<MappingElement> elements;

  size_t size() const { return elements.size(); }
};

/// The personal schema may have at most this many nodes: matched personal
/// nodes are tracked in 32-bit masks. The paper's personal schemas are
/// "small" by design (personal-schema querying), so this is not limiting.
inline constexpr size_t kMaxPersonalNodes = 32;

struct ElementMatchingOptions {
  /// Minimum combined similarity for a pair to become a mapping element.
  /// The paper keeps "non-zero" pairs; with a fuzzy matcher almost every
  /// pair is non-zero, so real systems cut at a threshold.
  double threshold = 0.5;
  /// Matcher to use; defaults to Bellflower's FuzzyNameMatcher.
  const ElementMatcher* matcher = nullptr;
  /// Whether attribute nodes are candidates (the paper's repository counts
  /// "element (attribute) nodes").
  bool match_attributes = true;
};

/// Output of the stage.
struct ElementMatchingResult {
  /// Indexed by personal NodeId.
  std::vector<MappingElementSet> sets;

  /// Distinct repository nodes that matched at least one personal node,
  /// sorted by NodeRef; aligned with `masks`.
  std::vector<schema::NodeRef> distinct_nodes;
  /// masks[i] bit b set ⇔ distinct_nodes[i] ∈ ME_b.
  std::vector<uint32_t> masks;

  /// Σ_n |ME_n| — the paper's "mapping elements" count (4520 in §5).
  size_t total_mapping_elements() const;

  /// Personal node with the smallest non-empty ME set (the paper's MEmin,
  /// used to seed k-means centroids). kInvalidNode if every set is empty.
  schema::NodeId SmallestSetNode() const;

  /// Bit mask with one bit per personal node (bits [0, |Ns|)).
  uint32_t FullMask() const {
    return sets.size() >= 32
               ? 0xFFFFFFFFu
               : ((uint32_t{1} << sets.size()) - 1);
  }
};

/// Runs the stage. Errors: empty personal schema, more than
/// kMaxPersonalNodes nodes, threshold outside [0,1], or null repository
/// forest are rejected with InvalidArgument.
Result<ElementMatchingResult> MatchElements(
    const schema::SchemaTree& personal, const schema::SchemaForest& repo,
    const ElementMatchingOptions& options);

}  // namespace xsm::match

#endif  // XSM_MATCH_ELEMENT_MATCHING_H_
