// The element matching stage (Fig. 2 ①→③): compares every personal-schema
// node with every repository node and produces the mapping-element sets
// ME_n. Pairs scoring at or above the matcher threshold become mapping
// elements.
//
// For name-only matchers the stage runs as a two-stage engine: stage 1
// scores the m × D matrix of (personal node, distinct repository name)
// pairs against a NameDictionary — optionally sharded across a ThreadPool
// and pruned by the matcher's threshold-aware name fast path — and stage 2
// broadcasts the qualifying scores to nodes through the dictionary's
// posting lists. The engine is bit-identical to the retained reference
// sweep (MatchElementsReference) for any fixed inputs; dictionary, pool,
// shard count and cancellation only change how fast the answer arrives.
#ifndef XSM_MATCH_ELEMENT_MATCHING_H_
#define XSM_MATCH_ELEMENT_MATCHING_H_

#include <cstdint>
#include <vector>

#include "core/execution_control.h"
#include "match/element_matcher.h"
#include "schema/schema_forest.h"
#include "schema/schema_tree.h"
#include "util/status.h"

namespace xsm {
class ThreadPool;  // util/thread_pool.h
}  // namespace xsm

namespace xsm::match {

class NameDictionary;  // match/name_dictionary.h

/// One mapping element n ↦ n′: a repository node with its similarity to the
/// personal node owning the set.
struct MappingElement {
  schema::NodeRef node;
  double score = 0;
};

/// ME_n for one personal node: all repository nodes it may map to, sorted
/// by NodeRef (tree-major) so per-cluster intersection is a linear merge.
struct MappingElementSet {
  schema::NodeId personal_node = schema::kInvalidNode;
  std::vector<MappingElement> elements;

  size_t size() const { return elements.size(); }
};

/// The personal schema may have at most this many nodes: matched personal
/// nodes are tracked in 32-bit masks. The paper's personal schemas are
/// "small" by design (personal-schema querying), so this is not limiting.
inline constexpr size_t kMaxPersonalNodes = 32;

struct ElementMatchingOptions {
  /// Minimum combined similarity for a pair to become a mapping element.
  /// The paper keeps "non-zero" pairs; with a fuzzy matcher almost every
  /// pair is non-zero, so real systems cut at a threshold.
  double threshold = 0.5;
  /// Matcher to use; defaults to Bellflower's FuzzyNameMatcher.
  const ElementMatcher* matcher = nullptr;
  /// Whether attribute nodes are candidates (the paper's repository counts
  /// "element (attribute) nodes").
  bool match_attributes = true;

  // --- Execution plumbing. The fields below never change the result, only
  // --- how fast (or whether) it is computed; the cluster-state cache key
  // --- deliberately excludes them.

  /// Precomputed name dictionary, which must have been built over the same
  /// forest instance being matched (service::RepositorySnapshot keeps one).
  /// nullptr: a transient dictionary is built for the call when the matcher
  /// is name-only.
  const NameDictionary* dictionary = nullptr;
  /// Scores dictionary shards on this pool; nullptr runs them serially on
  /// the calling thread. Use a pool whose workers never wait on element
  /// matching themselves (service::MatchService keeps a dedicated one).
  ThreadPool* pool = nullptr;
  /// Number of dictionary shards scored independently; 0 = four per pool
  /// thread (clamped to the dictionary size). More shards smooth load
  /// imbalance between cheap and expensive names.
  size_t num_shards = 0;
  /// Cooperative cancellation/deadline for the scoring stage, polled per
  /// dictionary entry. A stopped run returns Status kCancelled /
  /// kDeadlineExceeded instead of a result. Only the dictionary engine
  /// polls it; the reference sweep ignores it.
  const core::ExecutionControl* control = nullptr;
};

/// Output of the stage.
struct ElementMatchingResult {
  /// Indexed by personal NodeId.
  std::vector<MappingElementSet> sets;

  /// Distinct repository nodes that matched at least one personal node,
  /// sorted by NodeRef; aligned with `masks`.
  std::vector<schema::NodeRef> distinct_nodes;
  /// masks[i] bit b set ⇔ distinct_nodes[i] ∈ ME_b.
  std::vector<uint32_t> masks;

  /// Σ_n |ME_n| — the paper's "mapping elements" count (4520 in §5).
  size_t total_mapping_elements() const;

  /// Personal node with the smallest non-empty ME set (the paper's MEmin,
  /// used to seed k-means centroids). kInvalidNode if every set is empty.
  schema::NodeId SmallestSetNode() const;

  /// Bit mask with one bit per personal node (bits [0, |Ns|)).
  uint32_t FullMask() const {
    return sets.size() >= 32
               ? 0xFFFFFFFFu
               : ((uint32_t{1} << sets.size()) - 1);
  }
};

/// Runs the stage. Name-only matchers take the dictionary engine; others
/// fall back to the reference sweep (their scores may depend on more than
/// names, so per-name deduplication does not apply). Errors: empty personal
/// schema, more than kMaxPersonalNodes nodes, threshold outside [0,1], or a
/// dictionary built over a different forest are rejected with
/// InvalidArgument; a run stopped by `options.control` returns kCancelled /
/// kDeadlineExceeded.
Result<ElementMatchingResult> MatchElements(
    const schema::SchemaTree& personal, const schema::SchemaForest& repo,
    const ElementMatchingOptions& options);

/// The retained seed implementation: a serial all-pairs sweep with
/// per-personal-node score memoization. This is the ground truth the
/// dictionary engine must reproduce bit-for-bit (the equivalence suite
/// enforces it across thresholds, matchers and thread counts) and the
/// execution path for matchers that are not name-only. Ignores the
/// execution-plumbing fields of `options`.
Result<ElementMatchingResult> MatchElementsReference(
    const schema::SchemaTree& personal, const schema::SchemaForest& repo,
    const ElementMatchingOptions& options);

}  // namespace xsm::match

#endif  // XSM_MATCH_ELEMENT_MATCHING_H_
