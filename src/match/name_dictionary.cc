#include "match/name_dictionary.h"

#include <algorithm>
#include <cassert>

#include "util/string_util.h"

namespace xsm::match {

void NameDictionary::IndexNode(schema::NodeRef ref, size_t entry_index,
                               schema::NodeKind kind) {
  Entry& entry = entries_[entry_index];
  if (kind == schema::NodeKind::kAttribute) {
    entry.attribute_nodes.push_back(ref);
  } else {
    entry.element_nodes.push_back(ref);
  }
  entry_of_node_[static_cast<size_t>(ref.tree)][static_cast<size_t>(
      ref.node)] = static_cast<uint32_t>(entry_index);
  ++total_nodes_;
}

NameDictionary NameDictionary::Build(const schema::SchemaForest& forest) {
  NameDictionary dict;
  dict.forest_ = &forest;
  dict.entry_of_node_.reserve(forest.num_trees());
  for (schema::TreeId t = 0;
       t < static_cast<schema::TreeId>(forest.num_trees()); ++t) {
    dict.entry_of_node_.emplace_back(forest.tree(t).size());
  }
  forest.ForEachNode([&dict, &forest](schema::NodeRef ref) {
    const schema::NodeProperties& props = forest.props(ref);
    auto [it, inserted] =
        dict.index_.try_emplace(props.name, dict.entries_.size());
    if (inserted) {
      Entry entry;
      entry.name = props.name;
      entry.lower = ToLower(props.name);
      entry.signature = sim::NameSignature::Of(entry.lower);
      entry.representative = ref;
      dict.entries_.push_back(std::move(entry));
    }
    dict.IndexNode(ref, it->second, props.kind);
  });
  return dict;
}

NameDictionary NameDictionary::BuildIncremental(
    const schema::SchemaForest& forest, const NameDictionary& previous,
    const std::vector<schema::TreeId>& reuse_map, IncrementalStats* stats) {
  assert(reuse_map.size() == forest.num_trees());
  NameDictionary dict;
  dict.forest_ = &forest;
  dict.entry_of_node_.reserve(forest.num_trees());
  for (schema::TreeId t = 0;
       t < static_cast<schema::TreeId>(forest.num_trees()); ++t) {
    dict.entry_of_node_.emplace_back(forest.tree(t).size());
  }
  IncrementalStats local;
  // Lazily resolved previous-entry → new-entry translation: one hash lookup
  // per distinct carried-over name, then O(1) for every further node.
  std::vector<size_t> remap(previous.size(), kNotFound);

  for (schema::TreeId t = 0;
       t < static_cast<schema::TreeId>(forest.num_trees()); ++t) {
    const schema::SchemaTree& tree = forest.tree(t);
    schema::TreeId prev_tree = reuse_map[static_cast<size_t>(t)];
    const bool reuse =
        prev_tree >= 0 &&
        static_cast<size_t>(prev_tree) < previous.entry_of_node_.size() &&
        previous.entry_of_node_[static_cast<size_t>(prev_tree)].size() ==
            tree.size();
    if (reuse) {
      ++local.trees_reused;
      for (schema::NodeId n = 0; n < static_cast<schema::NodeId>(tree.size());
           ++n) {
        schema::NodeRef ref{t, n};
        size_t prev_entry =
            previous.EntryOf(schema::NodeRef{prev_tree, n});
        size_t entry_index = remap[prev_entry];
        if (entry_index == kNotFound) {
          const Entry& old = previous.entry(prev_entry);
          auto [it, inserted] =
              dict.index_.try_emplace(old.name, dict.entries_.size());
          if (inserted) {
            Entry entry;
            entry.name = old.name;
            entry.lower = old.lower;          // copied, not re-folded
            entry.signature = old.signature;  // copied, not recomputed
            entry.representative = ref;
            dict.entries_.push_back(std::move(entry));
            ++local.entries_copied;
          }
          entry_index = it->second;
          remap[prev_entry] = entry_index;
        }
        dict.IndexNode(ref, entry_index, tree.props(n).kind);
      }
    } else {
      ++local.trees_rebuilt;
      for (schema::NodeId n = 0; n < static_cast<schema::NodeId>(tree.size());
           ++n) {
        const schema::NodeProperties& props = tree.props(n);
        schema::NodeRef ref{t, n};
        auto [it, inserted] =
            dict.index_.try_emplace(props.name, dict.entries_.size());
        if (inserted) {
          // The name may still be known to the previous dictionary (a
          // changed tree mostly carries old vocabulary): copy its fold and
          // signature instead of recomputing.
          size_t prev_entry = previous.Find(props.name);
          Entry entry;
          entry.name = props.name;
          if (prev_entry != kNotFound) {
            const Entry& old = previous.entry(prev_entry);
            entry.lower = old.lower;
            entry.signature = old.signature;
            ++local.entries_copied;
          } else {
            entry.lower = ToLower(props.name);
            entry.signature = sim::NameSignature::Of(entry.lower);
            ++local.entries_computed;
          }
          entry.representative = ref;
          dict.entries_.push_back(std::move(entry));
        }
        dict.IndexNode(ref, it->second, props.kind);
      }
    }
  }
  if (stats != nullptr) *stats = local;
  return dict;
}

size_t NameDictionary::Find(std::string_view name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kNotFound : it->second;
}

namespace {

void WriteRef(wire::Writer* out, schema::NodeRef ref) {
  out->I32(ref.tree);
  out->I32(ref.node);
}

schema::NodeRef ReadRef(wire::Reader* in) {
  schema::NodeRef ref;
  ref.tree = in->I32();
  ref.node = in->I32();
  return ref;
}

}  // namespace

void NameDictionary::SerializeTo(wire::Writer* out) const {
  out->U64(entries_.size());
  for (const Entry& entry : entries_) {
    out->Str(entry.name);
    out->Str(entry.lower);
    for (uint8_t count : entry.signature.counts) out->U8(count);
    out->U64(entry.element_nodes.size());
    for (schema::NodeRef ref : entry.element_nodes) WriteRef(out, ref);
    out->U64(entry.attribute_nodes.size());
    for (schema::NodeRef ref : entry.attribute_nodes) WriteRef(out, ref);
    WriteRef(out, entry.representative);
  }
  out->U64(total_nodes_);
}

Result<NameDictionary> NameDictionary::DeserializeBinary(
    wire::Reader* in, const schema::SchemaForest& forest) {
  auto corrupt = [](const char* what) {
    return Status::Corruption(std::string("name dictionary: ") + what);
  };
  NameDictionary dict;
  dict.forest_ = &forest;
  dict.entry_of_node_.reserve(forest.num_trees());
  for (schema::TreeId t = 0;
       t < static_cast<schema::TreeId>(forest.num_trees()); ++t) {
    // Sentinel-filled; IndexNode overwrites exactly-once below.
    dict.entry_of_node_.emplace_back(forest.tree(t).size(), UINT32_MAX);
  }

  const uint64_t num_entries = in->U64();
  // Each entry holds at least one node, so the forest size bounds the
  // believable entry count.
  if (in->ok() && num_entries > forest.total_nodes()) {
    return corrupt("more entries than forest nodes");
  }
  auto in_range = [&forest](schema::NodeRef ref) {
    return ref.tree >= 0 &&
           static_cast<size_t>(ref.tree) < forest.num_trees() &&
           ref.node >= 0 &&
           static_cast<size_t>(ref.node) < forest.tree(ref.tree).size();
  };
  for (uint64_t i = 0; i < num_entries && in->ok(); ++i) {
    Entry entry;
    entry.name = in->Str();
    entry.lower = in->Str();
    for (uint8_t& count : entry.signature.counts) count = in->U8();
    for (int list = 0; list < 2 && in->ok(); ++list) {
      const bool attributes = list == 1;
      std::vector<schema::NodeRef>& refs =
          attributes ? entry.attribute_nodes : entry.element_nodes;
      const uint64_t count = in->U64();
      if (!in->ok()) break;
      if (count > forest.total_nodes()) {
        return corrupt("posting list longer than forest");
      }
      refs.reserve(static_cast<size_t>(count));
      for (uint64_t j = 0; j < count && in->ok(); ++j) {
        schema::NodeRef ref = ReadRef(in);
        if (!in->ok()) break;
        if (!in_range(ref)) return corrupt("posting ref out of range");
        if ((forest.props(ref).kind == schema::NodeKind::kAttribute) !=
            attributes) {
          return corrupt("posting ref in wrong kind list");
        }
        if (!refs.empty() && !(refs.back() < ref)) {
          return corrupt("posting list not strictly sorted");
        }
        if (dict.entry_of_node_[static_cast<size_t>(ref.tree)]
                               [static_cast<size_t>(ref.node)] !=
            UINT32_MAX) {
          return corrupt("node indexed by two entries");
        }
        dict.entry_of_node_[static_cast<size_t>(ref.tree)]
                           [static_cast<size_t>(ref.node)] =
            static_cast<uint32_t>(i);
        ++dict.total_nodes_;
        refs.push_back(ref);
      }
    }
    entry.representative = ReadRef(in);
    if (!in->ok()) break;
    if (entry.num_nodes() == 0) return corrupt("entry without nodes");
    // The representative is the first carrier in NodeRef order — an
    // invariant, so derive-and-compare rather than trust.
    schema::NodeRef first;
    if (entry.element_nodes.empty()) {
      first = entry.attribute_nodes.front();
    } else if (entry.attribute_nodes.empty()) {
      first = entry.element_nodes.front();
    } else {
      first = std::min(entry.element_nodes.front(),
                       entry.attribute_nodes.front());
    }
    if (entry.representative != first) {
      return corrupt("representative is not the first carrier");
    }
    auto [it, inserted] =
        dict.index_.try_emplace(entry.name, dict.entries_.size());
    (void)it;
    if (!inserted) return corrupt("duplicate entry name");
    dict.entries_.push_back(std::move(entry));
  }
  const uint64_t stored_total = in->U64();
  XSM_RETURN_NOT_OK(in->status());
  if (stored_total != dict.total_nodes_ ||
      dict.total_nodes_ != forest.total_nodes()) {
    // Combined with the exactly-once table fill above, equality with the
    // forest's node count proves every node is covered.
    return corrupt("posting lists do not cover the forest");
  }
  return dict;
}

}  // namespace xsm::match
