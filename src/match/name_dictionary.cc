#include "match/name_dictionary.h"

#include <cassert>

#include "util/string_util.h"

namespace xsm::match {

void NameDictionary::IndexNode(schema::NodeRef ref, size_t entry_index,
                               schema::NodeKind kind) {
  Entry& entry = entries_[entry_index];
  if (kind == schema::NodeKind::kAttribute) {
    entry.attribute_nodes.push_back(ref);
  } else {
    entry.element_nodes.push_back(ref);
  }
  entry_of_node_[static_cast<size_t>(ref.tree)][static_cast<size_t>(
      ref.node)] = static_cast<uint32_t>(entry_index);
  ++total_nodes_;
}

NameDictionary NameDictionary::Build(const schema::SchemaForest& forest) {
  NameDictionary dict;
  dict.forest_ = &forest;
  dict.entry_of_node_.reserve(forest.num_trees());
  for (schema::TreeId t = 0;
       t < static_cast<schema::TreeId>(forest.num_trees()); ++t) {
    dict.entry_of_node_.emplace_back(forest.tree(t).size());
  }
  forest.ForEachNode([&dict, &forest](schema::NodeRef ref) {
    const schema::NodeProperties& props = forest.props(ref);
    auto [it, inserted] =
        dict.index_.try_emplace(props.name, dict.entries_.size());
    if (inserted) {
      Entry entry;
      entry.name = props.name;
      entry.lower = ToLower(props.name);
      entry.signature = sim::NameSignature::Of(entry.lower);
      entry.representative = ref;
      dict.entries_.push_back(std::move(entry));
    }
    dict.IndexNode(ref, it->second, props.kind);
  });
  return dict;
}

NameDictionary NameDictionary::BuildIncremental(
    const schema::SchemaForest& forest, const NameDictionary& previous,
    const std::vector<schema::TreeId>& reuse_map, IncrementalStats* stats) {
  assert(reuse_map.size() == forest.num_trees());
  NameDictionary dict;
  dict.forest_ = &forest;
  dict.entry_of_node_.reserve(forest.num_trees());
  for (schema::TreeId t = 0;
       t < static_cast<schema::TreeId>(forest.num_trees()); ++t) {
    dict.entry_of_node_.emplace_back(forest.tree(t).size());
  }
  IncrementalStats local;
  // Lazily resolved previous-entry → new-entry translation: one hash lookup
  // per distinct carried-over name, then O(1) for every further node.
  std::vector<size_t> remap(previous.size(), kNotFound);

  for (schema::TreeId t = 0;
       t < static_cast<schema::TreeId>(forest.num_trees()); ++t) {
    const schema::SchemaTree& tree = forest.tree(t);
    schema::TreeId prev_tree = reuse_map[static_cast<size_t>(t)];
    const bool reuse =
        prev_tree >= 0 &&
        static_cast<size_t>(prev_tree) < previous.entry_of_node_.size() &&
        previous.entry_of_node_[static_cast<size_t>(prev_tree)].size() ==
            tree.size();
    if (reuse) {
      ++local.trees_reused;
      for (schema::NodeId n = 0; n < static_cast<schema::NodeId>(tree.size());
           ++n) {
        schema::NodeRef ref{t, n};
        size_t prev_entry =
            previous.EntryOf(schema::NodeRef{prev_tree, n});
        size_t entry_index = remap[prev_entry];
        if (entry_index == kNotFound) {
          const Entry& old = previous.entry(prev_entry);
          auto [it, inserted] =
              dict.index_.try_emplace(old.name, dict.entries_.size());
          if (inserted) {
            Entry entry;
            entry.name = old.name;
            entry.lower = old.lower;          // copied, not re-folded
            entry.signature = old.signature;  // copied, not recomputed
            entry.representative = ref;
            dict.entries_.push_back(std::move(entry));
            ++local.entries_copied;
          }
          entry_index = it->second;
          remap[prev_entry] = entry_index;
        }
        dict.IndexNode(ref, entry_index, tree.props(n).kind);
      }
    } else {
      ++local.trees_rebuilt;
      for (schema::NodeId n = 0; n < static_cast<schema::NodeId>(tree.size());
           ++n) {
        const schema::NodeProperties& props = tree.props(n);
        schema::NodeRef ref{t, n};
        auto [it, inserted] =
            dict.index_.try_emplace(props.name, dict.entries_.size());
        if (inserted) {
          // The name may still be known to the previous dictionary (a
          // changed tree mostly carries old vocabulary): copy its fold and
          // signature instead of recomputing.
          size_t prev_entry = previous.Find(props.name);
          Entry entry;
          entry.name = props.name;
          if (prev_entry != kNotFound) {
            const Entry& old = previous.entry(prev_entry);
            entry.lower = old.lower;
            entry.signature = old.signature;
            ++local.entries_copied;
          } else {
            entry.lower = ToLower(props.name);
            entry.signature = sim::NameSignature::Of(entry.lower);
            ++local.entries_computed;
          }
          entry.representative = ref;
          dict.entries_.push_back(std::move(entry));
        }
        dict.IndexNode(ref, it->second, props.kind);
      }
    }
  }
  if (stats != nullptr) *stats = local;
  return dict;
}

size_t NameDictionary::Find(std::string_view name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kNotFound : it->second;
}

}  // namespace xsm::match
