#include "match/name_dictionary.h"

#include "util/string_util.h"

namespace xsm::match {

NameDictionary NameDictionary::Build(const schema::SchemaForest& forest) {
  NameDictionary dict;
  dict.forest_ = &forest;
  forest.ForEachNode([&dict, &forest](schema::NodeRef ref) {
    const schema::NodeProperties& props = forest.props(ref);
    auto [it, inserted] =
        dict.index_.try_emplace(props.name, dict.entries_.size());
    if (inserted) {
      Entry entry;
      entry.name = props.name;
      entry.lower = ToLower(props.name);
      entry.signature = sim::NameSignature::Of(entry.lower);
      entry.representative = ref;
      dict.entries_.push_back(std::move(entry));
    }
    Entry& entry = dict.entries_[it->second];
    if (props.kind == schema::NodeKind::kAttribute) {
      entry.attribute_nodes.push_back(ref);
    } else {
      entry.element_nodes.push_back(ref);
    }
    ++dict.total_nodes_;
  });
  return dict;
}

size_t NameDictionary::Find(std::string_view name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kNotFound : it->second;
}

}  // namespace xsm::match
