#include "match/structural_matcher.h"

#include <algorithm>
#include <cassert>

#include "sim/string_similarity.h"
#include "util/string_util.h"

namespace xsm::match {

using schema::NodeId;
using schema::SchemaTree;

double SoftTokenSetSimilarity(const std::vector<std::string>& a,
                              const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  // Symmetric soft overlap: for each token, its best fuzzy counterpart on
  // the other side; normalize by the larger set so extra context costs.
  auto directional = [](const std::vector<std::string>& from,
                        const std::vector<std::string>& to) {
    double total = 0;
    for (const std::string& t : from) {
      double best = 0;
      for (const std::string& u : to) {
        best = std::max(best, sim::FuzzyStringSimilarity(t, u));
        if (best >= 1.0) break;
      }
      total += best;
    }
    return total;
  };
  double overlap = directional(a, b) + directional(b, a);
  return overlap / static_cast<double>(a.size() + b.size());
}

namespace {

std::vector<std::string> AncestorTokens(const SchemaTree& tree, NodeId node) {
  std::vector<std::string> tokens;
  for (NodeId a = tree.parent(node); a != schema::kInvalidNode;
       a = tree.parent(a)) {
    for (std::string& t : TokenizeIdentifier(tree.name(a))) {
      tokens.push_back(std::move(t));
    }
  }
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

std::vector<std::string> ChildNames(const SchemaTree& tree, NodeId node) {
  std::vector<std::string> names;
  for (NodeId c : tree.children(node)) {
    names.push_back(ToLower(tree.name(c)));
  }
  return names;
}

std::vector<std::string> LeafNames(const SchemaTree& tree, NodeId node,
                                   size_t cap) {
  std::vector<std::string> names;
  std::vector<NodeId> stack{node};
  while (!stack.empty() && names.size() < cap) {
    NodeId n = stack.back();
    stack.pop_back();
    if (tree.IsLeaf(n)) {
      if (n != node) names.push_back(ToLower(tree.name(n)));
      continue;
    }
    for (NodeId c : tree.children(n)) stack.push_back(c);
  }
  return names;
}

}  // namespace

double PathContextMatcher::Score(const SchemaTree& personal,
                                 NodeId personal_node,
                                 const SchemaTree& repo,
                                 NodeId repo_node) const {
  std::vector<std::string> a = AncestorTokens(personal, personal_node);
  std::vector<std::string> b = AncestorTokens(repo, repo_node);
  // Two roots have equal (empty) context; a root against a deep node has
  // no shared context evidence — SoftTokenSetSimilarity handles both.
  return SoftTokenSetSimilarity(a, b);
}

double ChildrenContextMatcher::Score(const SchemaTree& personal,
                                     NodeId personal_node,
                                     const SchemaTree& repo,
                                     NodeId repo_node) const {
  return SoftTokenSetSimilarity(ChildNames(personal, personal_node),
                                ChildNames(repo, repo_node));
}

double LeafContextMatcher::Score(const SchemaTree& personal,
                                 NodeId personal_node,
                                 const SchemaTree& repo,
                                 NodeId repo_node) const {
  return SoftTokenSetSimilarity(
      LeafNames(personal, personal_node, max_leaves_),
      LeafNames(repo, repo_node, max_leaves_));
}

void CompositeStructuralMatcher::Add(
    std::shared_ptr<const StructuralMatcher> matcher, double weight) {
  assert(matcher != nullptr);
  assert(weight >= 0);
  total_weight_ += weight;
  components_.push_back({std::move(matcher), weight});
}

double CompositeStructuralMatcher::Score(const SchemaTree& personal,
                                         NodeId personal_node,
                                         const SchemaTree& repo,
                                         NodeId repo_node) const {
  if (components_.empty() || total_weight_ <= 0) return 0.0;
  double acc = 0;
  for (const Component& c : components_) {
    acc += c.weight *
           c.matcher->Score(personal, personal_node, repo, repo_node);
  }
  return acc / total_weight_;
}

const CompositeStructuralMatcher& CompositeStructuralMatcher::Default() {
  static const CompositeStructuralMatcher* kDefault = [] {
    auto* m = new CompositeStructuralMatcher();
    m->Add(std::make_shared<PathContextMatcher>(), 1.0);
    m->Add(std::make_shared<ChildrenContextMatcher>(), 1.0);
    m->Add(std::make_shared<LeafContextMatcher>(), 1.0);
    return m;
  }();
  return *kDefault;
}

}  // namespace xsm::match
