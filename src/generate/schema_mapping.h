// SchemaMapping: the solution object of Def. 2/3 — an assignment of every
// personal-schema node to a repository node of one tree, with its similarity
// index breakdown.
#ifndef XSM_GENERATE_SCHEMA_MAPPING_H_
#define XSM_GENERATE_SCHEMA_MAPPING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "schema/schema_forest.h"
#include "schema/schema_tree.h"

namespace xsm::generate {

/// A complete schema mapping s ↦ t. `t` is the subtree of repository tree
/// `tree` spanned by the images; its total path length is recorded for the
/// Δpath component.
struct SchemaMapping {
  schema::TreeId tree = -1;
  /// images[i] = image node of personal node i (indexed by personal NodeId).
  std::vector<schema::NodeId> images;

  double delta = 0;       ///< Δ(s,t), the similarity index.
  double delta_sim = 0;   ///< Eq. 1 component.
  double delta_path = 0;  ///< Eq. 2 component.
  /// |Et|: Σ over personal edges of the image path length.
  int64_t total_path_length = 0;

  /// Identity of the mapping (tree + images), ignoring scores.
  bool SameAssignment(const SchemaMapping& other) const {
    return tree == other.tree && images == other.images;
  }
};

/// Deterministic result order: by Δ descending, then tree id, then images
/// lexicographically. Strict weak ordering suitable for std::sort.
struct MappingOrder {
  bool operator()(const SchemaMapping& a, const SchemaMapping& b) const {
    if (a.delta != b.delta) return a.delta > b.delta;
    if (a.tree != b.tree) return a.tree < b.tree;
    return a.images < b.images;
  }
};

/// Renders "tree=3 Δ=0.82 [book→lib/book, ...]" using the forest for names.
std::string MappingToString(const SchemaMapping& mapping,
                            const schema::SchemaTree& personal,
                            const schema::SchemaForest& repo);

}  // namespace xsm::generate

#endif  // XSM_GENERATE_SCHEMA_MAPPING_H_
