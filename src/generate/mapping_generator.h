// Schema mapping generator (Fig. 2 ④): enumerates assignments of personal
// nodes to candidate repository nodes within one cluster and keeps those
// with Δ(s,t) ≥ δ.
//
// Algorithms:
//  * kBranchAndBound — the paper's generator (adaptation of B&B, Kreher &
//    Stinson): depth-first over personal nodes in pre-order, pruning any
//    partial mapping whose admissible upper bound falls below δ. Counts the
//    partial mappings generated — the paper's machine-independent
//    performance indicator (Tab. 1b).
//  * kExhaustive — same enumeration without the bound: generates every
//    syntactically valid (partial) mapping. Baseline for Tab. 1b and the
//    correctness oracle for tests.
//  * kBeam — width-limited level search as used by iMap; may miss results.
//  * kAStar — best-first with the same admissible bound as B&B (LSD-style);
//    returns exactly the B&B result set.
#ifndef XSM_GENERATE_MAPPING_GENERATOR_H_
#define XSM_GENERATE_MAPPING_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "core/execution_control.h"
#include "generate/schema_mapping.h"
#include "label/tree_index.h"
#include "match/element_matching.h"
#include "objective/objective.h"
#include "schema/schema_tree.h"
#include "util/status.h"

namespace xsm::generate {

enum class Algorithm {
  kBranchAndBound = 0,
  kExhaustive = 1,
  kBeam = 2,
  kAStar = 3,
};

/// Strength of the B&B bounding function.
enum class BoundMode {
  /// Every unclosed personal edge is assumed to map to a length-1 path.
  kSimple = 0,
  /// Forward checking: an unclosed edge whose parent image is already
  /// fixed is lower-bounded by the minimum tree distance from that image
  /// to any candidate of the child. Still admissible (never prunes a
  /// qualifying mapping) and markedly tighter on spread-out candidates.
  kForwardChecking = 1,
};

struct GeneratorOptions {
  Algorithm algorithm = Algorithm::kBranchAndBound;
  /// Objective-function threshold δ: only mappings with Δ ≥ δ are produced.
  double delta = 0.75;
  /// Bounding function used by kBranchAndBound (kAStar/kBeam use kSimple).
  BoundMode bound_mode = BoundMode::kForwardChecking;
  /// Beam width for Algorithm::kBeam.
  size_t beam_width = 64;
  /// Safety valve: stop after this many partial mappings (0 = unlimited).
  /// Exhaustive runs on huge clusters can otherwise run very long.
  uint64_t max_partial_mappings = 0;
};

/// Work counters. `partial_mappings` reproduces the paper's B&B counter:
/// every extension of a prefix assignment by one candidate counts once
/// (complete assignments included).
struct GeneratorCounters {
  uint64_t partial_mappings = 0;
  uint64_t complete_mappings = 0;
  uint64_t pruned_by_bound = 0;
  uint64_t emitted = 0;
  /// True if max_partial_mappings stopped the search early.
  bool truncated = false;

  GeneratorCounters& operator+=(const GeneratorCounters& other);
};

/// Per-cluster candidate sets: for each personal node (by NodeId), the
/// cluster members it may map to. All candidates live in tree `tree`.
struct ClusterCandidates {
  schema::TreeId tree = -1;
  /// candidates[i] — sorted by NodeId; empty ⇒ the cluster is not useful.
  std::vector<std::vector<match::MappingElement>> candidates;

  /// "Useful cluster": at least one candidate per personal node (§2.3).
  bool useful() const;

  /// Π_n |candidates[n]| — the cluster's share of the search space
  /// (Tab. 1a "total # of schema mappings"). Returned as double because the
  /// non-clustered space overflows int64 on large repositories.
  double SearchSpaceSize() const;
};

/// Generator for a fixed personal schema and objective. Thread-compatible:
/// Generate() is const and reentrant.
class MappingGenerator {
 public:
  /// `personal` must stay alive for the generator's lifetime.
  MappingGenerator(const schema::SchemaTree& personal,
                   const objective::BellflowerObjective& objective,
                   const GeneratorOptions& options);

  /// Enumerates mappings within one cluster. Appends results to `out`
  /// (unsorted) and accumulates counters. `tree_index` must belong to
  /// `cands.tree`.
  ///
  /// `monitor` (optional) is polled at node-expansion granularity: when it
  /// reports a stop (cancellation, deadline, early-exit budget) the search
  /// returns immediately with the mappings emitted so far; each emitted
  /// mapping is recorded through it right after being appended to `out`.
  Status Generate(const ClusterCandidates& cands,
                  const label::TreeIndex& tree_index,
                  std::vector<SchemaMapping>* out,
                  GeneratorCounters* counters,
                  core::ExecutionMonitor* monitor = nullptr) const;

  const GeneratorOptions& options() const { return options_; }

 private:
  struct SearchContext;

  void Dfs(SearchContext* ctx, size_t position, int64_t pending_sum) const;
  void RunBeam(SearchContext* ctx) const;
  void RunAStar(SearchContext* ctx) const;

  const schema::SchemaTree& personal_;
  objective::BellflowerObjective objective_;
  GeneratorOptions options_;

  /// Personal nodes in pre-order; position 0 is the root, every later
  /// position's parent occurs earlier, so each assignment closes exactly
  /// one personal edge.
  std::vector<schema::NodeId> order_;
  /// parent_position_[p] = position of order_[p]'s parent (undefined for 0).
  std::vector<size_t> parent_position_;
  /// children_positions_[p] = positions whose parent position is p.
  std::vector<std::vector<size_t>> children_positions_;
};

}  // namespace xsm::generate

#endif  // XSM_GENERATE_MAPPING_GENERATOR_H_
