// Partial schema mappings (extension of the paper's §2.3 / §7 future
// work): a non-useful cluster lacks candidates for some personal nodes and
// can never produce a complete mapping, but its partial mappings "might,
// nevertheless, be valuable to the user".
//
// Definition used here: a partial mapping assigns every personal node that
// has candidates in the cluster (the maximal assignable subset) to distinct
// repository nodes. Scoring degrades gracefully:
//   Δsim  — Eq. 1 averaged over *all* personal nodes (missing nodes
//           contribute 0, penalizing low coverage);
//   Δpath — Eq. 2 over the "closed" edges only: each assigned non-root
//           node connects to its nearest assigned ancestor in the personal
//           schema (edges to unassigned subtrees are skipped).
#ifndef XSM_GENERATE_PARTIAL_GENERATOR_H_
#define XSM_GENERATE_PARTIAL_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "generate/mapping_generator.h"
#include "generate/schema_mapping.h"
#include "label/tree_index.h"
#include "objective/objective.h"
#include "schema/schema_tree.h"
#include "util/status.h"

namespace xsm::generate {

/// A partial schema mapping: images[i] == schema::kInvalidNode for
/// unassigned personal nodes.
struct PartialMapping {
  schema::TreeId tree = -1;
  std::vector<schema::NodeId> images;
  double delta = 0;
  double delta_sim = 0;
  double delta_path = 0;
  int assigned_count = 0;

  /// Fraction of personal nodes that are mapped, in (0, 1].
  double Coverage() const {
    return images.empty() ? 0.0
                          : static_cast<double>(assigned_count) /
                                static_cast<double>(images.size());
  }
};

/// Descending Δ, then tree, then images (strict weak ordering).
struct PartialMappingOrder {
  bool operator()(const PartialMapping& a, const PartialMapping& b) const {
    if (a.delta != b.delta) return a.delta > b.delta;
    if (a.tree != b.tree) return a.tree < b.tree;
    return a.images < b.images;
  }
};

struct PartialGeneratorOptions {
  /// Threshold on the coverage-penalized Δ.
  double delta = 0.5;
  /// Partial mappings assigning fewer personal nodes are discarded.
  size_t min_assigned = 2;
  /// Work cap (0 = unlimited).
  uint64_t max_partial_mappings = 0;
};

/// Enumerates maximal partial mappings within one cluster. Reuses the
/// GeneratorCounters conventions of MappingGenerator.
class PartialMappingGenerator {
 public:
  PartialMappingGenerator(const schema::SchemaTree& personal,
                          const objective::BellflowerObjective& objective,
                          const PartialGeneratorOptions& options);

  /// Appends qualifying partial mappings of `cands` to `out`. Useful
  /// clusters are legal input (they simply yield complete assignments).
  /// `monitor` (optional) is polled at node-expansion granularity for
  /// cancellation/deadline; emitted partial mappings are reported through
  /// it but do not consume the early-exit mapping budget.
  Status Generate(const ClusterCandidates& cands,
                  const label::TreeIndex& tree_index,
                  std::vector<PartialMapping>* out,
                  GeneratorCounters* counters,
                  core::ExecutionMonitor* monitor = nullptr) const;

 private:
  struct Walk;
  void Dfs(Walk* walk, size_t position) const;

  const schema::SchemaTree& personal_;
  objective::BellflowerObjective objective_;
  PartialGeneratorOptions options_;
  std::vector<schema::NodeId> order_;  // personal pre-order
};

}  // namespace xsm::generate

#endif  // XSM_GENERATE_PARTIAL_GENERATOR_H_
