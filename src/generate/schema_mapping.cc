#include "generate/schema_mapping.h"

#include "util/string_util.h"

namespace xsm::generate {

std::string MappingToString(const SchemaMapping& mapping,
                            const schema::SchemaTree& personal,
                            const schema::SchemaForest& repo) {
  std::string out = StringPrintf("tree=%d \xCE\x94=%.4f (sim=%.4f path=%.4f) ",
                                 mapping.tree, mapping.delta,
                                 mapping.delta_sim, mapping.delta_path);
  out += '[';
  const schema::SchemaTree& t = repo.tree(mapping.tree);
  for (size_t i = 0; i < mapping.images.size(); ++i) {
    if (i > 0) out += ", ";
    out += personal.name(static_cast<schema::NodeId>(i));
    out += "\xE2\x86\x92";  // →
    // Render the image as a root path for readability.
    std::vector<schema::NodeId> path;
    for (schema::NodeId n = mapping.images[i]; n != schema::kInvalidNode;
         n = t.parent(n)) {
      path.push_back(n);
    }
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      if (it != path.rbegin()) out += '/';
      out += t.name(*it);
    }
  }
  out += ']';
  return out;
}

}  // namespace xsm::generate
