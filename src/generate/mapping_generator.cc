#include "generate/mapping_generator.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace xsm::generate {

using schema::NodeId;

GeneratorCounters& GeneratorCounters::operator+=(
    const GeneratorCounters& other) {
  partial_mappings += other.partial_mappings;
  complete_mappings += other.complete_mappings;
  pruned_by_bound += other.pruned_by_bound;
  emitted += other.emitted;
  truncated |= other.truncated;
  return *this;
}

bool ClusterCandidates::useful() const {
  if (candidates.empty()) return false;
  for (const auto& c : candidates) {
    if (c.empty()) return false;
  }
  return true;
}

double ClusterCandidates::SearchSpaceSize() const {
  double space = 1;
  for (const auto& c : candidates) {
    space *= static_cast<double>(c.size());
  }
  return candidates.empty() ? 0 : space;
}

MappingGenerator::MappingGenerator(
    const schema::SchemaTree& personal,
    const objective::BellflowerObjective& objective,
    const GeneratorOptions& options)
    : personal_(personal), objective_(objective), options_(options) {
  order_ = personal.PreOrder();
  parent_position_.resize(order_.size());
  std::vector<size_t> position_of(personal.size());
  for (size_t p = 0; p < order_.size(); ++p) {
    position_of[static_cast<size_t>(order_[p])] = p;
  }
  for (size_t p = 1; p < order_.size(); ++p) {
    parent_position_[p] =
        position_of[static_cast<size_t>(personal.parent(order_[p]))];
  }
  children_positions_.resize(order_.size());
  for (size_t p = 1; p < order_.size(); ++p) {
    children_positions_[parent_position_[p]].push_back(p);
  }
}

// Shared mutable state of one Generate() call.
struct MappingGenerator::SearchContext {
  const ClusterCandidates* cands = nullptr;
  const label::TreeIndex* tree_index = nullptr;
  std::vector<SchemaMapping>* out = nullptr;
  GeneratorCounters* counters = nullptr;

  // candidates reordered by personal pre-order position.
  std::vector<const std::vector<match::MappingElement>*> cands_at;
  // optimistic_tail[p] = Σ_{q ≥ p} max candidate score at position q.
  std::vector<double> optimistic_tail;

  // DFS state (used by B&B / exhaustive).
  std::vector<NodeId> chosen;     // image per position
  std::vector<double> sim_sums;   // prefix sums, sim_sums[p] after p+1 picks
  std::vector<int64_t> path_sums;
  // Forward-checking lower bound of the edge closing at each position,
  // written at the trial of the parent position (valid while the parent's
  // assignment is on the DFS stack).
  std::vector<int64_t> lb;
  bool stop = false;

  bool BudgetExceeded() const {
    const MappingGenerator* g = gen;
    return g->options_.max_partial_mappings != 0 &&
           counters->partial_mappings >= g->options_.max_partial_mappings;
  }

  // Cooperative execution check (cancel / deadline / early-exit), polled at
  // every node expansion. Sets `stop` so unwinding frames exit too.
  bool ControlSaysStop() {
    if (monitor != nullptr && monitor->ShouldStop()) stop = true;
    return stop;
  }

  void RecordEmitted() {
    counters->emitted++;
    if (monitor != nullptr) monitor->RecordEmitted();
  }

  const MappingGenerator* gen = nullptr;
  core::ExecutionMonitor* monitor = nullptr;
};

Status MappingGenerator::Generate(const ClusterCandidates& cands,
                                  const label::TreeIndex& tree_index,
                                  std::vector<SchemaMapping>* out,
                                  GeneratorCounters* counters,
                                  core::ExecutionMonitor* monitor) const {
  if (cands.candidates.size() != personal_.size()) {
    return Status::InvalidArgument(
        "candidate sets do not match personal schema size");
  }
  if (out == nullptr || counters == nullptr) {
    return Status::InvalidArgument("out/counters must not be null");
  }
  if (!cands.useful()) return Status::OK();  // Cannot produce mappings.

  SearchContext ctx;
  ctx.gen = this;
  ctx.monitor = monitor;
  ctx.cands = &cands;
  ctx.tree_index = &tree_index;
  ctx.out = out;
  ctx.counters = counters;

  const size_t m = order_.size();
  ctx.cands_at.resize(m);
  for (size_t p = 0; p < m; ++p) {
    ctx.cands_at[p] = &cands.candidates[static_cast<size_t>(order_[p])];
  }
  ctx.optimistic_tail.assign(m + 1, 0.0);
  for (size_t p = m; p-- > 0;) {
    double mx = 0;
    for (const auto& e : *ctx.cands_at[p]) mx = std::max(mx, e.score);
    ctx.optimistic_tail[p] = ctx.optimistic_tail[p + 1] + mx;
  }

  switch (options_.algorithm) {
    case Algorithm::kBranchAndBound:
    case Algorithm::kExhaustive:
      ctx.chosen.assign(m, schema::kInvalidNode);
      ctx.sim_sums.assign(m, 0.0);
      ctx.path_sums.assign(m, 0);
      ctx.lb.assign(m, 1);
      // Initially every edge is pending with the trivial lower bound 1.
      Dfs(&ctx, 0, static_cast<int64_t>(m) - 1);
      break;
    case Algorithm::kBeam:
      RunBeam(&ctx);
      break;
    case Algorithm::kAStar:
      RunAStar(&ctx);
      break;
  }
  return Status::OK();
}

void MappingGenerator::Dfs(SearchContext* ctx, size_t position,
                           int64_t pending_sum) const {
  // `pending_sum` = sum of current lower bounds of the edges closing at
  // positions > `position` (1 until the parent is assigned; the
  // forward-checking minimum afterwards).
  const size_t m = order_.size();
  const bool bounded = options_.algorithm == Algorithm::kBranchAndBound;
  const bool forward =
      bounded && options_.bound_mode == BoundMode::kForwardChecking;

  for (const match::MappingElement& cand : *ctx->cands_at[position]) {
    if (ctx->ControlSaysStop()) return;
    if (ctx->BudgetExceeded()) {
      ctx->counters->truncated = true;
      ctx->stop = true;
      return;
    }

    // Injectivity ("1 to 1", Def. 2): the image must be fresh.
    bool used = false;
    for (size_t q = 0; q < position; ++q) {
      if (ctx->chosen[q] == cand.node.node) {
        used = true;
        break;
      }
    }
    if (used) continue;

    double sim_sum =
        (position == 0 ? 0.0 : ctx->sim_sums[position - 1]) + cand.score;
    int64_t path_sum = position == 0 ? 0 : ctx->path_sums[position - 1];
    if (position > 0) {
      NodeId parent_image = ctx->chosen[parent_position_[position]];
      path_sum += ctx->tree_index->Distance(parent_image, cand.node.node);
    }
    ctx->counters->partial_mappings++;

    if (position + 1 == m) {
      ctx->counters->complete_mappings++;
      double delta = objective_.Delta(sim_sum, path_sum);
      if (delta >= options_.delta) {
        SchemaMapping mapping;
        mapping.tree = ctx->cands->tree;
        mapping.images.resize(m);
        for (size_t p = 0; p < position; ++p) {
          mapping.images[static_cast<size_t>(order_[p])] = ctx->chosen[p];
        }
        mapping.images[static_cast<size_t>(order_[position])] =
            cand.node.node;
        mapping.delta = delta;
        mapping.delta_sim = objective_.DeltaSim(sim_sum);
        mapping.delta_path = objective_.DeltaPath(path_sum);
        mapping.total_path_length = path_sum;
        ctx->out->push_back(std::move(mapping));
        ctx->RecordEmitted();
      }
      continue;
    }

    int64_t new_pending = pending_sum;
    if (forward) {
      // Tighten the pending edges whose parent is this candidate: replace
      // their provisional lower bound of 1 by the minimum distance from
      // the candidate image to any candidate of the child.
      for (size_t q : children_positions_[position]) {
        int64_t best = std::numeric_limits<int64_t>::max();
        for (const match::MappingElement& child_cand : *ctx->cands_at[q]) {
          int64_t d = ctx->tree_index->Distance(cand.node.node,
                                                child_cand.node.node);
          if (d < best) best = d;
          if (best <= 1) break;  // cannot get lower for a distinct image
        }
        // Injectivity forces every image path to length >= 1, so a
        // distance-0 candidate (the parent's own image) cannot be chosen.
        if (best < 1) best = 1;
        ctx->lb[q] = best;
        new_pending += best - 1;
      }
    }

    if (bounded) {
      // All edges accounted for: closed ones exactly (path_sum), pending
      // ones by their lower bounds.
      double ub = objective_.UpperBound(
          sim_sum, ctx->optimistic_tail[position + 1],
          path_sum + new_pending, static_cast<int>(m) - 1);
      if (ub < options_.delta) {
        ctx->counters->pruned_by_bound++;
        if (forward) {
          for (size_t q : children_positions_[position]) ctx->lb[q] = 1;
        }
        continue;
      }
    }

    ctx->chosen[position] = cand.node.node;
    ctx->sim_sums[position] = sim_sum;
    ctx->path_sums[position] = path_sum;
    int64_t next_lb = forward ? ctx->lb[position + 1] : 1;
    Dfs(ctx, position + 1, new_pending - next_lb);
    ctx->chosen[position] = schema::kInvalidNode;
    if (forward) {
      for (size_t q : children_positions_[position]) ctx->lb[q] = 1;
    }
  }
}

namespace {

// Partial assignment state for the frontier-based searches.
struct BeamState {
  std::vector<NodeId> chosen;  // one entry per filled position
  double sim_sum = 0;
  int64_t path_sum = 0;
  double bound = 0;  // optimistic Δ of any completion
};

}  // namespace

void MappingGenerator::RunBeam(SearchContext* ctx) const {
  const size_t m = order_.size();
  std::vector<BeamState> frontier;
  frontier.push_back({});  // Empty prefix.
  frontier.back().bound =
      objective_.UpperBound(0.0, ctx->optimistic_tail[0], 0, 0);

  for (size_t position = 0; position < m && !frontier.empty(); ++position) {
    std::vector<BeamState> next;
    for (const BeamState& state : frontier) {
      if (ctx->stop) break;
      for (const match::MappingElement& cand : *ctx->cands_at[position]) {
        if (ctx->ControlSaysStop()) break;
        if (ctx->BudgetExceeded()) {
          ctx->counters->truncated = true;
          break;
        }
        if (std::find(state.chosen.begin(), state.chosen.end(),
                      cand.node.node) != state.chosen.end()) {
          continue;
        }
        BeamState ext = state;
        ext.chosen.push_back(cand.node.node);
        ext.sim_sum += cand.score;
        if (position > 0) {
          ext.path_sum += ctx->tree_index->Distance(
              state.chosen[parent_position_[position]], cand.node.node);
        }
        ctx->counters->partial_mappings++;
        ext.bound = objective_.UpperBound(
            ext.sim_sum, ctx->optimistic_tail[position + 1], ext.path_sum,
            static_cast<int>(position));
        if (ext.bound < options_.delta) {
          ctx->counters->pruned_by_bound++;
          continue;
        }
        next.push_back(std::move(ext));
      }
    }
    // Keep only the beam_width most promising partial mappings.
    if (next.size() > options_.beam_width) {
      std::nth_element(next.begin(),
                       next.begin() + static_cast<long>(options_.beam_width),
                       next.end(), [](const BeamState& a, const BeamState& b) {
                         return a.bound > b.bound;
                       });
      next.resize(options_.beam_width);
    }
    // A level abandoned mid-expansion holds incomplete prefixes only;
    // nothing from this cluster can be emitted.
    if (ctx->stop) return;
    frontier = std::move(next);
  }

  for (const BeamState& state : frontier) {
    if (ctx->ControlSaysStop()) return;
    ctx->counters->complete_mappings++;
    double delta = objective_.Delta(state.sim_sum, state.path_sum);
    if (delta < options_.delta) continue;
    SchemaMapping mapping;
    mapping.tree = ctx->cands->tree;
    mapping.images.resize(m);
    for (size_t p = 0; p < m; ++p) {
      mapping.images[static_cast<size_t>(order_[p])] = state.chosen[p];
    }
    mapping.delta = delta;
    mapping.delta_sim = objective_.DeltaSim(state.sim_sum);
    mapping.delta_path = objective_.DeltaPath(state.path_sum);
    mapping.total_path_length = state.path_sum;
    ctx->out->push_back(std::move(mapping));
    ctx->RecordEmitted();
  }
}

void MappingGenerator::RunAStar(SearchContext* ctx) const {
  const size_t m = order_.size();
  auto cmp = [](const BeamState& a, const BeamState& b) {
    return a.bound < b.bound;  // max-heap on optimistic bound
  };
  std::priority_queue<BeamState, std::vector<BeamState>, decltype(cmp)> open(
      cmp);
  BeamState root;
  root.bound = objective_.UpperBound(0.0, ctx->optimistic_tail[0], 0, 0);
  if (root.bound < options_.delta) return;
  open.push(std::move(root));

  while (!open.empty()) {
    if (ctx->ControlSaysStop()) return;
    if (ctx->BudgetExceeded()) {
      ctx->counters->truncated = true;
      return;
    }
    BeamState state = open.top();
    open.pop();
    // Admissible bound: once the best bound falls below δ nothing that
    // remains can qualify.
    if (state.bound < options_.delta) return;
    size_t position = state.chosen.size();
    if (position == m) {
      ctx->counters->complete_mappings++;
      double delta = objective_.Delta(state.sim_sum, state.path_sum);
      if (delta >= options_.delta) {
        SchemaMapping mapping;
        mapping.tree = ctx->cands->tree;
        mapping.images.resize(m);
        for (size_t p = 0; p < m; ++p) {
          mapping.images[static_cast<size_t>(order_[p])] = state.chosen[p];
        }
        mapping.delta = delta;
        mapping.delta_sim = objective_.DeltaSim(state.sim_sum);
        mapping.delta_path = objective_.DeltaPath(state.path_sum);
        mapping.total_path_length = state.path_sum;
        ctx->out->push_back(std::move(mapping));
        ctx->RecordEmitted();
      }
      continue;
    }
    for (const match::MappingElement& cand : *ctx->cands_at[position]) {
      if (std::find(state.chosen.begin(), state.chosen.end(),
                    cand.node.node) != state.chosen.end()) {
        continue;
      }
      BeamState ext = state;
      ext.chosen.push_back(cand.node.node);
      ext.sim_sum += cand.score;
      if (position > 0) {
        ext.path_sum += ctx->tree_index->Distance(
            state.chosen[parent_position_[position]], cand.node.node);
      }
      ctx->counters->partial_mappings++;
      ext.bound = objective_.UpperBound(
          ext.sim_sum, ctx->optimistic_tail[position + 1], ext.path_sum,
          static_cast<int>(position));
      if (ext.bound < options_.delta) {
        ctx->counters->pruned_by_bound++;
        continue;
      }
      open.push(std::move(ext));
    }
  }
}

}  // namespace xsm::generate
