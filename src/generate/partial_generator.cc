#include "generate/partial_generator.h"

#include <algorithm>

namespace xsm::generate {

using schema::NodeId;

PartialMappingGenerator::PartialMappingGenerator(
    const schema::SchemaTree& personal,
    const objective::BellflowerObjective& objective,
    const PartialGeneratorOptions& options)
    : personal_(personal), objective_(objective), options_(options) {
  order_ = personal.PreOrder();
}

// Mutable state of one Generate() walk.
struct PartialMappingGenerator::Walk {
  const ClusterCandidates* cands = nullptr;
  const label::TreeIndex* tree_index = nullptr;
  std::vector<PartialMapping>* out = nullptr;
  GeneratorCounters* counters = nullptr;
  const PartialMappingGenerator* gen = nullptr;
  core::ExecutionMonitor* monitor = nullptr;

  std::vector<const std::vector<match::MappingElement>*> cands_at;
  // Current assignment by personal NodeId (not position): needed to find
  // the nearest assigned ancestor.
  std::vector<NodeId> images;
  std::vector<double> scores;  // per personal node, 0 when unassigned
  double sim_sum = 0;
  int64_t path_sum = 0;
  int closed_edges = 0;
  int assigned = 0;
  bool stop = false;
};

Status PartialMappingGenerator::Generate(const ClusterCandidates& cands,
                                         const label::TreeIndex& tree_index,
                                         std::vector<PartialMapping>* out,
                                         GeneratorCounters* counters,
                                         core::ExecutionMonitor* monitor) const {
  if (cands.candidates.size() != personal_.size()) {
    return Status::InvalidArgument(
        "candidate sets do not match personal schema size");
  }
  if (out == nullptr || counters == nullptr) {
    return Status::InvalidArgument("out/counters must not be null");
  }
  size_t assignable = 0;
  for (const auto& c : cands.candidates) {
    if (!c.empty()) ++assignable;
  }
  if (assignable < options_.min_assigned) return Status::OK();

  Walk walk;
  walk.gen = this;
  walk.monitor = monitor;
  walk.cands = &cands;
  walk.tree_index = &tree_index;
  walk.out = out;
  walk.counters = counters;
  walk.cands_at.resize(order_.size());
  for (size_t p = 0; p < order_.size(); ++p) {
    walk.cands_at[p] = &cands.candidates[static_cast<size_t>(order_[p])];
  }
  walk.images.assign(personal_.size(), schema::kInvalidNode);
  walk.scores.assign(personal_.size(), 0.0);
  Dfs(&walk, 0);
  return Status::OK();
}

void PartialMappingGenerator::Dfs(Walk* walk, size_t position) const {
  if (walk->stop) return;
  if (position == order_.size()) {
    if (walk->assigned < static_cast<int>(options_.min_assigned)) return;
    // Δpath over the closed edges only; 1.0 when none closed.
    double delta_path = 1.0;
    if (walk->closed_edges > 0) {
      double excess =
          static_cast<double>(walk->path_sum - walk->closed_edges);
      delta_path = std::clamp(
          1.0 - excess / (static_cast<double>(walk->closed_edges) *
                          objective_.k()),
          0.0, 1.0);
    }
    double delta_sim = objective_.DeltaSim(walk->sim_sum);
    double delta = objective_.alpha() * delta_sim +
                   (1.0 - objective_.alpha()) * delta_path;
    walk->counters->complete_mappings++;
    if (delta < options_.delta) return;
    PartialMapping mapping;
    mapping.tree = walk->cands->tree;
    mapping.images = walk->images;
    mapping.delta = delta;
    mapping.delta_sim = delta_sim;
    mapping.delta_path = delta_path;
    mapping.assigned_count = walk->assigned;
    walk->out->push_back(std::move(mapping));
    walk->counters->emitted++;
    if (walk->monitor != nullptr) walk->monitor->RecordPartialEmitted();
    return;
  }

  NodeId node = order_[position];
  const auto& candidates = *walk->cands_at[position];
  if (candidates.empty()) {
    // Unassignable personal node: skip it (maximal-subset semantics).
    Dfs(walk, position + 1);
    return;
  }

  // Nearest assigned personal ancestor (may be none if the root subtree
  // was unassignable).
  NodeId anchor = schema::kInvalidNode;
  for (NodeId a = personal_.parent(node); a != schema::kInvalidNode;
       a = personal_.parent(a)) {
    if (walk->images[static_cast<size_t>(a)] != schema::kInvalidNode) {
      anchor = a;
      break;
    }
  }

  for (const match::MappingElement& cand : candidates) {
    if (walk->stop) return;
    if (walk->monitor != nullptr && walk->monitor->ShouldStop()) {
      walk->stop = true;
      return;
    }
    if (options_.max_partial_mappings != 0 &&
        walk->counters->partial_mappings >=
            options_.max_partial_mappings) {
      walk->counters->truncated = true;
      walk->stop = true;
      return;
    }
    // Injectivity across the assigned subset.
    bool used = false;
    for (NodeId i : walk->images) {
      if (i == cand.node.node) {
        used = true;
        break;
      }
    }
    if (used) continue;

    walk->counters->partial_mappings++;
    walk->images[static_cast<size_t>(node)] = cand.node.node;
    walk->scores[static_cast<size_t>(node)] = cand.score;
    walk->sim_sum += cand.score;
    walk->assigned++;
    int64_t edge_len = 0;
    if (anchor != schema::kInvalidNode) {
      edge_len = walk->tree_index->Distance(
          walk->images[static_cast<size_t>(anchor)], cand.node.node);
      walk->path_sum += edge_len;
      walk->closed_edges++;
    }

    Dfs(walk, position + 1);

    walk->images[static_cast<size_t>(node)] = schema::kInvalidNode;
    walk->scores[static_cast<size_t>(node)] = 0;
    walk->sim_sum -= cand.score;
    walk->assigned--;
    if (anchor != schema::kInvalidNode) {
      walk->path_sum -= edge_len;
      walk->closed_edges--;
    }
  }
}

}  // namespace xsm::generate
