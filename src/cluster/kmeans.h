// Clustering step of clustered schema matching (paper §4, Algorithm 1).
//
// Points are the mapping elements produced by element matching (one point
// per distinct matched repository node). The distance measure is the tree
// distance (path length) between nodes — infinite across trees, so clusters
// never span trees and trees without an initial centroid drop out.
//
// Differences from textbook k-means, all taken from the paper:
//  * centroids are medoids — the member that is the cluster's "center of
//    weight" (minimum summed distance to the other members);
//  * initialization seeds one centroid per element of MEmin, the smallest
//    mapping-element set, because every useful cluster needs at least one
//    element for each personal node;
//  * a reclustering step (Alg. 1 line 10) runs each iteration: `join`
//    merges clusters whose centroids are within a distance threshold (the
//    threshold 2/3/4 realizes the paper's small/medium/large variants) and
//    `remove` deletes clusters below a minimum size;
//  * relaxed convergence: stop when the fraction of elements that switched
//    clusters and the relative change in cluster count both fall below a
//    threshold (default 5%).
#ifndef XSM_CLUSTER_KMEANS_H_
#define XSM_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "label/tree_index.h"
#include "schema/schema_forest.h"
#include "util/status.h"

namespace xsm::cluster {

/// One clustering point: a distinct repository node that matched ≥ 1
/// personal node, with the mask of personal nodes it matched.
struct ClusterPoint {
  schema::NodeRef node;
  uint32_t personal_mask = 0;
};

/// A formed cluster. `members` index into the points vector passed to the
/// clusterer.
struct Cluster {
  schema::TreeId tree = -1;
  schema::NodeRef centroid;
  std::vector<int32_t> members;
  /// OR of member personal masks; the cluster is useful iff this covers the
  /// full personal mask.
  uint32_t union_mask = 0;

  size_t size() const { return members.size(); }
  bool useful(uint32_t full_mask) const {
    return (union_mask & full_mask) == full_mask;
  }
};

/// Centroid initialization strategies. kMinSet is the paper's heuristic;
/// the others exist for the ablation benches.
enum class CentroidInit {
  kMinSet = 0,         ///< all elements of MEmin become centroids
  kRandom = 1,         ///< uniformly random points
  kFarthestFirst = 2,  ///< greedy max-min spread (per tree)
};

/// Distance measures for the assignment step. The paper uses pure path
/// length and names "design of other distance measures" as future work
/// (§7); kPathAndName adds a lexical term so that elements gravitate
/// toward centroids of similar vocabulary.
enum class ClusterDistance {
  kPathLength = 0,  ///< tree distance (paper)
  /// path + name_weight · (1 − fuzzy name similarity to the centroid).
  kPathAndName = 1,
};

struct KMeansOptions {
  CentroidInit init = CentroidInit::kMinSet;
  /// Number of centroids for kRandom / kFarthestFirst; 0 means "as many as
  /// kMinSet would produce".
  size_t num_centroids = 0;

  /// Join reclustering: merge clusters whose centroids are at distance
  /// ≤ join_distance. Disabled when join_reclustering is false.
  bool join_reclustering = true;
  int join_distance = 3;  // paper: 2 = small, 3 = medium, 4 = large

  /// Remove reclustering: delete clusters with fewer members than
  /// min_cluster_size (members are freed and may re-join neighbors on the
  /// next iteration).
  bool remove_reclustering = true;
  size_t min_cluster_size = 4;

  /// Split reclustering (extension; the paper leaves "huge clusters" to
  /// future handling, §4): clusters larger than max_cluster_size are split
  /// in two around the current centroid and the member farthest from it.
  /// 0 disables splitting.
  size_t max_cluster_size = 0;

  /// Assignment distance measure.
  ClusterDistance distance = ClusterDistance::kPathLength;
  /// Weight of the lexical term for ClusterDistance::kPathAndName.
  double name_weight = 2.0;

  /// Relaxed total-stability criterion (fraction of points/clusters).
  double convergence_fraction = 0.05;
  int max_iterations = 25;

  /// Seed for the randomized initializations.
  uint64_t seed = 42;

  Status Validate() const;
};

struct KMeansStats {
  int iterations = 0;
  size_t initial_centroids = 0;
  size_t clusters_joined = 0;
  size_t clusters_removed = 0;
  size_t clusters_split = 0;
  /// Points whose cluster (identified by centroid) changed, per iteration.
  std::vector<size_t> switches_per_iteration;
  double time_seconds = 0;
  /// Points left in no cluster at convergence (tree had no centroid, or
  /// their cluster was removed in the final iteration).
  size_t unassigned_points = 0;
};

struct ClusteringResult {
  std::vector<Cluster> clusters;
  KMeansStats stats;
};

/// K-means clusterer over one repository. The forest/index must outlive the
/// clusterer.
class KMeansClusterer {
 public:
  KMeansClusterer(const schema::SchemaForest* forest,
                  const label::ForestIndex* index)
      : forest_(forest), index_(index) {}

  /// Clusters `points`. `me_set_sizes[b]` = |ME_b| for personal node b
  /// (used by the kMinSet initialization to find the scarcest hint).
  Result<ClusteringResult> Cluster(const std::vector<ClusterPoint>& points,
                                   const std::vector<size_t>& me_set_sizes,
                                   const KMeansOptions& options) const;

 private:
  const schema::SchemaForest* forest_;
  const label::ForestIndex* index_;
};

/// The non-clustered baseline ("tree clusters"): every tree holding at
/// least one point becomes one cluster; centroid is the tree root.
ClusteringResult TreeClusters(const std::vector<ClusterPoint>& points);

}  // namespace xsm::cluster

#endif  // XSM_CLUSTER_KMEANS_H_
