#include "cluster/kmeans.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

#include "sim/string_similarity.h"
#include "util/random.h"
#include "util/timer.h"

namespace xsm::cluster {

using schema::NodeRef;
using schema::TreeId;

Status KMeansOptions::Validate() const {
  if (join_distance < 0) {
    return Status::InvalidArgument("join_distance must be >= 0");
  }
  if (convergence_fraction < 0.0 || convergence_fraction > 1.0) {
    return Status::InvalidArgument("convergence_fraction must be in [0,1]");
  }
  if (max_iterations < 1) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  return Status::OK();
}

namespace {

// Disjoint-set over cluster slots, used by join reclustering.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  // Returns true if a merge happened.
  bool Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    // Deterministic: smaller index wins as representative.
    if (b < a) std::swap(a, b);
    parent_[b] = a;
    return true;
  }

 private:
  std::vector<size_t> parent_;
};

// Member of `members` minimizing the summed tree distance to the others;
// ties break toward the smallest node id. `members` must be non-empty and
// single-tree.
NodeRef ComputeMedoid(const std::vector<int32_t>& members,
                      const std::vector<ClusterPoint>& points,
                      const label::TreeIndex& tidx) {
  assert(!members.empty());
  if (members.size() == 1) {
    return points[static_cast<size_t>(members[0])].node;
  }
  int64_t best_cost = std::numeric_limits<int64_t>::max();
  NodeRef best = points[static_cast<size_t>(members[0])].node;
  for (int32_t mi : members) {
    NodeRef candidate = points[static_cast<size_t>(mi)].node;
    int64_t cost = 0;
    for (int32_t mj : members) {
      cost += tidx.Distance(candidate.node,
                            points[static_cast<size_t>(mj)].node.node);
      // Distances are non-negative, so once the partial cost strictly
      // exceeds the best the candidate can neither win nor tie-win;
      // breaking on equality would lose the node-id tie-break.
      if (cost > best_cost) break;
    }
    if (cost < best_cost ||
        (cost == best_cost && candidate.node < best.node)) {
      best_cost = cost;
      best = candidate;
    }
  }
  return best;
}

// Inside KMeansClusterer::Cluster() the member-function name shadows the
// Cluster struct; alias the container type here where the struct is visible.
using ClusterVector = std::vector<Cluster>;

}  // namespace

Result<ClusteringResult> KMeansClusterer::Cluster(
    const std::vector<ClusterPoint>& points,
    const std::vector<size_t>& me_set_sizes,
    const KMeansOptions& options) const {
  XSM_RETURN_NOT_OK(options.Validate());
  Timer timer;
  ClusteringResult result;
  if (points.empty()) return result;

  // --- Initialization (Alg. 1 line 1). -----------------------------------
  std::vector<NodeRef> centroids;
  size_t minset_count = 0;
  {
    // Size of the MEmin seeding: number of points carrying the scarcest
    // personal node's bit.
    int best_bit = -1;
    size_t best_size = std::numeric_limits<size_t>::max();
    for (size_t b = 0; b < me_set_sizes.size(); ++b) {
      if (me_set_sizes[b] == 0) continue;
      if (me_set_sizes[b] < best_size) {
        best_size = me_set_sizes[b];
        best_bit = static_cast<int>(b);
      }
    }
    if (best_bit < 0) {
      return Status::InvalidArgument(
          "no personal node has any mapping element");
    }
    for (const ClusterPoint& p : points) {
      if (p.personal_mask & (uint32_t{1} << best_bit)) ++minset_count;
    }

    size_t k = options.num_centroids > 0 ? options.num_centroids
                                         : std::max<size_t>(1, minset_count);
    k = std::min(k, points.size());
    Rng rng(options.seed);

    switch (options.init) {
      case CentroidInit::kMinSet:
        for (const ClusterPoint& p : points) {
          if (p.personal_mask & (uint32_t{1} << best_bit)) {
            centroids.push_back(p.node);
          }
        }
        break;
      case CentroidInit::kRandom: {
        std::vector<size_t> idx(points.size());
        std::iota(idx.begin(), idx.end(), 0);
        rng.Shuffle(&idx);
        for (size_t i = 0; i < k; ++i) {
          centroids.push_back(points[idx[i]].node);
        }
        break;
      }
      case CentroidInit::kFarthestFirst: {
        // Greedy max-min: cross-tree distance is infinite, so coverage
        // spreads over trees before filling within trees.
        std::vector<int> min_dist(points.size(),
                                  label::ForestIndex::kInfiniteDistance);
        size_t first = rng.Uniform(points.size());
        centroids.push_back(points[first].node);
        while (centroids.size() < k) {
          const NodeRef& last = centroids.back();
          size_t best_idx = 0;
          int best_d = -1;
          for (size_t i = 0; i < points.size(); ++i) {
            int d = index_->Distance(points[i].node, last);
            min_dist[i] = std::min(min_dist[i], d);
            if (min_dist[i] > best_d) {
              best_d = min_dist[i];
              best_idx = i;
            }
          }
          if (best_d == 0) break;  // every point coincides with a centroid
          centroids.push_back(points[best_idx].node);
        }
        break;
      }
    }
  }
  result.stats.initial_centroids = centroids.size();

  // Per-point cluster identity from the previous iteration, identified by
  // the centroid node ("elements which switched from one cluster to
  // another" — a cluster is its centroid).
  std::vector<NodeRef> prev_centroid_of(points.size(), NodeRef{});
  size_t prev_num_clusters = centroids.size();

  ClusterVector clusters;

  // --- Iterations (Alg. 1 lines 2–11). -----------------------------------
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    result.stats.iterations = iter;

    // Per-tree centroid lists for the nearest-centroid scan.
    std::vector<std::vector<int32_t>> centroids_in_tree(
        forest_->num_trees());
    for (size_t c = 0; c < centroids.size(); ++c) {
      centroids_in_tree[static_cast<size_t>(centroids[c].tree)].push_back(
          static_cast<int32_t>(c));
    }

    // Assignment (lines 3–8): nearest same-tree centroid; deterministic
    // tie-break toward the lower centroid index. The distance is the tree
    // path length, optionally blended with a lexical term (§7 future-work
    // "other distance measures").
    std::vector<int32_t> assignment(points.size(), -1);
    const bool lexical = options.distance == ClusterDistance::kPathAndName;
    for (size_t i = 0; i < points.size(); ++i) {
      const ClusterPoint& p = points[i];
      const auto& local =
          centroids_in_tree[static_cast<size_t>(p.node.tree)];
      double best_d = std::numeric_limits<double>::max();
      int32_t best_c = -1;
      const label::TreeIndex& tidx = index_->tree(p.node.tree);
      const schema::SchemaTree& tree = forest_->tree(p.node.tree);
      for (int32_t c : local) {
        const NodeRef& centroid = centroids[static_cast<size_t>(c)];
        double d = tidx.Distance(p.node.node, centroid.node);
        if (lexical) {
          d += options.name_weight *
               (1.0 - sim::FuzzyStringSimilarityIgnoreCase(
                          tree.name(p.node.node), tree.name(centroid.node)));
        }
        if (d < best_d) {
          best_d = d;
          best_c = c;
        }
      }
      assignment[i] = best_c;
    }

    // Form clusters; drop starved (empty) centroids.
    ClusterVector formed(centroids.size());
    for (size_t c = 0; c < centroids.size(); ++c) {
      formed[c].tree = centroids[c].tree;
    }
    for (size_t i = 0; i < points.size(); ++i) {
      if (assignment[i] >= 0) {
        formed[static_cast<size_t>(assignment[i])].members.push_back(
            static_cast<int32_t>(i));
      }
    }
    std::erase_if(formed, [](const auto& c) { return c.members.empty(); });

    // New centroids = medoids (line 9).
    for (auto& c : formed) {
      c.centroid = ComputeMedoid(c.members, points, index_->tree(c.tree));
    }

    // Reclustering (line 10): join, then remove.
    if (options.join_reclustering && formed.size() > 1) {
      // Bucket formed clusters by tree, then union close pairs.
      std::vector<std::vector<size_t>> by_tree(forest_->num_trees());
      for (size_t c = 0; c < formed.size(); ++c) {
        by_tree[static_cast<size_t>(formed[c].tree)].push_back(c);
      }
      UnionFind uf(formed.size());
      size_t merges = 0;
      for (const auto& group : by_tree) {
        for (size_t a = 0; a < group.size(); ++a) {
          const label::TreeIndex& tidx =
              index_->tree(formed[group[a]].tree);
          for (size_t b = a + 1; b < group.size(); ++b) {
            int d = tidx.Distance(formed[group[a]].centroid.node,
                                  formed[group[b]].centroid.node);
            if (d <= options.join_distance) {
              if (uf.Union(group[a], group[b])) ++merges;
            }
          }
        }
      }
      if (merges > 0) {
        result.stats.clusters_joined += merges;
        ClusterVector merged;
        std::vector<int32_t> slot_of(formed.size(), -1);
        for (size_t c = 0; c < formed.size(); ++c) {
          size_t rep = uf.Find(c);
          if (slot_of[rep] < 0) {
            slot_of[rep] = static_cast<int32_t>(merged.size());
            merged.emplace_back();
            merged.back().tree = formed[rep].tree;
          }
          auto& dst = merged[static_cast<size_t>(slot_of[rep])];
          dst.members.insert(dst.members.end(), formed[c].members.begin(),
                             formed[c].members.end());
        }
        for (auto& c : merged) {
          std::sort(c.members.begin(), c.members.end());
          c.centroid = ComputeMedoid(c.members, points, index_->tree(c.tree));
        }
        formed = std::move(merged);
      }
    }
    if (options.remove_reclustering) {
      size_t before = formed.size();
      std::erase_if(formed, [&](const auto& c) {
        return c.members.size() < options.min_cluster_size;
      });
      result.stats.clusters_removed += before - formed.size();
    }
    if (options.max_cluster_size > 0) {
      // Split reclustering (extension): break oversized clusters around
      // their centroid and the member farthest from it.
      ClusterVector split_out;
      for (size_t c = 0; c < formed.size(); ++c) {
        if (formed[c].members.size() <= options.max_cluster_size) {
          split_out.push_back(std::move(formed[c]));
          continue;
        }
        const label::TreeIndex& tidx = index_->tree(formed[c].tree);
        // Queue-based: a cluster may need several splits.
        std::vector<std::vector<int32_t>> queue{std::move(formed[c].members)};
        while (!queue.empty()) {
          std::vector<int32_t> members = std::move(queue.back());
          queue.pop_back();
          if (members.size() <= options.max_cluster_size) {
            split_out.emplace_back();
            split_out.back().tree = formed[c].tree;
            split_out.back().members = std::move(members);
            split_out.back().centroid =
                ComputeMedoid(split_out.back().members, points, tidx);
            continue;
          }
          NodeRef seed_a = ComputeMedoid(members, points, tidx);
          // Farthest member from the medoid becomes the second seed.
          NodeRef seed_b = seed_a;
          int far = -1;
          for (int32_t m : members) {
            int d = tidx.Distance(
                seed_a.node, points[static_cast<size_t>(m)].node.node);
            if (d > far) {
              far = d;
              seed_b = points[static_cast<size_t>(m)].node;
            }
          }
          std::vector<int32_t> half_a;
          std::vector<int32_t> half_b;
          for (int32_t m : members) {
            schema::NodeId n = points[static_cast<size_t>(m)].node.node;
            int da = tidx.Distance(seed_a.node, n);
            int db = tidx.Distance(seed_b.node, n);
            (da <= db ? half_a : half_b).push_back(m);
          }
          if (half_a.empty() || half_b.empty()) {
            // Degenerate (all members coincide): keep as one cluster.
            split_out.emplace_back();
            split_out.back().tree = formed[c].tree;
            split_out.back().members = half_a.empty() ? std::move(half_b)
                                                      : std::move(half_a);
            split_out.back().centroid = ComputeMedoid(
                split_out.back().members, points, tidx);
            continue;
          }
          ++result.stats.clusters_split;
          queue.push_back(std::move(half_a));
          queue.push_back(std::move(half_b));
        }
      }
      formed = std::move(split_out);
    }

    // Switch accounting: a point's cluster is identified by its centroid.
    std::vector<NodeRef> new_centroid_of(points.size(), NodeRef{});
    for (const auto& c : formed) {
      for (int32_t m : c.members) {
        new_centroid_of[static_cast<size_t>(m)] = c.centroid;
      }
    }
    size_t switched = 0;
    for (size_t i = 0; i < points.size(); ++i) {
      if (!(new_centroid_of[i] == prev_centroid_of[i])) ++switched;
    }
    result.stats.switches_per_iteration.push_back(switched);

    clusters = std::move(formed);

    // Convergence (line 11): both the element-switch fraction and the
    // relative change in cluster count must fall below the threshold. The
    // first iteration never converges (everything "switched" from nothing).
    bool converged =
        iter > 1 &&
        static_cast<double>(switched) <=
            options.convergence_fraction *
                static_cast<double>(points.size()) &&
        static_cast<double>(
            std::max(prev_num_clusters, clusters.size()) -
            std::min(prev_num_clusters, clusters.size())) <=
            options.convergence_fraction *
                static_cast<double>(std::max<size_t>(1, prev_num_clusters));

    prev_centroid_of = std::move(new_centroid_of);
    prev_num_clusters = clusters.size();
    centroids.clear();
    for (const auto& c : clusters) centroids.push_back(c.centroid);

    if (converged || centroids.empty()) break;
  }

  // Final bookkeeping: union masks + unassigned count.
  size_t assigned = 0;
  for (auto& c : clusters) {
    for (int32_t m : c.members) {
      c.union_mask |= points[static_cast<size_t>(m)].personal_mask;
    }
    assigned += c.members.size();
  }
  result.stats.unassigned_points = points.size() - assigned;
  result.clusters = std::move(clusters);
  result.stats.time_seconds = timer.ElapsedSeconds();
  return result;
}

ClusteringResult TreeClusters(const std::vector<ClusterPoint>& points) {
  ClusteringResult result;
  if (points.empty()) return result;
  // Points arrive sorted by NodeRef (tree-major), so trees form runs.
  for (size_t i = 0; i < points.size(); ++i) {
    if (result.clusters.empty() ||
        result.clusters.back().tree != points[i].node.tree) {
      Cluster c;
      c.tree = points[i].node.tree;
      c.centroid = NodeRef{points[i].node.tree, 0};  // tree root
      result.clusters.push_back(std::move(c));
    }
    Cluster& c = result.clusters.back();
    c.members.push_back(static_cast<int32_t>(i));
    c.union_mask |= points[i].personal_mask;
  }
  result.stats.iterations = 0;
  return result;
}

}  // namespace xsm::cluster
