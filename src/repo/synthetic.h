// Synthetic schema-repository generator.
//
// The paper's repository was built from 1700 DTD/XSD schemas discovered
// with Google (178252 element nodes over 3889 trees); experiments ran on
// random sub-repositories of 2500–10200 elements. That corpus is not
// available, so this generator synthesizes a statistically similar forest:
//  * a few hundred trees with a heavy-tailed size distribution
//    (avg ≈ 37 nodes/tree in the paper's 9759/262 experiment);
//  * per-domain vocabularies (person/contact, publication, commerce,
//    organization, geo) whose concepts carry many real-world spelling
//    variants, so that a small personal schema produces thousands of fuzzy
//    mapping elements spread unevenly over the trees;
//  * per-tree naming conventions (camelCase / snake_case / lowercase /
//    PascalCase), compound names ("billingAddress"), abbreviations and
//    occasional typos — the phenomena fuzzy matching exists to absorb.
//
// Everything is driven by an explicit seed: the same options produce the
// same forest on every platform.
#ifndef XSM_REPO_SYNTHETIC_H_
#define XSM_REPO_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "schema/schema_forest.h"
#include "util/status.h"

namespace xsm::repo {

struct SyntheticRepoOptions {
  /// Approximate total element/attribute count. Generation stops at the
  /// first tree that reaches the target.
  size_t target_elements = 10000;
  uint64_t seed = 1;

  /// Tree sizes are log-normal-ish: exp(N(ln(mean_tree_size), spread)),
  /// clamped to [min_tree_size, max_tree_size].
  double mean_tree_size = 37.0;
  double tree_size_spread = 1.0;
  size_t min_tree_size = 3;
  size_t max_tree_size = 400;

  /// Probability that a generated name is compounded with a qualifier
  /// ("billing" + "address" → "billingAddress").
  double compound_probability = 0.25;
  /// Probability of an abbreviation variant being preferred ("addr").
  double abbreviation_probability = 0.15;
  /// Probability of a small typo (adjacent transposition / char drop).
  double typo_probability = 0.05;
  /// Probability that a leaf-ish concept becomes an attribute node.
  double attribute_probability = 0.15;
  /// Maximum children per node during growth.
  int max_fanout = 8;
  /// Probability that a growth step instantiates a whole "record block" —
  /// a container with a contact-like field group (name, address, email,
  /// phone, ...). Record blocks recur in different regions of large trees;
  /// they are the locality that clustering exploits ("regions in the
  /// repository which are likely to comprise good mappings").
  double record_probability = 0.22;

  Status Validate() const;
};

/// Generates the forest. Tree sources are tagged "synthetic:<index>".
Result<schema::SchemaForest> GenerateSyntheticRepository(
    const SyntheticRepoOptions& options);

/// Random sub-repository: whole trees are drawn (shuffled by `seed`) until
/// `target_elements` is reached — how the paper derived its 2500–10200
/// element experiment repositories from the full collection.
schema::SchemaForest SampleRepository(const schema::SchemaForest& full,
                                      size_t target_elements, uint64_t seed);

/// Corpus statistics, for harness banners and calibration tests.
struct RepositoryStats {
  size_t trees = 0;
  size_t nodes = 0;
  double avg_tree_size = 0;
  size_t max_tree_size = 0;
  int max_depth = 0;
  size_t distinct_names = 0;
};

RepositoryStats ComputeStats(const schema::SchemaForest& forest);

}  // namespace xsm::repo

#endif  // XSM_REPO_SYNTHETIC_H_
