// File-system repository loading: build a SchemaForest from .dtd / .xsd
// files — the import path for real crawled corpora.
#ifndef XSM_REPO_LOADER_H_
#define XSM_REPO_LOADER_H_

#include <string>
#include <vector>

#include "schema/schema_forest.h"
#include "util/status.h"

namespace xsm::repo {

struct LoadOptions {
  /// Lenient parsing: skip malformed files/declarations with a warning.
  bool lenient = true;
  /// Cut recursive references instead of failing (the paper restricted its
  /// crawl to non-recursive schemas).
  bool fail_on_recursion = false;
};

struct LoadReport {
  size_t files_loaded = 0;
  size_t files_failed = 0;
  size_t trees_added = 0;
  std::vector<std::string> warnings;
};

/// Parses one schema file (dispatch on extension: .dtd vs .xsd/.xml; an
/// unknown extension is sniffed from content) and appends its trees to
/// `forest` with the file path as source. Returns the number of trees
/// added.
Result<size_t> LoadSchemaFile(const std::string& path,
                              schema::SchemaForest* forest,
                              const LoadOptions& options = {},
                              LoadReport* report = nullptr);

/// Parses schema text directly (format: "dtd" or "xsd").
Result<size_t> LoadSchemaText(const std::string& text,
                              const std::string& format,
                              const std::string& source_tag,
                              schema::SchemaForest* forest,
                              const LoadOptions& options = {},
                              LoadReport* report = nullptr);

/// Loads every *.dtd / *.xsd file under `directory` (non-recursive listing,
/// sorted for determinism). In lenient mode, unparseable files are counted
/// in the report and skipped.
Result<LoadReport> LoadRepositoryFromDirectory(const std::string& directory,
                                               schema::SchemaForest* forest,
                                               const LoadOptions& options =
                                                   {});

}  // namespace xsm::repo

#endif  // XSM_REPO_LOADER_H_
