#include "repo/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "util/random.h"
#include "util/string_util.h"

namespace xsm::repo {

namespace {

// One nameable concept: a canonical term, spelling variants, short
// abbreviations, and a datatype family for leaves.
struct Concept {
  const char* canonical;
  std::vector<const char*> variants;
  std::vector<const char*> abbreviations;
  const char* datatype;  // nullptr = container concept (no datatype)
  double weight;         // relative pick frequency
};

struct Domain {
  const char* name;
  std::vector<const char*> roots;  // candidate root-element names
  std::vector<Concept> concepts;
  double weight;
};

// Concepts shared by most web vocabularies — these carry the experiment's
// personal-schema hits (name / address / email) plus the usual suspects.
const std::vector<Concept>& SharedConcepts() {
  static const std::vector<Concept> kShared = {
      {"name",
       {"name", "fullName", "firstName", "lastName", "userName",
        "middleName", "nickname", "surname"},
       {"nm", "fname", "lname"},
       "xs:string",
       3.0},
      {"address",
       {"address", "homeAddress", "workAddress", "streetAddress",
        "postalAddress", "adress"},
       {"addr", "adr"},
       "xs:string",
       2.2},
      {"email",
       {"email", "emailAddr", "e-mail", "mail", "emailId"},
       {"eml"},
       "xs:string",
       2.0},
      {"phone",
       {"phone", "telephone", "phoneNumber", "mobile", "fax"},
       {"tel", "ph"},
       "xs:string",
       1.4},
      {"id", {"id", "identifier", "uid", "guid"}, {}, "xs:ID", 1.6},
      {"date",
       {"date", "createdDate", "modifiedDate", "birthDate", "startDate",
        "endDate"},
       {"dt"},
       "xs:date",
       1.5},
      {"description",
       {"description", "comment", "note", "remarks"},
       {"desc"},
       "xs:string",
       1.2},
      {"url", {"url", "link", "website", "homepage"}, {}, "xs:anyURI", 0.8},
      {"status", {"status", "state", "flag"}, {}, "xs:string", 0.8},
      {"type", {"type", "category", "kind", "class"}, {}, "xs:string", 1.0},
  };
  return kShared;
}

const std::vector<Domain>& Domains() {
  static const std::vector<Domain> kDomains = {
      {"person",
       {"person", "contact", "customer", "employee", "user", "member",
        "student"},
       {
           {"person", {"person", "individual", "contact"}, {}, nullptr, 1.0},
           {"title", {"title", "salutation"}, {}, "xs:string", 0.8},
           {"gender", {"gender", "sex"}, {}, "xs:string", 0.5},
           {"age", {"age"}, {}, "xs:int", 0.5},
           {"company",
            {"company", "organization", "employer"},
            {"org"},
            "xs:string",
            0.8},
           {"department", {"department", "division"}, {"dept"}, nullptr,
            0.6},
           {"city", {"city", "town"}, {}, "xs:string", 1.0},
           {"street", {"street", "streetName", "road"}, {"str"},
            "xs:string", 1.0},
           {"zip", {"zip", "zipCode", "postcode", "postalCode"}, {},
            "xs:string", 0.9},
           {"country", {"country", "nation"}, {}, "xs:string", 0.9},
       },
       1.5},
      {"publication",
       {"library", "catalog", "bibliography", "bookstore", "journal",
        "publications"},
       {
           {"book", {"book", "publication", "volume"}, {}, nullptr, 1.3},
           {"title", {"title", "bookTitle", "heading"}, {}, "xs:string",
            1.5},
           {"author",
            {"author", "authorName", "writer", "creator"},
            {"auth"},
            "xs:string",
            1.4},
           {"isbn", {"isbn", "issn"}, {}, "xs:string", 0.7},
           {"publisher", {"publisher", "publishingHouse"}, {"pub"},
            "xs:string", 0.8},
           {"year", {"year", "publicationYear", "pubYear"}, {}, "xs:int",
            0.8},
           {"chapter", {"chapter", "section"}, {"chap"}, nullptr, 0.9},
           {"page", {"page", "pageCount", "pages"}, {"pg"}, "xs:int", 0.6},
           {"edition", {"edition", "revision"}, {"ed"}, "xs:string", 0.5},
           {"shelf", {"shelf", "location", "rack"}, {}, "xs:string", 0.5},
           {"abstract", {"abstract", "summary"}, {}, "xs:string", 0.6},
       },
       1.2},
      {"commerce",
       {"order", "invoice", "purchaseOrder", "cart", "shipment",
        "transaction"},
       {
           {"item", {"item", "product", "article", "lineItem"}, {},
            nullptr, 1.4},
           {"price", {"price", "unitPrice", "cost", "amount"}, {},
            "xs:decimal", 1.2},
           {"quantity", {"quantity", "count", "units"}, {"qty"}, "xs:int",
            1.0},
           {"total", {"total", "totalAmount", "subtotal", "grandTotal"},
            {}, "xs:decimal", 0.9},
           {"currency", {"currency", "currencyCode"}, {"cur"}, "xs:string",
            0.5},
           {"sku", {"sku", "partNumber", "productCode"}, {}, "xs:string",
            0.6},
           {"discount", {"discount", "rebate"}, {}, "xs:decimal", 0.5},
           {"tax", {"tax", "vat", "salesTax"}, {}, "xs:decimal", 0.6},
           {"customer", {"customer", "buyer", "client"}, {"cust"}, nullptr,
            1.0},
           {"shipping",
            {"shipping", "shippingAddress", "deliveryAddress"},
            {"ship"},
            nullptr,
            0.9},
           {"billing", {"billing", "billingAddress", "billTo"}, {},
            nullptr, 0.8},
       },
       1.2},
      {"organization",
       {"company", "organization", "institution", "agency", "directory"},
       {
           {"branch", {"branch", "office", "site"}, {}, nullptr, 0.9},
           {"manager", {"manager", "director", "supervisor"}, {"mgr"},
            "xs:string", 0.7},
           {"team", {"team", "group", "unit"}, {}, nullptr, 0.8},
           {"role", {"role", "position", "jobTitle"}, {}, "xs:string",
            0.8},
           {"budget", {"budget", "funding"}, {}, "xs:decimal", 0.4},
           {"project", {"project", "initiative", "task"}, {"proj"},
            nullptr, 0.9},
           {"founded", {"founded", "established"}, {}, "xs:date", 0.3},
       },
       0.9},
      {"media",
       {"playlist", "gallery", "mediaLibrary", "feed", "channel"},
       {
           {"track", {"track", "song", "recording"}, {}, nullptr, 1.0},
           {"artist", {"artist", "performer", "band"}, {}, "xs:string",
            1.0},
           {"album", {"album", "collection"}, {}, nullptr, 0.8},
           {"genre", {"genre", "style"}, {}, "xs:string", 0.6},
           {"duration", {"duration", "length", "runtime"}, {"dur"},
            "xs:duration", 0.6},
           {"rating", {"rating", "score", "stars"}, {}, "xs:int", 0.6},
           {"image", {"image", "picture", "photo", "thumbnail"}, {"img"},
            "xs:anyURI", 0.8},
       },
       0.8},
  };
  return kDomains;
}

const std::vector<const char*>& Qualifiers() {
  static const std::vector<const char*> kQualifiers = {
      "main",    "primary", "secondary", "old",  "new",   "home",
      "work",    "billing", "shipping",  "alt",  "local", "default",
      "current", "parent",  "child",     "next", "prev",  "extra",
  };
  return kQualifiers;
}

// Containers and fields of the "record block" pattern: contact-like field
// groups that recur across regions of real-world schemas.
const std::vector<const char*>& RecordContainers() {
  static const std::vector<const char*> kContainers = {
      "person", "contact", "customer", "entry", "member", "owner",
      "recipient", "sender", "employee", "participant", "subscriber",
  };
  return kContainers;
}

struct RecordField {
  int shared_concept;  // index into SharedConcepts()
  double probability;  // chance the field appears in a given record
};

const std::vector<RecordField>& RecordFields() {
  // Indexes: 0=name 1=address 2=email 3=phone 4=id 5=date. Address/email
  // are deliberately not guaranteed: complete (name,address,email) regions
  // are the minority, so many good mappings straddle two nearby records —
  // the case where clustering trades effectiveness for efficiency.
  static const std::vector<RecordField> kFields = {
      {0, 0.90}, {1, 0.65}, {2, 0.55}, {3, 0.45}, {4, 0.35}, {5, 0.25},
  };
  return kFields;
}

enum class CaseStyle { kLower, kCamel, kSnake, kPascal };

std::string ApplyStyle(const std::vector<std::string>& words,
                       CaseStyle style) {
  std::string out;
  for (size_t i = 0; i < words.size(); ++i) {
    std::string w = ToLower(words[i]);
    switch (style) {
      case CaseStyle::kLower:
        out += w;
        break;
      case CaseStyle::kSnake:
        if (i > 0) out += '_';
        out += w;
        break;
      case CaseStyle::kCamel:
        if (i > 0 && !w.empty()) {
          w[0] = static_cast<char>(
              std::toupper(static_cast<unsigned char>(w[0])));
        }
        out += w;
        break;
      case CaseStyle::kPascal:
        if (!w.empty()) {
          w[0] = static_cast<char>(
              std::toupper(static_cast<unsigned char>(w[0])));
        }
        out += w;
        break;
    }
  }
  return out;
}

std::string ApplyTypo(const std::string& name, Rng* rng) {
  if (name.size() < 4) return name;
  std::string out = name;
  size_t i = 1 + rng->Uniform(out.size() - 2);
  if (rng->WithProbability(0.5)) {
    std::swap(out[i], out[i - 1]);  // adjacent transposition
  } else {
    out.erase(i, 1);  // drop a character
  }
  return out;
}

class Generator {
 public:
  Generator(const SyntheticRepoOptions& options)
      : options_(options), rng_(options.seed) {
    // Precompute domain weights.
    for (const Domain& d : Domains()) domain_weights_.push_back(d.weight);
  }

  schema::SchemaForest Generate() {
    schema::SchemaForest forest;
    size_t total = 0;
    int tree_index = 0;
    while (total < options_.target_elements) {
      schema::SchemaTree tree = GenerateTree();
      total += tree.size();
      forest.AddTree(std::move(tree),
                     "synthetic:" + std::to_string(tree_index++));
    }
    return forest;
  }

 private:
  size_t DrawTreeSize() {
    double log_size = rng_.Gaussian(std::log(options_.mean_tree_size),
                                    options_.tree_size_spread);
    double size = std::exp(log_size);
    size = std::clamp(size, static_cast<double>(options_.min_tree_size),
                      static_cast<double>(options_.max_tree_size));
    return static_cast<size_t>(std::llround(size));
  }

  // Picks a concept: shared pool and domain pool compete by weight.
  const Concept& DrawConcept(const Domain& domain) {
    const auto& shared = SharedConcepts();
    double shared_total = 0;
    for (const Concept& c : shared) shared_total += c.weight;
    double domain_total = 0;
    for (const Concept& c : domain.concepts) domain_total += c.weight;
    double r = rng_.NextDouble() * (shared_total + domain_total);
    const auto& pool = r < shared_total ? shared : domain.concepts;
    if (r >= shared_total) r -= shared_total;
    for (const Concept& c : pool) {
      r -= c.weight;
      if (r <= 0) return c;
    }
    return pool.back();
  }

  std::string RenderName(const Concept& term, CaseStyle style) {
    std::string base;
    if (!term.abbreviations.empty() &&
        rng_.WithProbability(options_.abbreviation_probability)) {
      base = term.abbreviations[rng_.Uniform(
          term.abbreviations.size())];
    } else {
      base = term.variants[rng_.Uniform(term.variants.size())];
    }
    std::vector<std::string> words;
    if (rng_.WithProbability(options_.compound_probability)) {
      words.push_back(Qualifiers()[rng_.Uniform(Qualifiers().size())]);
    }
    // Variant names may already be compounds ("emailAddr"): split them so
    // the case style is applied uniformly.
    for (const std::string& token : TokenizeIdentifier(base)) {
      words.push_back(token);
    }
    std::string name = ApplyStyle(words, style);
    if (rng_.WithProbability(options_.typo_probability)) {
      name = ApplyTypo(name, &rng_);
    }
    return name;
  }

  // Adds a record container under `parent` with a sampled subset of the
  // contact-like fields. The container joins the eligible list so records
  // can nest further structure.
  void EmitRecordBlock(schema::SchemaTree* tree, schema::NodeId parent,
                       CaseStyle style,
                       std::vector<schema::NodeId>* eligible) {
    schema::NodeProperties container;
    container.name = ApplyStyle(
        TokenizeIdentifier(
            RecordContainers()[rng_.Uniform(RecordContainers().size())]),
        style);
    container.repeatable = rng_.WithProbability(0.4);
    schema::NodeId node = tree->AddNode(parent, std::move(container));
    for (const RecordField& field : RecordFields()) {
      if (!rng_.WithProbability(field.probability)) continue;
      const Concept& term =
          SharedConcepts()[static_cast<size_t>(field.shared_concept)];
      schema::NodeProperties props;
      props.name = RenderName(term, style);
      props.datatype = term.datatype;
      if (rng_.WithProbability(options_.attribute_probability)) {
        props.kind = schema::NodeKind::kAttribute;
      }
      props.optional = rng_.WithProbability(0.3);
      tree->AddNode(node, std::move(props));
    }
    eligible->push_back(node);
  }

  schema::SchemaTree GenerateTree() {
    const Domain& domain = Domains()[rng_.WeightedIndex(domain_weights_)];
    const CaseStyle style = static_cast<CaseStyle>(rng_.Uniform(4));
    const size_t size = DrawTreeSize();

    schema::SchemaTree tree;
    schema::NodeProperties root;
    root.name = ApplyStyle(
        TokenizeIdentifier(domain.roots[rng_.Uniform(domain.roots.size())]),
        style);
    tree.AddNode(schema::kInvalidNode, std::move(root));

    // Growth: attach each new node under a random eligible parent. Element
    // parents are drawn uniformly among nodes with remaining fanout, which
    // yields the bushy, locally-clustered shapes of real schemas.
    std::vector<schema::NodeId> eligible{tree.root()};
    while (tree.size() < size && !eligible.empty()) {
      size_t slot = rng_.Uniform(eligible.size());
      schema::NodeId parent = eligible[slot];
      if (tree.children(parent).size() >=
          static_cast<size_t>(options_.max_fanout)) {
        eligible[slot] = eligible.back();
        eligible.pop_back();
        continue;
      }
      if (rng_.WithProbability(options_.record_probability) &&
          tree.size() + 4 <= size) {
        EmitRecordBlock(&tree, parent, style, &eligible);
        continue;
      }
      const Concept& term = DrawConcept(domain);
      schema::NodeProperties props;
      props.name = RenderName(term, style);
      bool container = term.datatype == nullptr;
      if (!container) props.datatype = term.datatype;
      if (!container &&
          rng_.WithProbability(options_.attribute_probability)) {
        props.kind = schema::NodeKind::kAttribute;
      }
      props.optional = rng_.WithProbability(0.3);
      props.repeatable =
          container && rng_.WithProbability(0.25);
      schema::NodeId node = tree.AddNode(parent, std::move(props));
      // Attributes are leaves; containers (and, rarely, typed elements)
      // may receive children.
      if (tree.props(node).kind == schema::NodeKind::kElement &&
          (container || rng_.WithProbability(0.1))) {
        eligible.push_back(node);
      }
    }
    return tree;
  }

  const SyntheticRepoOptions& options_;
  Rng rng_;
  std::vector<double> domain_weights_;
};

}  // namespace

Status SyntheticRepoOptions::Validate() const {
  if (target_elements == 0) {
    return Status::InvalidArgument("target_elements must be > 0");
  }
  if (mean_tree_size < 1 || min_tree_size < 1 ||
      max_tree_size < min_tree_size) {
    return Status::InvalidArgument("inconsistent tree size bounds");
  }
  if (max_fanout < 1) {
    return Status::InvalidArgument("max_fanout must be >= 1");
  }
  for (double p :
       {compound_probability, abbreviation_probability, typo_probability,
        attribute_probability}) {
    if (p < 0 || p > 1) {
      return Status::InvalidArgument("probabilities must be in [0,1]");
    }
  }
  return Status::OK();
}

Result<schema::SchemaForest> GenerateSyntheticRepository(
    const SyntheticRepoOptions& options) {
  XSM_RETURN_NOT_OK(options.Validate());
  return Generator(options).Generate();
}

schema::SchemaForest SampleRepository(const schema::SchemaForest& full,
                                      size_t target_elements,
                                      uint64_t seed) {
  std::vector<size_t> order(full.num_trees());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  rng.Shuffle(&order);
  schema::SchemaForest sample;
  size_t total = 0;
  for (size_t idx : order) {
    if (total >= target_elements) break;
    const schema::SchemaTree& t =
        full.tree(static_cast<schema::TreeId>(idx));
    total += t.size();
    sample.AddTree(t, full.source(static_cast<schema::TreeId>(idx)));
  }
  return sample;
}

RepositoryStats ComputeStats(const schema::SchemaForest& forest) {
  RepositoryStats stats;
  stats.trees = forest.num_trees();
  stats.nodes = forest.total_nodes();
  std::unordered_set<std::string> names;
  for (schema::TreeId t = 0;
       t < static_cast<schema::TreeId>(forest.num_trees()); ++t) {
    const schema::SchemaTree& tree = forest.tree(t);
    stats.max_tree_size = std::max(stats.max_tree_size, tree.size());
    for (schema::NodeId n = 0; n < static_cast<schema::NodeId>(tree.size());
         ++n) {
      stats.max_depth = std::max(stats.max_depth, tree.depth(n));
      names.insert(tree.name(n));
    }
  }
  stats.distinct_names = names.size();
  stats.avg_tree_size =
      stats.trees == 0
          ? 0
          : static_cast<double>(stats.nodes) / static_cast<double>(stats.trees);
  return stats;
}

}  // namespace xsm::repo
