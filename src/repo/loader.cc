#include "repo/loader.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/string_util.h"
#include "xml/dtd_parser.h"
#include "xml/xsd_parser.h"

namespace xsm::repo {

namespace {

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("read failure on " + path);
  return buffer.str();
}

// "dtd" if the content looks like bare DTD declarations, "xsd" if it looks
// like an XML document.
std::string SniffFormat(std::string_view content) {
  std::string_view trimmed = Trim(content);
  if (StartsWith(trimmed, "<?xml") || StartsWith(trimmed, "<xs:") ||
      trimmed.find("<schema") != std::string_view::npos ||
      trimmed.find(":schema") != std::string_view::npos) {
    return "xsd";
  }
  return "dtd";
}

}  // namespace

Result<size_t> LoadSchemaText(const std::string& text,
                              const std::string& format,
                              const std::string& source_tag,
                              schema::SchemaForest* forest,
                              const LoadOptions& options,
                              LoadReport* report) {
  if (forest == nullptr) {
    return Status::InvalidArgument("forest must not be null");
  }
  std::vector<schema::SchemaTree> trees;
  if (format == "dtd") {
    xml::DtdParseOptions parse_options;
    parse_options.lenient = options.lenient;
    XSM_ASSIGN_OR_RETURN(xml::Dtd dtd, xml::ParseDtd(text, parse_options));
    if (report != nullptr) {
      for (const std::string& w : dtd.warnings) {
        report->warnings.push_back(source_tag + ": " + w);
      }
    }
    xml::DtdToSchemaOptions expand_options;
    expand_options.fail_on_recursion = options.fail_on_recursion;
    XSM_ASSIGN_OR_RETURN(trees, xml::DtdToSchemaTrees(dtd, expand_options));
  } else if (format == "xsd") {
    xml::XsdParseOptions parse_options;
    parse_options.lenient = options.lenient;
    parse_options.fail_on_recursion = options.fail_on_recursion;
    XSM_ASSIGN_OR_RETURN(xml::XsdParseResult parsed,
                         xml::ParseXsd(text, parse_options));
    if (report != nullptr) {
      for (const std::string& w : parsed.warnings) {
        report->warnings.push_back(source_tag + ": " + w);
      }
    }
    trees = std::move(parsed.trees);
  } else {
    return Status::InvalidArgument("unknown schema format '" + format + "'");
  }

  size_t added = 0;
  for (schema::SchemaTree& tree : trees) {
    if (tree.empty()) continue;
    forest->AddTree(std::move(tree), source_tag);
    ++added;
  }
  return added;
}

Result<size_t> LoadSchemaFile(const std::string& path,
                              schema::SchemaForest* forest,
                              const LoadOptions& options,
                              LoadReport* report) {
  XSM_ASSIGN_OR_RETURN(std::string content, ReadFile(path));
  std::string format;
  if (EndsWith(path, ".dtd")) {
    format = "dtd";
  } else if (EndsWith(path, ".xsd") || EndsWith(path, ".xml")) {
    format = "xsd";
  } else {
    format = SniffFormat(content);
  }
  return LoadSchemaText(content, format, path, forest, options, report);
}

Result<LoadReport> LoadRepositoryFromDirectory(const std::string& directory,
                                               schema::SchemaForest* forest,
                                               const LoadOptions& options) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(directory, ec)) {
    return Status::IOError("not a directory: " + directory);
  }
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string p = entry.path().string();
    if (EndsWith(p, ".dtd") || EndsWith(p, ".xsd")) paths.push_back(p);
  }
  if (ec) return Status::IOError("listing failed: " + ec.message());
  std::sort(paths.begin(), paths.end());

  LoadReport report;
  for (const std::string& path : paths) {
    Result<size_t> added = LoadSchemaFile(path, forest, options, &report);
    if (added.ok()) {
      ++report.files_loaded;
      report.trees_added += *added;
    } else if (options.lenient) {
      ++report.files_failed;
      report.warnings.push_back(path + ": " + added.status().ToString());
    } else {
      return added.status();
    }
  }
  return report;
}

}  // namespace xsm::repo
