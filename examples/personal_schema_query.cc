// Personal-schema querying, the paper's §1 motivating scenario, end to end:
//
//  1. the user defines a personal schema  book(title, author);
//  2. Bellflower matches it against the schema repository and returns a
//     ranked list of mapping choices;
//  3. the user (here: the program) picks a mapping;
//  4. the XPath query /book[title="Iliad"]/author posed against the
//     personal schema is rewritten into a query over the mapped repository
//     schema.
//
//   $ ./examples/personal_schema_query
#include <cstdio>

#include "xsm/xsm.h"

int main() {
  using namespace xsm;

  // A repository mixing library-like schemas (which should win) with
  // unrelated vocabularies.
  schema::SchemaForest repository;
  repository.AddTree(
      *schema::ParseTreeSpec(
          "lib(address,book(data(title,authorName),shelf))"),
      "www.library-example.org/lib.dtd");
  repository.AddTree(
      *schema::ParseTreeSpec(
          "bookstore(book(@isbn,title,author,price),location)"),
      "bookstore.xsd");
  repository.AddTree(
      *schema::ParseTreeSpec(
          "catalog(publication(heading,writer,year),publisher)"),
      "catalog.dtd");
  repository.AddTree(
      *schema::ParseTreeSpec("garage(car(plate,owner),address)"),
      "garage.xsd");

  schema::SchemaTree personal = *schema::ParseTreeSpec("book(title,author)");
  const char* user_query = "/book[title=\"Iliad\"]/author";

  core::Bellflower system(&repository);
  core::MatchOptions options;
  options.element.threshold = 0.5;
  options.delta = 0.55;
  options.clustering = core::ClusteringMode::kTreeClusters;

  auto result = system.Match(personal, options);
  if (!result.ok()) {
    std::fprintf(stderr, "match failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("personal schema: %s\n",
              schema::ToTreeSpec(personal).c_str());
  std::printf("user query     : %s\n\n", user_query);
  std::printf("ranked mapping choices (%zu):\n", result->mappings.size());

  auto query = query::ParseXPath(user_query);
  if (!query.ok()) {
    std::fprintf(stderr, "bad query: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }

  int rank = 1;
  for (const auto& mapping : result->mappings) {
    std::printf("%2d. %s\n", rank,
                generate::MappingToString(mapping, personal, repository)
                    .c_str());
    auto rewritten = query::RewriteQuery(*query, personal, mapping,
                                         repository);
    if (rewritten.ok()) {
      std::printf("     rewritten query: %s    (source: %s)\n",
                  rewritten->ToString().c_str(),
                  repository.source(mapping.tree).c_str());
    } else {
      std::printf("     (query rewrite unavailable: %s)\n",
                  rewritten.status().ToString().c_str());
    }
    ++rank;
  }

  if (!result->mappings.empty()) {
    std::printf("\nThe user asserts choice #1; the query evaluation system "
                "would now run the\nrewritten query against the real data "
                "source.\n");
  }
  return 0;
}
