// Load real schema files (.dtd / .xsd) into a repository and match a
// personal schema against them — the import path the paper's crawled
// corpus would use.
//
//   $ ./examples/load_schemas [directory] [personal-spec]
//
// Defaults: the sample files in examples/data and the personal schema
// name(address,email).
#include <cstdio>
#include <string>

#include "xsm/xsm.h"

int main(int argc, char** argv) {
  using namespace xsm;

  std::string directory = argc > 1 ? argv[1] : "examples/data";
  std::string spec = argc > 2 ? argv[2] : "name(address,email)";

  schema::SchemaForest repository;
  auto report = repo::LoadRepositoryFromDirectory(directory, &repository);
  if (!report.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 report.status().ToString().c_str());
    std::fprintf(stderr,
                 "hint: run from the repository root, or pass a directory "
                 "of .dtd/.xsd files\n");
    return 1;
  }
  std::printf("loaded %zu files (%zu failed) -> %zu trees, %zu elements\n",
              report->files_loaded, report->files_failed,
              report->trees_added, repository.total_nodes());
  for (const std::string& warning : report->warnings) {
    std::printf("  warning: %s\n", warning.c_str());
  }
  if (repository.num_trees() == 0) {
    std::fprintf(stderr, "no schemas loaded\n");
    return 1;
  }
  std::printf("\nrepository trees:\n");
  for (schema::TreeId t = 0;
       t < static_cast<schema::TreeId>(repository.num_trees()); ++t) {
    std::printf("  [%d] %-18s root=%s (%zu nodes)\n", t,
                repository.source(t).c_str(),
                repository.tree(t).name(0).c_str(),
                repository.tree(t).size());
  }

  auto personal = schema::ParseTreeSpec(spec);
  if (!personal.ok()) {
    std::fprintf(stderr, "bad personal schema spec: %s\n",
                 personal.status().ToString().c_str());
    return 1;
  }

  core::Bellflower system(&repository);
  core::MatchOptions options;
  options.element.threshold = 0.5;
  options.delta = 0.55;
  options.clustering = core::ClusteringMode::kTreeClusters;
  options.top_n = 10;

  auto result = system.Match(*personal, options);
  if (!result.ok()) {
    std::fprintf(stderr, "match failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("\npersonal schema %s -> top %zu of %zu mappings:\n",
              spec.c_str(), result->mappings.size(),
              result->stats.num_mappings);
  int rank = 1;
  for (const auto& mapping : result->mappings) {
    std::printf("%2d. %s\n", rank++,
                generate::MappingToString(mapping, *personal, repository)
                    .c_str());
  }
  return 0;
}
