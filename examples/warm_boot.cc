// Warm boot: persist the amortized preprocessing investment across process
// restarts.
//
// Demonstrates the xsm::store subsystem around MatchService:
//   1. "first boot": build a service from raw repository content (the
//      expensive path — parse, TreeIndex labeling, NameDictionary folds,
//      fingerprints), serve a query,
//   2. save-on-shutdown: SaveSnapshot writes the versioned, checksummed
//      snapshot file atomically,
//   3. "second boot": WarmStart loads every derived structure back without
//      rebuilding anything, continues the generation chain with a delta,
//      and serves identical results,
//   4. damage detection: a flipped byte makes the load fail with a typed
//      Corruption error instead of booting on bad state.
//
//   $ ./examples/example_warm_boot
#include <cstdio>
#include <fstream>
#include <string>

#include "xsm/xsm.h"

using namespace xsm;

namespace {

int Run(service::MatchService* service, const char* label) {
  auto snapshot = service->CurrentSnapshot();
  service::MatchQuery query;
  query.id = "boot-probe";
  query.personal = *schema::ParseTreeSpec("name(address,email)");
  query.options.delta = 0.5;
  query.options.top_n = 3;
  auto result = service->Match(query);
  if (!result.ok()) {
    std::fprintf(stderr, "match failed: %s\n",
                 result.status().ToString().c_str());
    return 0;
  }
  std::printf("[%s] generation %llu, %zu trees, %zu elements -> %zu "
              "mappings\n",
              label,
              static_cast<unsigned long long>(snapshot->generation()),
              snapshot->num_trees(), snapshot->total_nodes(),
              result->mappings.size());
  return static_cast<int>(result->mappings.size());
}

}  // namespace

int main() {
  const std::string path = "warm_boot_example.snap";

  // --- First boot: the expensive path. --------------------------------------
  repo::SyntheticRepoOptions options;
  options.target_elements = 3000;
  options.seed = 7;
  auto forest = repo::GenerateSyntheticRepository(options);
  if (!forest.ok()) {
    std::fprintf(stderr, "%s\n", forest.status().ToString().c_str());
    return 1;
  }
  Timer cold_timer;
  auto cold = service::MatchService::Create(std::move(*forest));
  double cold_seconds = cold_timer.ElapsedSeconds();
  if (!cold.ok()) {
    std::fprintf(stderr, "%s\n", cold.status().ToString().c_str());
    return 1;
  }
  int cold_mappings = Run(cold->get(), "cold boot");

  // --- Save on shutdown. ----------------------------------------------------
  auto saved = (*cold)->SaveSnapshot(path);
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.status().ToString().c_str());
    return 1;
  }
  std::printf("saved %s: format v%u, generation %llu, %llu bytes\n",
              path.c_str(), saved->format_version,
              static_cast<unsigned long long>(saved->generation),
              static_cast<unsigned long long>(saved->total_bytes));
  cold->reset();  // "process exit"

  // --- Second boot: load, don't rebuild. ------------------------------------
  Timer warm_timer;
  auto warm = service::MatchService::WarmStart(path);
  double warm_seconds = warm_timer.ElapsedSeconds();
  if (!warm.ok()) {
    std::fprintf(stderr, "%s\n", warm.status().ToString().c_str());
    return 1;
  }
  int warm_mappings = Run(warm->get(), "warm boot");
  std::printf("cold build %.1f ms vs warm load %.1f ms (%.1fx); identical "
              "results: %s\n",
              1e3 * cold_seconds, 1e3 * warm_seconds,
              cold_seconds / warm_seconds,
              cold_mappings == warm_mappings ? "yes" : "NO");

  // The chain keeps evolving from the persisted generation.
  live::DeltaBuilder builder;
  builder.AddTree(*schema::ParseTreeSpec("invoice(total,customer(name))"),
                  "feed:invoice");
  auto report = (*warm)->ApplyDelta(*builder.Build());
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("delta after warm start: generation %llu (%zu trees reused, "
              "%zu rebuilt)\n",
              static_cast<unsigned long long>(report->generation),
              report->trees_reused, report->trees_rebuilt);

  // --- Damage is refused, typed. --------------------------------------------
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    bytes[bytes.size() / 2] ^= 0x01;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto damaged = service::MatchService::WarmStart(path);
  std::printf("corrupted file refused: %s\n",
              damaged.ok() ? "NOT REFUSED (bug!)"
                           : damaged.status().ToString().c_str());
  std::remove(path.c_str());
  return 0;
}
