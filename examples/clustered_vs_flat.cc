// Clustered vs non-clustered matching on a realistic synthetic repository:
// the efficiency/effectiveness trade-off of the paper, in one program.
//
//   $ ./examples/clustered_vs_flat [elements]     (default 8000)
#include <cstdio>
#include <cstdlib>

#include "xsm/xsm.h"

int main(int argc, char** argv) {
  using namespace xsm;

  size_t elements = 8000;
  if (argc > 1) elements = static_cast<size_t>(std::atoll(argv[1]));

  repo::SyntheticRepoOptions repo_options;
  repo_options.target_elements = elements;
  repo_options.seed = 7;
  auto repository = repo::GenerateSyntheticRepository(repo_options);
  if (!repository.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 repository.status().ToString().c_str());
    return 1;
  }
  repo::RepositoryStats stats = repo::ComputeStats(*repository);
  std::printf("repository: %zu elements / %zu trees (avg %.1f)\n",
              stats.nodes, stats.trees, stats.avg_tree_size);

  schema::SchemaTree personal = *schema::ParseTreeSpec("name(address,email)");
  core::Bellflower system(&*repository);

  core::MatchOptions flat;
  flat.element.threshold = 0.5;
  flat.delta = 0.75;
  flat.clustering = core::ClusteringMode::kTreeClusters;

  core::MatchOptions clustered = flat;
  clustered.clustering = core::ClusteringMode::kKMeans;
  clustered.kmeans.join_distance = 3;
  clustered.kmeans.min_cluster_size = 4;

  Timer timer;
  auto flat_result = system.Match(personal, flat);
  double flat_time = timer.ElapsedSeconds();
  timer.Restart();
  auto clustered_result = system.Match(personal, clustered);
  double clustered_time = timer.ElapsedSeconds();
  if (!flat_result.ok() || !clustered_result.ok()) {
    std::fprintf(stderr, "match failed\n");
    return 1;
  }

  auto print_row = [](const char* name, const core::MatchResult& r,
                      double time) {
    std::printf("%-14s %14.0f %14llu %10zu %10.4fs\n", name,
                r.stats.search_space,
                static_cast<unsigned long long>(
                    r.stats.generator.partial_mappings),
                r.mappings.size(), time);
  };
  std::printf("\n%-14s %14s %14s %10s %10s\n", "mode", "search space",
              "partials", "mappings", "time");
  print_row("non-clustered", *flat_result, flat_time);
  print_row("clustered", *clustered_result, clustered_time);

  double preserved =
      flat_result->mappings.empty()
          ? 1.0
          : static_cast<double>(clustered_result->mappings.size()) /
                static_cast<double>(flat_result->mappings.size());
  double space_reduction =
      clustered_result->stats.search_space > 0
          ? flat_result->stats.search_space /
                clustered_result->stats.search_space
          : 0.0;
  std::printf("\nclustering shrinks the search space %.1fx and keeps %.0f%% "
              "of the mappings\n",
              space_reduction, 100.0 * preserved);

  // The paper's key qualitative claim: the loss concentrates in low-ranked
  // mappings. Show preservation at increasing thresholds.
  auto curve = core::PreservationCurve(flat_result->mappings,
                                       clustered_result->mappings, 0.75,
                                       1.0, 6);
  std::printf("\npreserved fraction by threshold:");
  for (const auto& point : curve) {
    std::printf("  %.2f:%.0f%%", point.delta, 100.0 * point.preserved);
  }
  std::printf("\n");
  return 0;
}
