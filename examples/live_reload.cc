// Live reload: serve queries while the repository evolves underneath them.
//
// Demonstrates the xsm::live subsystem end to end:
//   1. a MatchService over an initial repository (generation 0),
//   2. queries answered — and their cluster states cached — per generation,
//   3. a RepositoryDelta ingesting a schema batch copy-on-write (untouched
//      trees keep their index/dictionary state; watch trees_reused),
//   4. the atomic generation swap: new queries see the new content, and
//      the fingerprint-namespaced caches guarantee no stale cluster state
//      ever crosses generations — while a delta that restores earlier
//      content gets its warm cache back.
//
//   $ ./examples/example_live_reload
#include <cstdio>
#include <string>

#include "xsm/xsm.h"

using namespace xsm;

namespace {

void PrintTop(service::MatchService* service, const std::string& id) {
  // Hold the snapshot while formatting: a concurrent delta may retire the
  // generation the result's node refs point into.
  auto snapshot = service->CurrentSnapshot();
  service::MatchQuery query;
  query.id = id;
  query.personal = *schema::ParseTreeSpec("name(address,email)");
  query.options.delta = 0.3;
  query.options.top_n = 3;
  query.options.clustering = core::ClusteringMode::kTreeClusters;

  auto result = service->Match(query);
  if (!result.ok()) {
    std::fprintf(stderr, "match failed: %s\n",
                 result.status().ToString().c_str());
    return;
  }
  std::printf("[gen %llu] query %s: %zu mappings\n",
              static_cast<unsigned long long>(snapshot->generation()),
              id.c_str(), result->mappings.size());
  int rank = 1;
  for (const auto& mapping : result->mappings) {
    std::printf("  %d. %s\n", rank++,
                generate::MappingToString(mapping, query.personal,
                                          snapshot->forest())
                    .c_str());
  }
}

void PrintCache(service::MatchService* service, const char* when) {
  service::ServiceStats stats = service->stats();
  std::printf(
      "cache %s: %llu hits, %llu misses, %zu states resident in %zu "
      "namespaces\n\n",
      when, static_cast<unsigned long long>(stats.cache.hits),
      static_cast<unsigned long long>(stats.cache.misses),
      stats.cache.entries, stats.cache_namespaces);
}

}  // namespace

int main() {
  // Generation 0: a small hand-built repository.
  schema::SchemaForest repository;
  repository.AddTree(
      *schema::ParseTreeSpec("person(fullName,contact(addr,mail))"),
      "person.xsd");
  repository.AddTree(
      *schema::ParseTreeSpec("lib(book(title,authorName),address)"),
      "library.xsd");

  auto service = service::MatchService::Create(std::move(repository));
  if (!service.ok()) {
    std::fprintf(stderr, "%s\n", service.status().ToString().c_str());
    return 1;
  }

  PrintTop(service->get(), "before-ingest");
  PrintTop(service->get(), "before-ingest-again");  // cache hit
  PrintCache(service->get(), "before ingest");

  // Ingest a schema batch while serving: one delta, three operations. The
  // builder validates everything before anything is published.
  live::DeltaBuilder builder;
  builder.AddTree(*schema::ParseTreeSpec("contact(name,address,email)"),
                  "feed:contact");
  builder.AddTree(
      *schema::ParseTreeSpec("customer(name,address(city,zip),email)"),
      "feed:customer");
  builder.ReplaceTree(
      0, *schema::ParseTreeSpec("person(fullName,contact(addr,mail,cell))"),
      "person-v2.xsd");
  auto delta = builder.Build();
  if (!delta.ok()) {
    std::fprintf(stderr, "%s\n", delta.status().ToString().c_str());
    return 1;
  }
  auto report = (*service)->ApplyDelta(*delta);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "published generation %llu in %.2f ms: %zu trees "
      "(%zu reused copy-on-write, %zu rebuilt; %zu name folds copied, "
      "%zu computed)\n\n",
      static_cast<unsigned long long>(report->generation),
      1e3 * report->build_seconds, report->trees_total,
      report->trees_reused, report->trees_rebuilt,
      report->name_entries_copied, report->name_entries_computed);

  // New queries run against the new generation; its cluster cache starts
  // in a fresh namespace (one miss), then warms.
  PrintTop(service->get(), "after-ingest");
  PrintTop(service->get(), "after-ingest-again");
  PrintCache(service->get(), "after ingest");

  // Undo the ingest: removing the added trees and restoring the replaced
  // tree brings back generation 0's *content* — and with it, by
  // fingerprint, generation 0's still-warm cache (no recompute).
  auto current = (*service)->CurrentSnapshot();
  live::DeltaBuilder undo;
  undo.ReplaceTree(
      0, *schema::ParseTreeSpec("person(fullName,contact(addr,mail))"),
      "person.xsd");
  undo.RemoveTree(static_cast<schema::TreeId>(current->num_trees() - 2));
  undo.RemoveTree(static_cast<schema::TreeId>(current->num_trees() - 1));
  auto undo_report = (*service)->ApplyDelta(*undo.Build());
  if (!undo_report.ok()) {
    std::fprintf(stderr, "%s\n", undo_report.status().ToString().c_str());
    return 1;
  }
  std::printf("published generation %llu (content equals generation 0: "
              "fingerprint %016llx)\n\n",
              static_cast<unsigned long long>(undo_report->generation),
              static_cast<unsigned long long>(undo_report->fingerprint));
  PrintTop(service->get(), "after-undo");  // warm: revived namespace
  PrintCache(service->get(), "after undo");
  return 0;
}
