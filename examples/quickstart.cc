// Quickstart: build a small repository in code, match a personal schema
// against it, and print the ranked schema mappings.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "xsm/xsm.h"

int main() {
  using namespace xsm;

  // 1. A repository is a forest of schema trees. The compact tree-spec
  //    notation is the quickest way to build one in code; real corpora are
  //    loaded with repo::LoadRepositoryFromDirectory or generated with
  //    repo::GenerateSyntheticRepository.
  schema::SchemaForest repository;
  repository.AddTree(
      *schema::ParseTreeSpec(
          "person(name,contact(address,email),phone)"),
      "person-schema");
  repository.AddTree(
      *schema::ParseTreeSpec(
          "customer(fullName,addr,mail,account(id,email))"),
      "crm-schema");
  repository.AddTree(
      *schema::ParseTreeSpec("lib(book(title,authorName),address)"),
      "library-schema");

  // 2. The personal schema: the user's own virtual view of the data.
  schema::SchemaTree personal = *schema::ParseTreeSpec("name(address,email)");

  // 3. Match. Options carry the objective threshold δ, the α weight of
  //    Eq. 3, the element-matcher threshold, and the clustering mode.
  core::Bellflower system(&repository);
  core::MatchOptions options;
  options.element.threshold = 0.5;  // fuzzy name similarity cut
  options.objective.alpha = 0.5;    // name vs path hint weight
  options.delta = 0.5;              // keep mappings with Δ >= 0.5
  options.clustering = core::ClusteringMode::kKMeans;
  options.kmeans.join_distance = 3;
  options.kmeans.min_cluster_size = 2;

  auto result = system.Match(personal, options);
  if (!result.ok()) {
    std::fprintf(stderr, "match failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 4. Consume the ranked mapping list.
  std::printf("personal schema:\n%s\n", personal.ToString().c_str());
  std::printf("%zu mappings with delta >= %.2f "
              "(%zu mapping elements, %zu useful clusters):\n\n",
              result->mappings.size(), options.delta,
              result->stats.total_mapping_elements,
              result->stats.num_useful_clusters);
  int rank = 1;
  for (const auto& mapping : result->mappings) {
    std::printf("%2d. %s\n     source: %s\n", rank++,
                generate::MappingToString(mapping, personal, repository)
                    .c_str(),
                repository.source(mapping.tree).c_str());
  }
  return 0;
}
